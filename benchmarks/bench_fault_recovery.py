"""Fault-recovery benchmark for the sharded serving layer.

Measures what operational robustness costs — and proves, before trusting
any number, that the recovered answers are bit-identical to the healthy
ones:

* **healthy baseline** — pooled ``batch_query`` latency with no faults.
* **crash recovery** — the same request with a worker killed mid-task
  (:mod:`repro.serving.faults` arms one ``pool_worker`` kill per repeat):
  executor respawn + task retry, end to end.  Results are asserted
  bit-identical to the unsharded reference every repeat.
* **degraded serving** — latency once a shard's bundle is gone and
  ``on_shard_failure="degrade"`` merges the survivors (asserted exactly
  equal to an unsharded index over the surviving rows).
* **verify-mode load cost** — ``load_index`` at ``verify="off"`` /
  ``"lazy"`` (O(1) size check) / ``"eager"`` (full re-checksum), the
  integrity/latency trade-off at cold start.

Set ``BENCH_SMOKE=1`` to shrink the instance for CI smoke runs (timing
assertions are only enforced at full size; parity assertions always).
"""

import os
import statistics
import tempfile

import numpy as np

from repro.api import IndexSpec, load_index, save_index
from repro.serving import ServingOptions, faults
from repro.spaces import hamming

from _harness import clustered_hamming, fmt_row, median_time, report, timed

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_POINTS = 4_000 if SMOKE else 50_000
N_QUERIES = 64 if SMOKE else 256
N_TABLES = 8
N_CLUSTERS = 40 if SMOKE else 100
D = 64
K = 16
SEED = 2018
SHARDS = 2
WORKERS = 2
QUERY_REPEATS = 3 if SMOKE else 5
RECOVERY_REPEATS = 2 if SMOKE else 4
LOAD_REPEATS = 3 if SMOKE else 5
# Full-size guardrails: a killed worker must not trigger a retry storm
# (respawn + one retry round, not minutes of backoff), and serving fewer
# shards must never cost materially more than serving all of them.
MAX_RECOVERY_OVERHEAD = 50.0
MAX_DEGRADED_OVERHEAD = 2.0


def _spec(shards=1):
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": K},
        n_tables=N_TABLES,
        backend="packed",
        seed=SEED + 2,
        shards=shards,
    )


def _assert_parity(reference, observed, label):
    assert [r.indices for r in observed] == [
        r.indices for r in reference
    ], f"results diverged at {label}"


def _run():
    rng = np.random.default_rng(SEED)
    prototypes = hamming.random_points(N_CLUSTERS, D, rng=rng)
    points = clustered_hamming(prototypes, N_POINTS, rng)
    queries = clustered_hamming(prototypes, N_QUERIES, rng)

    flat = _spec().build(points)
    reference = flat.batch_query(queries)

    out = {}
    with tempfile.TemporaryDirectory() as tmp:
        # Verify-mode cold-start cost on the unsharded bundle.
        flat_path = os.path.join(tmp, "flat")
        save_index(flat, flat_path)
        for mode in ("off", "lazy", "eager"):
            out[f"load_{mode}_s"] = median_time(
                lambda: load_index(flat_path, options=ServingOptions(verify=mode)), LOAD_REPEATS
            )

        sharded_path = os.path.join(tmp, "sharded")
        save_index(_spec(shards=SHARDS).build(points, workers=2), sharded_path)

        fault_dir = os.path.join(tmp, "fault-tokens")
        os.environ[faults.ENV_FAULT_DIR] = fault_dir
        try:
            # Healthy pooled baseline, then crash recovery per repeat.
            with load_index(sharded_path, options=ServingOptions(workers=WORKERS)) as served:
                _assert_parity(
                    reference, served.batch_query(queries), "warm-up"
                )
                out["healthy_s"] = median_time(
                    lambda: served.batch_query(queries), QUERY_REPEATS
                )
                recovery_times = []
                out["respawns"] = out["swept_segments"] = 0
                for repeat in range(RECOVERY_REPEATS):
                    faults.arm(fault_dir, "pool_worker", "kill")
                    observed, elapsed = timed(
                        lambda: served.batch_query(queries)
                    )
                    _assert_parity(
                        reference, observed, f"recovery repeat {repeat}"
                    )
                    health = served.last_health
                    assert health["respawns"] >= 1, "kill did not respawn"
                    out["respawns"] += health["respawns"]
                    out["swept_segments"] += health["swept_segments"]
                    recovery_times.append(elapsed)
                out["recovery_s"] = statistics.median(recovery_times)

            # Degraded serving once a shard's bundle is gone.
            with load_index(sharded_path, options=ServingOptions(workers=WORKERS, on_shard_failure="degrade")) as served:
                split = int(served.bounds[1])
                served.batch_query(queries)  # healthy warm-up
                faults.delete_bundle(f"{sharded_path}.shard1")
                survivor_ref = _spec().build(points[:split]).batch_query(
                    queries
                )
                observed = served.batch_query(queries)
                _assert_parity(survivor_ref, observed, "degraded")
                assert all(r.stats.degraded for r in observed)
                assert served.last_health["failed_shards"], (
                    "degraded run reported no failed shards"
                )
                out["degraded_s"] = median_time(
                    lambda: served.batch_query(queries), QUERY_REPEATS
                )
        finally:
            os.environ.pop(faults.ENV_FAULT_DIR, None)
    return out


def bench_fault_recovery(benchmark):
    """Time healthy vs crash-recovery vs degraded pooled serving and the
    verify-mode load ladder; every recovered/degraded answer is asserted
    exact before any timing is reported."""
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    recovery_x = timings["recovery_s"] / timings["healthy_s"]
    degraded_x = timings["degraded_s"] / timings["healthy_s"]
    eager_x = timings["load_eager_s"] / max(timings["load_off_s"], 1e-9)
    lines = [
        "Fault recovery: pooled serving under injected worker crashes, "
        f"shard loss, and integrity-checked loads (n={N_POINTS} points, "
        f"L={N_TABLES}, {SHARDS} shards, {WORKERS} workers, "
        f"{N_QUERIES} batched queries{', SMOKE' if SMOKE else ''})",
        fmt_row("path", "seconds", width=30),
        fmt_row("batch query, healthy", timings["healthy_s"], width=30),
        fmt_row("batch query, worker killed", timings["recovery_s"], width=30),
        fmt_row("batch query, degraded", timings["degraded_s"], width=30),
        fmt_row("load verify=off", timings["load_off_s"], width=30),
        fmt_row("load verify=lazy", timings["load_lazy_s"], width=30),
        fmt_row("load verify=eager", timings["load_eager_s"], width=30),
        "",
        f"crash recovery: x{recovery_x:.1f} the healthy latency "
        f"({timings['respawns']} respawn(s), "
        f"{timings['swept_segments']} journaled segment(s) swept, "
        "results bit-identical every repeat)",
        f"degraded serving: x{degraded_x:.2f} the healthy latency "
        "(surviving shard exact, failure reported)",
        f"eager integrity re-checksum at load: x{eager_x:.1f} over "
        "verify=off",
    ]
    report(
        "fault_recovery",
        lines,
        metrics={
            "healthy_s": timings["healthy_s"],
            "recovery_s": timings["recovery_s"],
            "recovery_overhead_x": recovery_x,
            "degraded_s": timings["degraded_s"],
            "degraded_overhead_x": degraded_x,
            "respawns": timings["respawns"],
            "swept_segments": timings["swept_segments"],
            "load_s": {
                mode: timings[f"load_{mode}_s"]
                for mode in ("off", "lazy", "eager")
            },
            "eager_load_cost_x": eager_x,
        },
        config={
            "n_points": N_POINTS,
            "n_queries": N_QUERIES,
            "n_tables": N_TABLES,
            "components": K,
            "shards": SHARDS,
            "workers": WORKERS,
            "recovery_repeats": RECOVERY_REPEATS,
            "smoke": SMOKE,
        },
    )
    # Parity and recovery accounting are asserted inside _run on every
    # repeat.  Timing bounds only at full size, where pool startup noise
    # no longer dominates the healthy baseline.
    if not SMOKE:
        assert recovery_x <= MAX_RECOVERY_OVERHEAD, (
            f"crash recovery cost x{recovery_x:.1f} the healthy latency "
            f"(bound x{MAX_RECOVERY_OVERHEAD}); retry/backoff storm?"
        )
        assert degraded_x <= MAX_DEGRADED_OVERHEAD, (
            f"degraded serving cost x{degraded_x:.2f} the healthy latency "
            f"(bound x{MAX_DEGRADED_OVERHEAD}); the surviving-shard merge "
            "should not cost more than the full merge"
        )
