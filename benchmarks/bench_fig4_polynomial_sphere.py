"""Figure 4 / Theorem 5.1: polynomial CPFs on the sphere via SimHash.

The figure's two panels plot ``sim(P(alpha))`` for
``P in {t^2, -t^2, (-t^3+t^2-t)/3}`` (left) and the normalized Chebyshev
polynomials ``(2t^2-1)/3, (4t^3-3t)/7, (8t^4-8t^2+1)/17,
(16t^5-20t^3+5t)/41`` (right), with ``sim`` the SimHash angular similarity.
We regenerate all seven curves analytically and verify Theorem 5.1 by
Monte Carlo through the actual embedded family at spot values.
"""

import numpy as np

from repro.core.estimate import estimate_collision_probability
from repro.families.valiant import PolynomialSphereFamily, polynomial_sphere_cpf
from repro.spaces import sphere
from repro.utils.asciiplot import ascii_plot

from _harness import fmt_row, report

POLYNOMIALS = {
    "t^2": [0.0, 0.0, 1.0],
    "-t^2": [0.0, 0.0, -1.0],
    "(-t^3+t^2-t)/3": [0.0, -1 / 3, 1 / 3, -1 / 3],
    "(2t^2-1)/3": [-1 / 3, 0.0, 2 / 3],
    "(4t^3-3t)/7": [0.0, -3 / 7, 0.0, 4 / 7],
    "(8t^4-8t^2+1)/17": [1 / 17, 0.0, -8 / 17, 0.0, 8 / 17],
    "(16t^5-20t^3+5t)/41": [0.0, 5 / 41, 0.0, -20 / 41, 0.0, 16 / 41],
}
ALPHAS = np.linspace(-1.0, 1.0, 41)
D = 4
MC_ALPHAS = [-0.8, 0.0, 0.8]


def _curves():
    return {
        name: polynomial_sphere_cpf(coeffs)(ALPHAS)
        for name, coeffs in POLYNOMIALS.items()
    }


def bench_figure4_curves(benchmark):
    """Time the analytic curve generation for all seven polynomials and
    validate the embedded families by Monte Carlo."""
    curves = benchmark(_curves)
    lines = [
        "Figure 4 reproduction: sim(P(alpha)) for the paper's polynomials",
        fmt_row("alpha", *POLYNOMIALS.keys(), width=20),
    ]
    for i, alpha in enumerate(ALPHAS):
        lines.append(
            fmt_row(float(alpha), *[float(curves[n][i]) for n in POLYNOMIALS], width=20)
        )
    lines += ["", "Theorem 5.1 Monte Carlo validation (measured vs analytic):"]
    worst = 0.0
    for name, coeffs in POLYNOMIALS.items():
        family = PolynomialSphereFamily(coeffs, D)
        target = polynomial_sphere_cpf(coeffs)
        for alpha in MC_ALPHAS:
            est = estimate_collision_probability(
                family,
                lambda n, rng, a=alpha: sphere.pairs_at_inner_product(n, D, a, rng),
                n_functions=120,
                pairs_per_function=80,
                rng=7,
            )
            expected = float(target(alpha))
            worst = max(worst, abs(est.p_hat - expected))
            lines.append(
                fmt_row(name, float(alpha), est.p_hat, expected, width=22)
            )
    lines.append(f"max |measured - analytic| = {worst:.4f}")
    left_names = ["t^2", "-t^2", "(-t^3+t^2-t)/3"]
    right_names = [n for n in POLYNOMIALS if n not in left_names]
    lines += [
        "",
        ascii_plot(
            ALPHAS,
            {n: curves[n] for n in left_names},
            title="Figure 4 left panel (rendered)",
        ),
        "",
        ascii_plot(
            ALPHAS,
            {n: curves[n] for n in right_names},
            title="Figure 4 right panel (rendered)",
        ),
    ]
    report("fig4_polynomial_sphere", lines)
    assert worst < 0.03
