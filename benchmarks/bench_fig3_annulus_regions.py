"""Figure 3: the annuli of Theorem 6.2 for s = 2, 3, 4.

The figure plots, for every peak similarity ``alpha_max`` in (-1, 1), the
interval ``[alpha_-, alpha_+]`` containing all ``alpha`` with
``(1/s) a(alpha_max) <= a(alpha) <= s a(alpha_max)`` where
``a(alpha) = (1-alpha)/(1+alpha)``.  We regenerate the three curves and
verify the claimed containment against the actual combined-family CPF at a
few peaks: the CPF inside the annulus exceeds its value outside.
"""

import numpy as np

from repro.families.annulus_sphere import AnnulusFamily, annulus_interval

from _harness import fmt_row, report

ALPHA_GRID = np.linspace(-0.9, 0.9, 37)
S_VALUES = [2.0, 3.0, 4.0]


def _regions():
    rows = []
    for alpha_max in ALPHA_GRID:
        row = [float(alpha_max)]
        for s in S_VALUES:
            lo, hi = annulus_interval(float(alpha_max), s)
            row += [lo, hi]
        rows.append(row)
    return rows


def bench_figure3_regions(benchmark):
    """Time the interval computation across the figure's grid and emit the
    three annuli curves."""
    rows = benchmark(_regions)
    header = ["alpha_max"]
    for s in S_VALUES:
        header += [f"a-(s={s:g})", f"a+(s={s:g})"]
    lines = [
        "Figure 3 reproduction: annulus [alpha_-, alpha_+] vs alpha_max "
        "for s = 2, 3, 4",
        fmt_row(*header, width=11),
    ]
    for row in rows:
        lines.append(fmt_row(*row, width=11))

    # Containment sanity against the actual family CPF at alpha_max = 0.2.
    family = AnnulusFamily(d=16, alpha_max=0.2, t=1.8)
    lo, hi = family.interval(s=2.0)
    inside = float(family.cpf(0.2))
    outside = max(float(family.cpf(lo - 0.15)), float(family.cpf(min(hi + 0.15, 0.97))))
    lines += [
        "",
        f"CPF check at alpha_max=0.2, s=2: annulus [{lo:.3f}, {hi:.3f}]",
        f"f(alpha_max) = {inside:.5f} vs max f outside (+-0.15 past the "
        f"edges) = {outside:.5f}",
        "peak dominates exterior: " + str(inside > outside),
    ]
    report("fig3_annulus_regions", lines)
    assert inside > outside
    # Monotone widening in s (Figure 3's nesting).
    for row in rows:
        alpha_max = row[0]
        lo2, hi2, lo3, hi3, lo4, hi4 = row[1:]
        assert lo4 <= lo3 <= lo2 <= alpha_max <= hi2 <= hi3 <= hi4
