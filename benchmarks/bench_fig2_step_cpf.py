"""Figure 2: composing unimodal CPFs into a "step function" CPF.

The paper's figure shows several unimodal CPFs (left panel) whose convex
mixture (Lemma 1.4(b)) is approximately flat up to a threshold and then
decreases (right panel, red curve).  We regenerate both panels with the
shifted Euclidean components and quantify the flatness (``f_max/f_min`` on
the flat region) and the decay beyond.
"""

import numpy as np

from repro.families.euclidean_lsh import ShiftedEuclideanCPF
from repro.families.step import design_step_family
from repro.utils.asciiplot import ascii_plot

from _harness import fmt_row, report

D = 8
R_FLAT = 10.0
N_COMPONENTS = 5
GRID = np.linspace(0.01, 20.0, 41)


def _design():
    return design_step_family(D, r_flat=R_FLAT, level=0.1, n_components=N_COMPONENTS)


def bench_figure2_step(benchmark):
    """Time the mixture design (NNLS over component CPFs) and emit both
    panels of the figure."""
    design = benchmark(_design)
    w = 2.0 * R_FLAT / N_COMPONENTS
    components = [ShiftedEuclideanCPF(k, w) for k in design.ks]
    header = ["distance"] + [f"k={k}" for k in design.ks] + ["mixture"]
    lines = [
        "Figure 2 reproduction: unimodal components (left) and their convex "
        "mixture (right panel's red step curve)",
        f"components: shifted Euclidean families k=0..{N_COMPONENTS - 1}, "
        f"w={w:g}; weights {np.round(design.weights, 4).tolist()}",
        fmt_row(*header, width=10),
    ]
    for delta in GRID:
        row = [float(delta)] + [float(c(delta)) for c in components]
        row.append(float(design.cpf(delta)))
        lines.append(fmt_row(*row, width=10))
    lines += [
        "",
        f"flat region [0, {R_FLAT}]: f_min={design.f_min:.4f} "
        f"f_max={design.f_max:.4f} ratio={design.f_max / design.f_min:.3f}",
        f"tail beyond {2 * R_FLAT}: max {design.tail:.4f} "
        f"({design.tail / design.f_min:.2f} of the flat level)",
        "paper's qualitative claim: mixture ~flat then decreasing -> "
        + str(design.f_max / design.f_min < 1.2 and design.tail < design.f_min),
        "",
        ascii_plot(
            GRID,
            {"mixture": design.cpf(GRID), "k=1": components[1](GRID),
             "k=3": components[3](GRID)},
            title="Figure 2 (rendered): two components and the step mixture",
        ),
    ]
    report("fig2_step_cpf", lines)
    assert design.f_max / design.f_min < 1.2
    assert design.tail < design.f_min
