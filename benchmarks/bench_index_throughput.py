"""Index storage-backend throughput: dict reference vs packed CSR.

The Theorem 6.1 index is backend-pluggable; this benchmark measures what
the packed backend buys on the hot paths at production-ish scale
(n = 50k points, L = 32 tables by default): build time (per-row ``bytes``
keys + dict inserts vs vectorized fingerprint mixing + ``argsort``/
``np.unique``) and batched query throughput (per-query Python bucket walks
vs batched ``searchsorted`` + one flat gather).  Both backends receive
identical hash pairs, so the candidate results are checked identical before
any timing is trusted.

Set ``BENCH_SMOKE=1`` to shrink the instance for CI smoke runs (the
speedup assertion is only enforced at full size).
"""

import os

import numpy as np

from repro.core.combinators import PoweredFamily
from repro.families.bit_sampling import BitSampling
from repro.index.lsh_index import DSHIndex
from repro.spaces import hamming

from _harness import clustered_hamming, fmt_row, report, timed

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_POINTS = 2_000 if SMOKE else 50_000
N_QUERIES = 64 if SMOKE else 512
N_TABLES = 8 if SMOKE else 32
N_CLUSTERS = 40 if SMOKE else 100
D = 64
K = 16         # components per table -> buckets ~= clusters
SEED = 2018
MIN_SPEEDUP = 5.0


def _run():
    rng = np.random.default_rng(SEED)
    prototypes = hamming.random_points(N_CLUSTERS, D, rng=rng)
    points = clustered_hamming(prototypes, N_POINTS, rng)
    queries = clustered_hamming(prototypes, N_QUERIES, rng)

    timings = {}
    results = {}
    for backend in ["dict", "packed"]:
        index = DSHIndex(
            PoweredFamily(BitSampling(D), K),
            n_tables=N_TABLES,
            rng=SEED + 2,
            backend=backend,
        )
        _, build_s = timed(lambda: index.build(points))
        # Warm-up (hash closures, allocator) then the timed batch.
        index.batch_query(queries[:8])
        batch, query_s = timed(lambda: index.batch_query(queries))
        _, truncated_s = timed(
            lambda: index.batch_query(queries, max_retrieved=8 * N_TABLES)
        )
        timings[backend] = (build_s, query_s, truncated_s)
        results[backend] = batch

    # Differential check before trusting any timing: identical candidates,
    # order, and stats on every query.
    for (d_cands, d_stats), (p_cands, p_stats) in zip(
        results["dict"], results["packed"]
    ):
        assert d_cands == p_cands
        assert d_stats == p_stats
    return timings


def bench_index_backend_throughput(benchmark):
    """Time the dict-vs-packed sweep; require the packed backend to be
    >= 5x faster on batched queries at full size."""
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    d_build, d_query, d_trunc = timings["dict"]
    p_build, p_query, p_trunc = timings["packed"]
    query_speedup = d_query / p_query
    lines = [
        "Index backend throughput: dict[bytes, list[int]] vs packed CSR "
        f"(n={N_POINTS} clustered points, L={N_TABLES}, c={K} components, "
        f"{N_QUERIES} batched queries{', SMOKE' if SMOKE else ''})",
        fmt_row("backend", "build s", "batch query s", "queries/s",
                "trunc batch s", width=15),
        fmt_row("dict", d_build, d_query, N_QUERIES / d_query, d_trunc,
                width=15),
        fmt_row("packed", p_build, p_query, N_QUERIES / p_query, p_trunc,
                width=15),
        "",
        f"build speedup: x{d_build / p_build:.1f}",
        f"batch query speedup: x{query_speedup:.1f}",
        f"truncated batch speedup: x{d_trunc / p_trunc:.1f}",
    ]
    report(
        "index_throughput",
        lines,
        metrics={
            "build_speedup": d_build / p_build,
            "batch_query_speedup": query_speedup,
            "truncated_batch_speedup": d_trunc / p_trunc,
            "seconds": {
                "dict": {"build": d_build, "batch": d_query, "truncated": d_trunc},
                "packed": {"build": p_build, "batch": p_query, "truncated": p_trunc},
            },
        },
        config={
            "n_points": N_POINTS,
            "n_queries": N_QUERIES,
            "n_tables": N_TABLES,
            "components": K,
            "smoke": SMOKE,
        },
    )
    # Timing assertions only at full size — smoke instances are small
    # enough that scheduler noise can flip either comparison.
    if not SMOKE:
        assert p_build < d_build, "packed build slower than dict build"
        assert query_speedup >= MIN_SPEEDUP, (
            f"packed batch query only x{query_speedup:.2f} faster "
            f"(required x{MIN_SPEEDUP})"
        )
