"""Section 6.4: privacy-preserving distance estimation.

Claims: with the step-CPF sketch protocol, (a) pairs within relative
distance r answer Yes with probability >= 1 - eps, (b) pairs beyond c r
answer Yes with probability <= delta, and (c) the information revealed
through the PSI intersection is O(log(1/eps)) items — *independent of how
close the points are*, including q = x (the contrast with plain LSH and
with [45]).

We run the full protocol over many pairs at controlled distances and
tabulate Yes rates plus measured leakage.
"""

import numpy as np

from repro.privacy.distance import (
    PrivateDistanceEstimator,
    design_protocol,
    leakage_profile,
)
from repro.spaces import hamming

from _harness import fmt_row, report

D = 64
R = 0.1
C = 3.0
EPSILON = 0.1
DELTA = 0.1
TRIALS = 60


def _run():
    design = design_protocol(d=D, r=R, c=C, epsilon=EPSILON, delta=DELTA)
    estimator = PrivateDistanceEstimator(design, rng=42)
    rng = np.random.default_rng(0)
    distances = {
        "t = 0 (q = x)": 0,
        "t = r/2": int(R * D / 2),
        "t = r": int(R * D),
        "t = c r": int(C * R * D),
        "t = 2 c r": int(2 * C * R * D),
    }
    yes_rates = {}
    for label, bits in distances.items():
        yes = 0
        for _ in range(TRIALS):
            if bits == 0:
                x = hamming.random_points(1, D, rng)
                q = x
            else:
                x, q = hamming.pairs_at_distance(1, D, bits, rng)
            yes += estimator.is_within(x, q)
        yes_rates[label] = yes / TRIALS
    # Leakage at q = x, averaged.
    leaks = []
    for _ in range(20):
        x = hamming.random_points(1, D, rng)
        _, psi = estimator.decide(estimator.sketch_data(x), estimator.sketch_query(x))
        leaks.append(len(psi.intersection))
    # Triangulation observable: intersection size vs distance.
    r_bits = int(R * D)
    profile = leakage_profile(
        estimator, [0, r_bits // 2, r_bits, 2 * r_bits, 4 * r_bits], trials=25, rng=1
    )
    return design, yes_rates, float(np.mean(leaks)), profile


def bench_section64_protocol(benchmark):
    """Time the end-to-end protocol sweep; verify FN/FP targets and leakage."""
    design, yes_rates, mean_leak, profile = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    lines = [
        "Section 6.4 reproduction: private distance estimation "
        f"(d={D}, r={R}, c={C}, eps={EPSILON}, delta={DELTA})",
        f"design: J={design.j}, N={design.n_hashes}, p0={design.flat_level}, "
        f"p_near={design.p_near:.4f}, p_far={design.p_far:.2e}, "
        f"rho={design.rho:.3f}",
        "",
        fmt_row("pair distance", "Yes rate", width=16),
    ]
    for label, rate in yes_rates.items():
        lines.append(fmt_row(label, float(rate), width=16))
    lines += [
        "",
        f"targets: Yes >= {1 - EPSILON} within r; Yes <= {DELTA} beyond c r",
        f"leakage at q = x: mean intersection {mean_leak:.1f} items of "
        f"{design.n_hashes} keys (expected {design.expected_leak_items:.1f}; "
        "plain LSH would reveal all keys)",
        "",
        "triangulation observable (intersection size vs distance; near-flat "
        "over [0, r] = resistant, cf. the [45] discussion):",
        fmt_row("Hamming bits", "mean |PSI|", width=14),
    ]
    for bits, size in profile:
        lines.append(fmt_row(bits, float(size), width=14))
    near_sizes = [s for b, s in profile if b <= int(R * D)]
    # Flat within the documented Theta factor over the near region.
    assert max(near_sizes) <= design.flat_ratio * max(min(near_sizes), 1e-9) * 1.5
    report("sec64_privacy", lines)
    assert yes_rates["t = 0 (q = x)"] >= 1 - EPSILON - 0.1
    assert yes_rates["t = r/2"] >= 1 - EPSILON - 0.1
    assert yes_rates["t = r"] >= 1 - EPSILON - 0.15
    assert yes_rates["t = 2 c r"] <= DELTA + 0.05
    assert mean_leak < design.n_hashes / 2
    assert mean_leak <= 3 * design.expected_leak_items
