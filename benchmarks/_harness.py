"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one figure or verifies one quantitative theorem
of the paper.  Besides the pytest-benchmark timing, each writes the series
the paper's figure shows (or the theorem's predicted-vs-measured table) to
``benchmarks/results/<name>.txt`` and echoes it to stdout, so
``pytest benchmarks/ --benchmark-only -rA`` (or the tee'd log) carries the
full reproduction record.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def report(name: str, lines: list[str]) -> pathlib.Path:
    """Write ``lines`` to ``results/<name>.txt`` and print them."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print(f"\n[{name}]")
    print(text)
    return path


def fmt_row(*cells: object, width: int = 12) -> str:
    """Fixed-width row formatting for series tables."""
    out = []
    for cell in cells:
        if isinstance(cell, float):
            out.append(f"{cell:>{width}.6g}")
        else:
            out.append(f"{str(cell):>{width}}")
    return "".join(out)
