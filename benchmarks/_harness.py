"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one figure or verifies one quantitative theorem
of the paper.  Besides the pytest-benchmark timing, each writes the series
the paper's figure shows (or the theorem's predicted-vs-measured table) to
``benchmarks/results/<name>.txt`` and echoes it to stdout, so
``pytest benchmarks/ --benchmark-only -rA`` (or the tee'd log) carries the
full reproduction record.

Each :func:`report` call additionally writes a machine-readable
``benchmarks/results/BENCH_<name>.json`` — the human-readable lines plus
optional structured ``metrics``/``config`` dicts and the current git
commit — so successive runs across commits form a parseable perf
trajectory (CI validates the files are well-formed).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import subprocess
import time
from typing import Any, Callable, TypeVar

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

T = TypeVar("T")


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def median_time(fn: Callable[[], object], repeats: int) -> float:
    """Median wall time of ``repeats`` runs of ``fn`` (result discarded)."""
    return statistics.median(timed(fn)[1] for _ in range(repeats))


def clustered_hamming(
    prototypes: np.ndarray,
    n: int,
    rng: np.random.Generator,
    noise: float = 0.005,
) -> np.ndarray:
    """Noisy copies of shared cluster prototypes — the workload LSH indexes
    exist for: a query rendezvouses with its cluster-mates in most tables,
    so buckets are Zipfian and retrievals duplicate-heavy.  ``noise`` is
    the per-bit flip probability around each prototype."""
    rows = prototypes[rng.integers(0, prototypes.shape[0], size=n)]
    return rows ^ (rng.random(size=rows.shape) < noise).astype("int8")


def _git_commit() -> str | None:
    """Short commit hash of the benchmarked tree, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None


def report(
    name: str,
    lines: list[str],
    *,
    metrics: dict[str, Any] | None = None,
    config: dict[str, Any] | None = None,
) -> pathlib.Path:
    """Write ``lines`` to ``results/<name>.txt``, print them, and emit the
    machine-readable ``results/BENCH_<name>.json`` twin.

    ``metrics`` carries the numbers a trend dashboard would chart (median
    timings, speedups, throughputs); ``config`` the instance parameters
    that make them comparable across runs.  Both must be JSON-able.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    payload = {
        "name": name,
        "commit": _git_commit(),
        "config": config or {},
        "metrics": metrics or {},
        "lines": lines,
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\n[{name}]")
    print(text)
    return path


def fmt_row(*cells: object, width: int = 12) -> str:
    """Fixed-width row formatting for series tables."""
    out = []
    for cell in cells:
        if isinstance(cell, float):
            out.append(f"{cell:>{width}.6g}")
        else:
            out.append(f"{str(cell):>{width}}")
    return "".join(out)
