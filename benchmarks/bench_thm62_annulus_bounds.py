"""Theorem 6.2: the combined family's CPF inside vs outside the annulus.

Claim: for the family ``D = D+ (x) D-`` parameterized by ``alpha_max`` and
``t``, and for every ``s > 1`` defining the annulus ``[alpha_-, alpha_+]``,
the CPF is at least ``Omega((1/t^2) exp(-(s + 1/s) a_max t^2/2))`` inside
and at most ``O(...)`` of the same magnitude outside — i.e. the annulus
boundary separates large from small collision probability at exactly the
``(s + 1/s) a_max t^2 / 2`` scale.

We evaluate the exact CPF (quadrature) on a grid inside and outside the
annulus for several peaks and ``s`` values and check: (a) the interior
minimum exceeds the exterior maximum (evaluated a small margin past the
edges — at the edges both sides meet by construction), and (b) both track
the predicted ``ln(1/f)`` scale within the Theta(log t) slack.
"""

import numpy as np

from repro.families.annulus_sphere import AnnulusFamily

from _harness import fmt_row, report

D = 16
T = 2.0
CASES = [(-0.3, 2.0), (0.0, 2.0), (0.3, 2.0), (0.0, 3.0)]
MARGIN = 0.12


def _evaluate():
    rows = []
    for alpha_max, s in CASES:
        family = AnnulusFamily(D, alpha_max=alpha_max, t=T)
        lo, hi = family.interval(s)
        inside_grid = np.linspace(lo, hi, 15)
        inside = family.cpf(inside_grid)
        outside_points = []
        if lo - MARGIN > -0.97:
            outside_points.append(lo - MARGIN)
        if hi + MARGIN < 0.97:
            outside_points.append(hi + MARGIN)
        outside = family.cpf(np.asarray(outside_points))
        predicted_log_inv = (s + 1.0 / s) * (1 - alpha_max) / (1 + alpha_max) * T**2 / 2
        rows.append(
            (
                alpha_max,
                s,
                lo,
                hi,
                float(inside.min()),
                float(outside.max()) if outside.size else 0.0,
                predicted_log_inv,
            )
        )
    return rows


def bench_theorem62_bounds(benchmark):
    """Time the exact-CPF evaluation across the annulus cases and verify
    the interior/exterior separation and the ln(1/f) scale."""
    rows = benchmark(_evaluate)
    lines = [
        f"Theorem 6.2 reproduction: combined family D+ (x) D- at t={T}",
        fmt_row(
            "alpha_max", "s", "alpha_-", "alpha_+", "min f inside",
            "max f outside", "pred ln(1/f)", width=14,
        ),
    ]
    for alpha_max, s, lo, hi, f_in, f_out, predicted in rows:
        lines.append(
            fmt_row(
                float(alpha_max), float(s), float(lo), float(hi),
                float(f_in), float(f_out), float(predicted), width=14,
            )
        )
        # (a) interior dominates exterior (with the margin past the edges).
        assert f_in > f_out, (alpha_max, s)
        # (b) the boundary value's ln(1/f) is within Theta(log t)-style
        # slack of the predicted scale (factor 2 band is ample at t=2).
        measured = np.log(1.0 / f_in)
        assert predicted / 2 < measured < 2 * predicted + 6, (
            alpha_max, s, measured, predicted,
        )
    lines.append("")
    lines.append(
        "interior minimum exceeds exterior maximum in every case; the "
        "boundary ln(1/f) tracks (s + 1/s) a(alpha_max) t^2/2"
    )
    report("thm62_annulus_bounds", lines)
