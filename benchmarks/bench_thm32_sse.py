"""Theorems 3.2 / 3.9: the small-set expansion inequalities.

The engine behind the Section 3 lower bounds.  We compute exact correlated
pair probabilities ``Pr[x in A, y in B]`` through the noise operator for a
family of cube subsets and tabulate them against the reverse (lower) and
generalized (upper) SSE bounds.
"""

import numpy as np

from repro.booleancube.sets import (
    correlated_pair_probability,
    hamming_ball,
    subcube,
    volume,
)
from repro.bounds.sse import (
    generalized_sse_upper_bound,
    reverse_sse_lower_bound,
    volume_to_parameter,
)

from _harness import fmt_row, report

D = 12
ALPHAS = [0.0, 0.25, 0.5, 0.75]


def _sets():
    return {
        "halfcube": subcube(D, {0: 0}),
        "subcube/8": subcube(D, {0: 0, 1: 1, 2: 0}),
        "ball r=3": hamming_ball(D, 3),
        "ball r=5": hamming_ball(D, 5),
    }


def _table():
    sets = _sets()
    rows = []
    names = list(sets)
    for i, name_a in enumerate(names):
        for name_b in names[i:]:
            a_ind, b_ind = sets[name_a], sets[name_b]
            va, vb = volume(a_ind), volume(b_ind)
            for alpha in ALPHAS:
                exact = correlated_pair_probability(a_ind, b_ind, alpha)
                lower = reverse_sse_lower_bound(va, vb, alpha)
                pa, pb = volume_to_parameter(va), volume_to_parameter(vb)
                lo, hi = min(pa, pb), max(pa, pb)
                upper = (
                    generalized_sse_upper_bound(va, vb, alpha)
                    if alpha * hi <= lo
                    else None
                )
                rows.append((name_a, name_b, alpha, lower, exact, upper))
    return rows


def bench_sse_inequalities(benchmark):
    """Time the exact probability sweep and check both bounds everywhere
    they apply."""
    rows = benchmark(_table)
    lines = [
        "Theorems 3.2 / 3.9 reproduction: exact Pr[x in A, y in B] vs the "
        f"SSE bounds (d={D})",
        fmt_row("A", "B", "alpha", "reverse lb", "exact", "gen. ub", width=13),
    ]
    for name_a, name_b, alpha, lower, exact, upper in rows:
        lines.append(
            fmt_row(
                name_a,
                name_b,
                float(alpha),
                float(lower),
                float(exact),
                "n/a" if upper is None else float(upper),
                width=13,
            )
        )
        assert exact >= lower - 1e-12, (name_a, name_b, alpha)
        if upper is not None:
            assert exact <= upper + 1e-12, (name_a, name_b, alpha)
    lines.append("")
    lines.append("all reverse lower bounds and applicable generalized upper "
                 "bounds hold exactly")
    report("thm32_sse", lines)
