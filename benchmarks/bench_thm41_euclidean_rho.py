"""Theorem 4.1: the shifted Euclidean family achieves rho_- = (1/c^2)(1 + O(1/k)).

Claim: with ``w = w(c)`` and the bucket shift ``k``, the equation-(2)
family's collision gap towards small distances satisfies
``rho_- * c^2 -> 1`` at rate ``O(1/k)``.  This is the paper's "surprising"
result — the classical Datar et al. family is suboptimal as an LSH, yet its
shifted variant is near-optimal as an anti-LSH.  We sweep ``k`` for several
``c`` and check both the limit and the 1/k rate.
"""

import numpy as np

from repro.families.euclidean_lsh import theorem41_rho_minus

from _harness import fmt_row, report

C_VALUES = [1.5, 2.0, 3.0]
K_VALUES = [4, 8, 16, 32, 64]


def _table():
    return {
        c: [theorem41_rho_minus(k, c) * c**2 for k in K_VALUES] for c in C_VALUES
    }


def bench_theorem41_rho(benchmark):
    """Time the log-space rho sweep and verify convergence to 1 at O(1/k)."""
    table = benchmark(_table)
    lines = [
        "Theorem 4.1 reproduction: rho_- * c^2 = 1 + O(1/k) for the "
        "equation-(2) family with w = sqrt(2 pi)/(2 c)",
        fmt_row("c", *[f"k={k}" for k in K_VALUES]),
    ]
    for c, values in table.items():
        lines.append(fmt_row(float(c), *map(float, values)))
        errors = [v - 1.0 for v in values]
        assert all(e > 0 for e in errors)
        assert errors[-1] < errors[0]
        assert abs(values[-1] - 1.0) < 0.1
        # O(1/k) rate: doubling k should shrink the excess substantially.
        for e1, e2 in zip(errors, errors[1:]):
            assert e2 < 0.8 * e1
    lines.append("")
    lines.append(
        "excess (rho_- c^2 - 1) shrinks by >= 20% per doubling of k at "
        "every c — consistent with the O(1/k) rate"
    )
    report("thm41_euclidean_rho", lines)
