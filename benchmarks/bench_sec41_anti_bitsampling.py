"""Section 4.1: anti bit-sampling is *not* optimal — sphere constructions win.

The paper's observation: anti bit-sampling's collision gap towards small
distances is ``rho_- = ln f(r)/ln f(r/c) = Omega(1/ln c)`` for small
relative distance ``r``, while embedding into the sphere and using the
filter (or cross-polytope) anti-LSH achieves ``rho_- = O(1/c)`` — a
qualitative separation, "perhaps surprising" because plain bit-sampling is
*optimal* in the classical (rho_+) direction.

We tabulate both exponents against ``c`` and exhibit the crossover: the
ratio anti-bit-sampling-rho / sphere-rho grows like ``c / ln c``.
"""

import numpy as np

from repro.families.filters import log_filter_collision_probability

from _harness import fmt_row, report

R = 0.01           # small relative Hamming distance (paper: r < 1/e)
C_VALUES = [2.0, 4.0, 8.0, 16.0]
T_FILTER = 3.0


def _anti_bit_sampling_rho(c: float) -> float:
    # CPF f(t) = t: rho_- = ln r / ln(r/c).
    return float(np.log(R) / np.log(R / c))


def _sphere_rho(c: float) -> float:
    # Embed: relative distance t <-> similarity 1 - 2t.  Filter D- exponent
    # between similarities at distances r and r/c; ln f reaches ~-900 here,
    # hence the log-space evaluation.
    alpha_r = 1.0 - 2.0 * R
    alpha_rc = 1.0 - 2.0 * R / c
    log_f_r = log_filter_collision_probability(alpha_r, T_FILTER, negated=True)
    log_f_rc = log_filter_collision_probability(alpha_rc, T_FILTER, negated=True)
    return float(log_f_r / log_f_rc)


def _table():
    return [
        (c, _anti_bit_sampling_rho(c), _sphere_rho(c), 1.0 / np.log(c), 1.0 / c)
        for c in C_VALUES
    ]


def bench_section41_separation(benchmark):
    """Time the exponent table and verify the Omega(1/ln c) vs O(1/c)
    separation."""
    rows = benchmark(_table)
    lines = [
        "Section 4.1 reproduction: rho_- of anti bit-sampling vs the "
        f"sphere filter anti-LSH (r={R}, filter t={T_FILTER})",
        fmt_row("c", "anti-bits", "sphere", "1/ln c", "1/c"),
    ]
    for c, anti, sph, inv_log, inv_c in rows:
        lines.append(
            fmt_row(float(c), float(anti), float(sph), float(inv_log), float(inv_c))
        )
    # Separation: the ratio anti/sphere must grow with c.
    ratios = [anti / sph for _, anti, sph, _, _ in rows]
    lines.append("")
    lines.append(
        "ratio anti/sphere: "
        + ", ".join(f"{r:.2f}" for r in ratios)
        + "  (growing ~ c/ln c -> sphere wins increasingly)"
    )
    assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))
    # The sphere construction hits the O(1/c) rate almost exactly ...
    for c, _, sph, _, inv_c in rows:
        assert abs(sph - inv_c) / inv_c < 0.1, f"sphere rho off 1/c at c={c}"
    # ... while anti bit-sampling follows its exact formula
    # rho = L/(L + ln c) with L = ln(1/r) — the Omega(1/ln c) behaviour.
    big_l = np.log(1 / R)
    for c, anti, _, _, _ in rows:
        assert anti == np.log(R) / np.log(R / c)
        assert abs(anti - big_l / (big_l + np.log(c))) < 1e-12
    report("sec41_anti_bitsampling", lines)
