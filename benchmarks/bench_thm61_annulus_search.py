"""Theorems 6.1 / 6.4: the annulus search data structure.

Claims: (a) a query for which a point at the target proximity exists
returns a point inside the reporting interval with probability >= 1/2;
(b) the candidate work is sublinear — governed by
``rho = (c_alpha + 1/c_alpha)/(c_beta + 1/c_beta) < 1`` (Theorem 6.4).

We build the sphere structure over planted instances at several data-set
sizes, measure success rate and candidates examined, compare candidate
growth with n against linear scanning, and tabulate the Theorem 6.4
exponent for the configured annuli.
"""

import numpy as np

from repro.data.synthetic import planted_sphere_annulus
from repro.families.annulus_sphere import theorem64_rho
from repro.index.annulus import sphere_annulus_index

from _harness import fmt_row, report

D = 24
INNER = (0.40, 0.50)   # where the planted point lives
OUTER = (0.30, 0.60)   # what we are allowed to report
SIZES = [500, 1000, 2000, 4000]
QUERIES_PER_SIZE = 8
N_TABLES = 150
T = 1.7


def _run():
    rows = []
    for n in SIZES:
        successes = 0
        examined = []
        for q in range(QUERIES_PER_SIZE):
            inst = planted_sphere_annulus(n, D, INNER, rng=1000 * n + q)
            index = sphere_annulus_index(
                inst.points, OUTER, t=T, n_tables=N_TABLES, rng=q
            )
            result = index.query(inst.query)
            examined.append(result.candidates_examined)
            if result.found:
                alpha = float(inst.points[result.index] @ inst.query)
                assert OUTER[0] <= alpha <= OUTER[1]
                successes += 1
        rows.append((n, successes / QUERIES_PER_SIZE, float(np.mean(examined))))
    return rows


def bench_theorem61_annulus(benchmark):
    """Time the full planted-instance sweep; verify success probability and
    sublinear candidate work."""
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "Theorem 6.1 reproduction: annulus search on planted sphere "
        f"instances (inner {INNER}, report {OUTER}, t={T}, L={N_TABLES})",
        fmt_row("n", "success", "mean candidates", "linear scan", width=16),
    ]
    for n, success, cand in rows:
        lines.append(fmt_row(n, float(success), float(cand), n, width=16))
        assert success >= 0.5, f"success below 1/2 at n={n}"
        assert cand < n / 4, f"candidate work not sublinear at n={n}"
    # Candidate work must grow much slower than n (n^rho vs n).
    growth = rows[-1][2] / max(rows[0][2], 1.0)
    linear_growth = SIZES[-1] / SIZES[0]
    lines.append("")
    lines.append(
        f"candidate growth over the sweep: x{growth:.2f} vs x{linear_growth:.0f} "
        "for a linear scan"
    )
    assert growth < linear_growth / 2
    # Theorem 6.4 exponent for this configuration.
    rho = theorem64_rho(INNER[0], INNER[1], OUTER[0], OUTER[1])
    lines.append(
        f"Theorem 6.4 exponent for these annuli: rho = {rho:.3f} "
        "(query time n^rho, space n^(1+rho))"
    )
    assert 0 < rho < 1
    report("thm61_annulus_search", lines)
