"""Theorem 6.5: output-sensitive range reporting with step CPFs.

Claim: with a step-function CPF the expected number of retrievals per
reported point is bounded by ``~L f_max``, within a factor ``f_max/f_min``
of the minimum possible for recall ``1 - e^{-L f_min}`` — while a
classical monotone LSH re-retrieves its closest in-range points in nearly
every repetition.  We compare both on the same planted instances at
matched table counts and report recall, in-range retrievals per reported
point, and the theoretical ``f_max/f_min`` accounting.
"""

import numpy as np

from repro.core.combinators import PoweredFamily
from repro.data.synthetic import planted_euclidean_range
from repro.families.euclidean_lsh import ShiftedGaussianProjection, shifted_collision_probability
from repro.families.step import design_step_family
from repro.index.range_reporting import RangeReportingIndex

from _harness import fmt_row, report

D = 8
RADIUS = 4.0
N_POINTS = 800
N_NEAR = 40
N_TABLES = 60
N_INSTANCES = 5


def _euclid(q, pts):
    return np.linalg.norm(pts - q, axis=1)


def _run():
    design = design_step_family(D, r_flat=RADIUS, level=0.12, n_components=4)
    classical = PoweredFamily(ShiftedGaussianProjection(D, w=4.0, k=0), 2)
    step_rows, classical_rows = [], []
    for i in range(N_INSTANCES):
        inst = planted_euclidean_range(N_POINTS, D, RADIUS, n_near=N_NEAR, rng=50 + i)
        truth = set(inst.near_indices)
        for fam, rows in [(design.family, step_rows), (classical, classical_rows)]:
            index = RangeReportingIndex(
                inst.points, fam, RADIUS, _euclid, N_TABLES, rng=100 + i
            )
            rep = index.query(inst.query)
            recall = len(set(rep.indices) & truth) / len(truth)
            rows.append((recall, rep.retrievals_per_report, rep.far_retrievals))
    return design, step_rows, classical_rows


def bench_theorem65_range_reporting(benchmark):
    """Time the paired comparison and verify the duplicate-factor claim."""
    design, step_rows, classical_rows = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    step_recall = float(np.mean([r for r, _, _ in step_rows]))
    step_dup = float(np.mean([d for _, d, _ in step_rows]))
    cls_recall = float(np.mean([r for r, _, _ in classical_rows]))
    cls_dup = float(np.mean([d for _, d, _ in classical_rows]))
    # Theoretical accounting for the step family.
    lines = [
        "Theorem 6.5 reproduction: range reporting, step CPF vs classical "
        f"LSH (n={N_POINTS}, |S|={N_NEAR}, L={N_TABLES}, "
        f"{N_INSTANCES} instances)",
        fmt_row("index", "recall", "in-range/report", "far noise", width=17),
        fmt_row(
            "step CPF",
            step_recall,
            step_dup,
            float(np.mean([f for _, _, f in step_rows])),
            width=17,
        ),
        fmt_row(
            "classical LSH",
            cls_recall,
            cls_dup,
            float(np.mean([f for _, _, f in classical_rows])),
            width=17,
        ),
        "",
        f"step family flat region: f_min={design.f_min:.4f} "
        f"f_max={design.f_max:.4f} (ratio {design.f_max / design.f_min:.3f})",
        f"step bound L*f_max = {N_TABLES * design.f_max:.1f} retrievals per "
        f"reported point; measured {step_dup:.1f}",
    ]
    # Classical accounting: its CPF at distance ~0 is 1, so close points are
    # retrieved ~L times: the per-report figure is far above the step's.
    classical_fmax = float(shifted_collision_probability(1e-9, 0, 4.0)) ** 2
    lines.append(
        f"classical f_max = {classical_fmax:.2f} -> its closest points are "
        f"retrieved in ~all {N_TABLES} tables; measured {cls_dup:.1f}"
    )
    lines.append(
        f"duplicate-factor advantage (classical/step): {cls_dup / step_dup:.2f}x"
    )
    report("thm65_range_reporting", lines)
    assert step_recall >= 0.85
    assert cls_dup > 1.5 * step_dup
    assert step_dup <= N_TABLES * design.f_max * 1.3 + 1.0
