"""Theorem 1.3 / Lemma 3.5 (and Lemma 3.10): the monotone DSH lower bounds.

Claim: every distribution over pairs ``h, g : {0,1}^d -> R`` satisfies

    f_hat(alpha) >= f_hat(0)^((1+alpha)/(1-alpha))        (Lemma 3.5)
    f_hat(alpha) <= f_hat(0)^((1-alpha)/(1+alpha))        (Lemma 3.10)

We verify both *exactly* (noise-operator computation over the full cube,
no Monte Carlo slack) for a spectrum of families — including the Theorem
1.2 filter construction, whose distance from the Lemma 3.5 floor shows the
claimed near-tightness.
"""

import numpy as np

from repro.bounds.monotone import (
    forward_bound_curve,
    reverse_bound_curve,
    verify_forward_bound,
    verify_reverse_bound,
)
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.families.filters import GaussianFilterFamily
from repro.families.simhash import SimHash
from repro.spaces.embeddings import hamming_to_sphere

from _harness import fmt_row, report

D = 10
ALPHAS = [0.0, 0.2, 0.4, 0.6, 0.8]

FAMILIES = [
    ("anti bit-sampling", AntiBitSampling(D), None),
    ("bit-sampling", BitSampling(D), None),
    ("simhash (embedded)", SimHash(D), hamming_to_sphere),
    (
        "filter D- t=1.5",
        GaussianFilterFamily(D, t=1.5, m=256, negated=True),
        hamming_to_sphere,
    ),
    (
        "filter D- t=2.0",
        GaussianFilterFamily(D, t=2.0, m=1024, negated=True),
        hamming_to_sphere,
    ),
]


def _verify_all():
    out = {}
    for name, family, point_map in FAMILIES:
        out[name] = verify_reverse_bound(
            family, D, ALPHAS, n_pairs=16, rng=5, point_map=point_map
        )
    return out


def bench_theorem13_reverse_bound(benchmark):
    """Time the exact verification across all families and emit the
    f_hat-vs-floor table plus the tightness ratio of the filter family."""
    results = benchmark(_verify_all)
    lines = [
        "Theorem 1.3 reproduction: f_hat(alpha) >= f_hat(0)^((1+a)/(1-a)) "
        "(exact, noise-operator computation, d=10)",
    ]
    for name, checks in results.items():
        lines.append("")
        lines.append(f"family: {name}")
        lines.append(fmt_row("alpha", "f_hat", "floor", "ok"))
        for c in checks:
            lines.append(fmt_row(float(c.alpha), c.f_hat, c.bound, str(c.satisfied)))
            assert c.satisfied, f"{name} violates Lemma 3.5 at {c.alpha}"
    # Near-tightness of Theorem 1.2's construction: log-ratio to the floor.
    lines.append("")
    lines.append(
        "tightness of the filter construction (ln f_hat / ln floor, "
        "1.0 = exactly on the lower bound):"
    )
    lines.append(fmt_row("alpha", "t=1.5", "t=2.0"))
    for i, alpha in enumerate(ALPHAS[1:], start=1):
        cells = []
        for name in ("filter D- t=1.5", "filter D- t=2.0"):
            c = results[name][i]
            cells.append(float(np.log(c.f_hat) / np.log(c.bound)))
        lines.append(fmt_row(float(alpha), *cells))
        assert all(0.2 < v <= 1.0 for v in cells)
    report("thm13_lower_bound", lines)


def bench_lemma310_forward_bound(benchmark):
    """The increasing-direction ceiling (Lemma 3.10), exact for symmetric
    and asymmetric families alike."""
    def _verify():
        out = {}
        for name, family, point_map in FAMILIES[:3]:
            out[name] = verify_forward_bound(
                family, D, ALPHAS, n_pairs=16, rng=6, point_map=point_map
            )
        return out

    results = benchmark(_verify)
    lines = [
        "Lemma 3.10 reproduction: f_hat(alpha) <= f_hat(0)^((1-a)/(1+a)) "
        "(exact)",
    ]
    for name, checks in results.items():
        lines.append("")
        lines.append(f"family: {name}")
        lines.append(fmt_row("alpha", "f_hat", "ceiling", "ok"))
        for c in checks:
            lines.append(fmt_row(float(c.alpha), c.f_hat, c.bound, str(c.satisfied)))
            assert c.satisfied, f"{name} violates Lemma 3.10 at {c.alpha}"
    # Bit-sampling saturates the ceiling shape up to lower-order terms:
    # f_hat(alpha) = (1+alpha)/2 vs ceiling (1/2)^((1-a)/(1+a)).
    lines.append("")
    lines.append("bit-sampling vs ceiling (the classical-LSH tight case):")
    for c in results["bit-sampling"]:
        lines.append(
            fmt_row(float(c.alpha), c.f_hat, c.bound, f"{c.f_hat / c.bound:.3f}")
        )
    report("lemma310_forward_bound", lines)
