"""Theorem 5.2: polynomial CPFs in Hamming space, ``f = P(t)/Delta``.

We build the root-factorized construction for a portfolio of polynomials
(real roots, complex pairs, zero roots), verify the achieved CPF against
``P(t)/Delta`` by Monte Carlo across the distance range, and compare our
per-factor scaling ``Delta`` with the theorem's stated value (ours is never
worse, strictly better for complex pairs with non-positive real part).
"""

import numpy as np

from repro.core.estimate import estimate_collision_probability
from repro.families.polynomial_hamming import build_polynomial_family
from repro.spaces import hamming

from _harness import fmt_row, report

D = 48
POLYNOMIALS = {
    "t + 1/2": [0.5, 1.0],
    "2 - t": [2.0, -1.0],
    "(t+1/2)(2-t)": [1.0, 1.5, -1.0],
    "t^2 + t + 1/2": [0.5, 1.0, 1.0],          # roots -1/2 +- i/2
    "(t-3/2)^2 + 1": [3.25, -3.0, 1.0],        # roots 3/2 +- i
    "t (t + 2)": [0.0, 2.0, 1.0],              # zero root + real root -2
}
DISTANCES = [0, 12, 24, 36, 48]


def _build_all():
    return {name: build_polynomial_family(c, D) for name, c in POLYNOMIALS.items()}


def bench_theorem52_constructions(benchmark):
    """Time the constructions and verify CPFs + Delta accounting."""
    schemes = benchmark(_build_all)
    lines = [
        "Theorem 5.2 reproduction: achieved CPF = P(t)/Delta "
        f"(d={D}, Monte Carlo vs analytic)",
    ]
    for name, scheme in schemes.items():
        lines.append("")
        lines.append(
            f"P(t) = {name}: construction Delta = {scheme.delta:g}, "
            f"theorem's Delta = {scheme.theorem_delta:g}"
        )
        assert scheme.delta <= scheme.theorem_delta + 1e-9
        lines.append(fmt_row("t", "measured", "P(t)/Delta"))
        for r in DISTANCES:
            est = estimate_collision_probability(
                scheme.family,
                lambda n, rng, rr=r: hamming.pairs_at_distance(n, D, rr, rng),
                n_functions=150,
                pairs_per_function=60,
                rng=17 + r,
            )
            expected = float(scheme.cpf(r / D))
            lines.append(fmt_row(float(r / D), est.p_hat, expected))
            assert est.contains(expected), (name, r)
    improved = [
        name
        for name, scheme in schemes.items()
        if scheme.delta < scheme.theorem_delta - 1e-9
    ]
    lines.append("")
    lines.append(
        "polynomials where the per-factor gadgets beat the theorem's "
        f"stated Delta: {improved}"
    )
    report("thm52_poly_hamming", lines)
