"""Application-layer batched queries: ``batch_query`` vs a single-query loop.

PR 1 made the *raw* index ~6x faster on batched queries; this benchmark
measures what the batch-first application API recovers of that at the
Section 6 application layers, where the single-query paths are lazy Python
streams (annulus search: per-table hashing + per-candidate proximity
checks; range reporting: per-query drain + dedup).  ``batch_query`` routes
both through the packed backend's batched searchsorted/gather core with
per-query budget truncation intact, so the speedup is pure vectorization —
results are checked element-for-element identical before any timing is
trusted.

Workloads (full size: n = 50k points, L = 32 tables):

* annulus search (Theorem 6.4 sphere instantiation) with a mixed query
  stream — some queries find an in-band point after a few candidates, the
  rest drain their budget — the regime a serving process actually sees;
* range reporting (Theorem 6.5) with a sharpened (powered) step family,
  i.e. lean candidate streams where per-query fixed costs dominate.  (With
  very dense streams the cost is the per-query candidate processing itself,
  which both paths share — batching is then neutral, not harmful.)

Set ``BENCH_SMOKE=1`` to shrink the instance for CI smoke runs (the
speedup assertions are only enforced at full size).
"""

import os

import numpy as np

from repro.core.combinators import PoweredFamily
from repro.data.synthetic import planted_euclidean_range
from repro.families.step import design_step_family
from repro.index import RangeReportingIndex, sphere_annulus_index
from repro.spaces import sphere

from _harness import fmt_row, report, timed

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_POINTS = 2_000 if SMOKE else 50_000
N_QUERIES = 32 if SMOKE else 256
N_TABLES = 8 if SMOKE else 32
SEED = 2018
MIN_SPEEDUP = 3.0

ANNULUS_D = 32
ANNULUS_BAND = (0.5, 0.65)
ANNULUS_T = 1.8

RANGE_D = 8
RANGE_RADIUS = 4.0


def _assert_annulus_equal(loop_results, batch_results):
    for single, batched in zip(loop_results, batch_results):
        assert single.index == batched.index
        assert single.stats == batched.stats


def _annulus_case():
    rng = np.random.default_rng(SEED)
    points = sphere.random_points(N_POINTS, ANNULUS_D, rng=rng)
    queries = sphere.random_points(N_QUERIES, ANNULUS_D, rng=rng)
    index = sphere_annulus_index(
        points, ANNULUS_BAND, t=ANNULUS_T, n_tables=N_TABLES, rng=SEED + 1,
        backend="packed",
    )
    index.batch_query(queries[:8])  # warm-up (hash closures, allocator)
    loop_results, loop_s = timed(lambda: [index.query(q) for q in queries])
    batch_results, batch_s = timed(lambda: index.batch_query(queries))
    _assert_annulus_equal(loop_results, batch_results)
    found = sum(r.found for r in loop_results)
    return loop_s, batch_s, f"{found}/{N_QUERIES} found"


def _range_case():
    inst = planted_euclidean_range(
        N_POINTS, RANGE_D, RANGE_RADIUS, n_near=60, rng=SEED
    )
    design = design_step_family(
        RANGE_D, r_flat=RANGE_RADIUS, level=0.3, n_components=4
    )
    family = PoweredFamily(design.family, 2)
    rng = np.random.default_rng(SEED + 2)
    # Half the queries sit on the planted neighborhood, half far away.
    queries = np.vstack(
        [
            inst.query + rng.normal(0, 0.5, size=(N_QUERIES // 2, RANGE_D)),
            rng.normal(0, 30.0, size=(N_QUERIES - N_QUERIES // 2, RANGE_D)),
        ]
    )
    index = RangeReportingIndex(
        inst.points,
        family,
        RANGE_RADIUS,
        lambda q, pts: np.linalg.norm(pts - q, axis=1),
        N_TABLES,
        rng=SEED + 3,
        backend="packed",
    )
    index.batch_query(queries[:8])
    loop_results, loop_s = timed(lambda: [index.query(q) for q in queries])
    batch_results, batch_s = timed(lambda: index.batch_query(queries))
    assert loop_results == batch_results
    reported = sum(len(r.indices) for r in loop_results)
    return loop_s, batch_s, f"{reported} total reported"


def bench_application_batch_query(benchmark):
    """Time annulus + range-reporting batch_query against single-query
    loops; require >= 3x batched speedup on both at full size."""
    cases, _total_s = timed(
        lambda: {"annulus": _annulus_case(), "range_reporting": _range_case()}
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Application-layer batch_query vs single-query loop on the packed "
        f"backend (n={N_POINTS}, L={N_TABLES}, {N_QUERIES} queries"
        f"{', SMOKE' if SMOKE else ''})",
        fmt_row("application", "loop s", "batch s", "speedup", "workload",
                width=20),
    ]
    speedups = {}
    for name, (loop_s, batch_s, note) in cases.items():
        speedups[name] = loop_s / batch_s
        lines.append(
            fmt_row(name, loop_s, batch_s, f"x{loop_s / batch_s:.1f}", note,
                    width=20)
        )
    lines += [
        "",
        "batch results were checked element-for-element identical to the "
        "loop before timing (indices, stats, truncation).",
    ]
    report(
        "app_batch",
        lines,
        metrics={
            name: {
                "loop_s": loop_s,
                "batch_s": batch_s,
                "speedup": loop_s / batch_s,
            }
            for name, (loop_s, batch_s, _note) in cases.items()
        },
        config={
            "n_points": N_POINTS,
            "n_queries": N_QUERIES,
            "n_tables": N_TABLES,
            "smoke": SMOKE,
        },
    )
    # Timing assertions only at full size — smoke instances are small
    # enough that fixed costs and scheduler noise dominate.
    if not SMOKE:
        for name, speedup in speedups.items():
            assert speedup >= MIN_SPEEDUP, (
                f"{name} batch_query only x{speedup:.2f} faster than the "
                f"single-query loop (required x{MIN_SPEEDUP})"
            )
