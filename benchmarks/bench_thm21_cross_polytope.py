"""Theorem 2.1 / Corollary 2.2: cross-polytope CPF asymptotics.

Claim: the cross-polytope LSH satisfies
``ln(1/f(alpha)) = (1-alpha)/(1+alpha) ln d + O_alpha(ln ln d)``, and the
negated-query family CP- mirrors it with ``alpha -> -alpha``.  We measure
``ln(1/f)/ln d`` across dimensions via the projected-space estimator and
check convergence towards the predicted slope, plus the CP+/CP- mirror
identity.
"""

import numpy as np

from repro.families.cross_polytope import collision_probability

from _harness import fmt_row, report

DIMENSIONS = [8, 16, 32, 64, 128, 256]
ALPHAS = [0.0, 0.3, 0.5]
SAMPLES = 400_000


def _table():
    rows = []
    for alpha in ALPHAS:
        slopes = []
        for d in DIMENSIONS:
            f = collision_probability(alpha, d, n_samples=SAMPLES, rng=11)
            slopes.append(np.log(1 / f) / np.log(d))
        rows.append((alpha, slopes))
    return rows


def bench_theorem21_slopes(benchmark):
    """Time the CPF estimation sweep and verify slope convergence to
    (1-alpha)/(1+alpha)."""
    rows = benchmark.pedantic(_table, rounds=1, iterations=1)
    lines = [
        "Theorem 2.1 reproduction: ln(1/f(alpha)) / ln d vs "
        "(1-alpha)/(1+alpha) for CP+",
        fmt_row("alpha", "target", *[f"d={d}" for d in DIMENSIONS]),
    ]
    for alpha, slopes in rows:
        target = (1 - alpha) / (1 + alpha)
        lines.append(fmt_row(float(alpha), float(target), *map(float, slopes)))
        # O(ln ln d / ln d) corrections: the last dimension must be closer
        # than the first.
        assert abs(slopes[-1] - target) < abs(slopes[0] - target) + 0.02, (
            f"no convergence at alpha={alpha}"
        )
        assert abs(slopes[-1] - target) < 0.3

    lines.append("")
    lines.append(
        "Corollary 2.2 mirror identity f_-(alpha) = f_+(-alpha) at d=32 "
        "(Monte Carlo, 1M samples per point):"
    )
    lines.append(fmt_row("alpha", "f_+(-a)", "f_-(a)"))
    for alpha in [0.2, 0.4]:
        plus = collision_probability(-alpha, 32, n_samples=1_000_000, rng=12)
        minus = collision_probability(
            alpha, 32, negated=True, n_samples=1_000_000, rng=13
        )
        lines.append(fmt_row(float(alpha), float(plus), float(minus)))
        # Both sides are MC estimates of the same (small) probability; allow
        # combined sampling error.
        assert abs(plus - minus) / max(plus, minus) < 0.25
    report("thm21_cross_polytope", lines)
