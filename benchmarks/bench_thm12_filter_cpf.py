"""Theorem 1.2 / Theorem A.6: the Gaussian filter CPF asymptotics.

Claim: for the filter family D- (and mirrored for D+),

    ln(1/f(alpha)) = (1+alpha)/(1-alpha) * t^2/2 + Theta(log t),

for ``|alpha| < 1 - 1/t``.  We tabulate ``ln(1/f(alpha)) / (t^2/2)``
against the predicted slope ``(1+alpha)/(1-alpha)`` for growing ``t`` —
the ratio must converge (the ``Theta(log t)/t^2`` correction vanishes) —
and cross-check the exact CPF by Monte Carlo at a feasible ``t``.
"""

import numpy as np

from repro.core.estimate import estimate_collision_probability
from repro.families.filters import (
    GaussianFilterFamily,
    cpf_lower_bound,
    cpf_upper_bound,
    filter_collision_probability,
)
from repro.spaces import sphere

from _harness import fmt_row, report

ALPHAS = [-0.5, -0.25, 0.0, 0.25, 0.5]
T_VALUES = [1.5, 2.0, 2.5, 3.0, 4.0]
D = 12


def _table():
    rows = []
    for alpha in ALPHAS:
        target = (1 + alpha) / (1 - alpha)
        ratios = []
        for t in T_VALUES:
            f = filter_collision_probability(alpha, t, negated=True)
            ratios.append(np.log(1 / f) / (t**2 / 2))
        rows.append((alpha, target, ratios))
    return rows


def bench_theorem12_asymptotics(benchmark):
    """Time the exact-CPF table and verify the slope convergence plus the
    Lemma A.5 bracketing and a Monte Carlo spot check."""
    rows = benchmark(_table)
    lines = [
        "Theorem 1.2 reproduction: ln(1/f(alpha)) / (t^2/2) -> "
        "(1+alpha)/(1-alpha) for D-",
        fmt_row("alpha", "target", *[f"t={t:g}" for t in T_VALUES]),
    ]
    for alpha, target, ratios in rows:
        lines.append(fmt_row(float(alpha), float(target), *map(float, ratios)))
        err_first = abs(ratios[0] - target)
        err_last = abs(ratios[-1] - target)
        assert err_last < err_first, f"no convergence at alpha={alpha}"
    lines.append("")
    lines.append("Lemma A.5 bracketing at t=2.5 (lower <= f <= upper):")
    lines.append(fmt_row("alpha", "lower", "f exact", "upper"))
    for alpha in ALPHAS:
        f = filter_collision_probability(alpha, 2.5, negated=True)
        lo = cpf_lower_bound(alpha, 2.5, negated=True)
        hi = cpf_upper_bound(alpha, 2.5, negated=True)
        lines.append(fmt_row(float(alpha), float(lo), float(f), float(hi)))
        assert lo - 1e-12 <= f <= hi + 1e-12

    lines.append("")
    lines.append("Monte Carlo validation at t=1.5 (measured vs exact):")
    fam = GaussianFilterFamily(D, t=1.5, negated=True)
    lines.append(fmt_row("alpha", "measured", "exact"))
    for alpha in [-0.4, 0.0, 0.4]:
        est = estimate_collision_probability(
            fam,
            lambda n, rng, a=alpha: sphere.pairs_at_inner_product(n, D, a, rng),
            n_functions=150,
            pairs_per_function=100,
            rng=3,
        )
        exact = filter_collision_probability(alpha, 1.5, fam.m, negated=True)
        lines.append(fmt_row(float(alpha), est.p_hat, float(exact)))
        assert est.contains(exact)
    report("thm12_filter_cpf", lines)
