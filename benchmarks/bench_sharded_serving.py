"""Zero-copy persistence + multi-core sharded serving benchmark.

Measures what the serving layer buys at production-ish scale (n = 100k
points, L = 16 tables by default):

* **cold start** — reviving a saved packed index with ``load_index``
  (mmap'd CSR arrays, O(1) in ``n``) vs rebuilding from the spec
  (``O(L n)`` hash evaluations).  Asserted ≥ 10× at full size.
* **batched query throughput** — a saved 4-shard index served by a
  process pool with 4 workers vs 1 worker (identical machinery, so the
  ratio isolates multi-core scaling).  Asserted ≥ 2.5× at full size
  *when the host actually has ≥ 4 usable cores* — the assertion is
  meaningless on smaller machines and is skipped with a note instead.
* **result transport** — bytes crossing the executor pipe per pooled
  ``batch_query`` (shared-memory hit transport + worker-side budget
  clipping) vs the pickled-stream baseline: every shard's full unclipped
  ``BatchHits`` pickled back to the parent, which is exactly what the
  pre-shared-memory implementation shipped.  Asserted ≥ 5× smaller at
  full size (byte accounting, so no core-count gate).
* **threaded build** — ``DSHIndex.build(workers=)`` per-table hashing
  speedup (reported, not asserted: thread scaling depends on BLAS/NumPy
  release behaviour per family).

Every pool-served result — including a budgeted run that exercises the
worker-side ``max_retrieved`` clip — is checked identical to the unsharded
in-memory index before any timing is trusted.  Set ``BENCH_SMOKE=1`` to
shrink the instance for CI smoke runs (assertions are only enforced at
full size).
"""

import os
import pickle
import tempfile

import numpy as np

from repro.api import IndexSpec, load_index, save_index
from repro.serving import ServingOptions
from repro.spaces import hamming

from _harness import clustered_hamming, fmt_row, median_time, report, timed

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_POINTS = 4_000 if SMOKE else 100_000
N_QUERIES = 64 if SMOKE else 512
N_TABLES = 8 if SMOKE else 16
N_CLUSTERS = 40 if SMOKE else 100
D = 64
K = 16
SEED = 2018
SHARDS = 4
BUDGET = 16 * N_TABLES  # exercises the worker-side table-granularity clip
QUERY_REPEATS = 3 if SMOKE else 5
MIN_COLD_START_SPEEDUP = 10.0
MIN_POOL_SCALING = 2.5
MIN_TRANSPORT_REDUCTION = 5.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _spec(shards=1):
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": K},
        n_tables=N_TABLES,
        backend="packed",
        seed=SEED + 2,
        shards=shards,
    )


def _pickled_stream_bytes(sharded_path, queries) -> int:
    """The pre-shared-memory transport baseline: every shard's full,
    unclipped ``BatchHits`` pickled through the executor pipe."""
    served = load_index(sharded_path)  # in-process: same streams as workers
    return sum(
        len(pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL))
        for block in served._shard_blocks(queries)
    )


def _assert_pool_parity(served, queries, reference, reference_budget, label):
    results = served.batch_query(queries)
    assert [r.indices for r in results] == [
        r.indices for r in reference
    ] and [r.stats for r in results] == [
        r.stats for r in reference
    ], f"pool results diverged at {label}"
    budgeted = served.batch_query(queries, max_retrieved=BUDGET)
    assert [r.indices for r in budgeted] == [
        r.indices for r in reference_budget
    ] and [r.stats for r in budgeted] == [
        r.stats for r in reference_budget
    ], f"worker-clipped pool results diverged at {label}"


def _run():
    rng = np.random.default_rng(SEED)
    prototypes = hamming.random_points(N_CLUSTERS, D, rng=rng)
    points = clustered_hamming(prototypes, N_POINTS, rng)
    queries = clustered_hamming(prototypes, N_QUERIES, rng)

    out = {}

    # Build: serial vs threaded per-table hashing.
    flat, build_serial_s = timed(lambda: _spec().build(points))
    _, build_threads_s = timed(lambda: _spec().build(points, workers=4))
    out["build_serial_s"] = build_serial_s
    out["build_threads_s"] = build_threads_s

    reference = flat.batch_query(queries)
    reference_budget = flat.batch_query(queries, max_retrieved=BUDGET)

    with tempfile.TemporaryDirectory() as tmp:
        # Cold start: load (mmap) vs rebuild from spec.
        flat_path = os.path.join(tmp, "flat")
        save_index(flat, flat_path)
        out["rebuild_s"] = median_time(
            lambda: _spec().build(points), 1 if SMOKE else 2
        )
        out["load_s"] = median_time(lambda: load_index(flat_path), 5)
        loaded = load_index(flat_path)
        assert [r.indices for r in loaded.batch_query(queries)] == [
            r.indices for r in reference
        ], "loaded index diverged from the original"

        # Sharded pool serving: identical machinery at 1 vs 4 workers.
        sharded_path = os.path.join(tmp, "sharded")
        sharded = _spec(shards=SHARDS).build(points, workers=2)
        save_index(sharded, sharded_path)
        out["pickled_stream_bytes"] = _pickled_stream_bytes(
            sharded_path, queries
        )
        for workers in (1, 4):
            with load_index(sharded_path, options=ServingOptions(workers=workers)) as served:
                # Warm worker caches and verify both the plain and the
                # worker-clipped paths before timing anything.
                _assert_pool_parity(
                    served, queries, reference, reference_budget,
                    f"workers={workers}",
                )
                out[f"pool{workers}_s"] = median_time(
                    lambda: served.batch_query(queries), QUERY_REPEATS
                )
                if workers == SHARDS:
                    served.batch_query(queries)
                    out["transport"] = dict(served.last_transport)
                    served.batch_query(queries, max_retrieved=BUDGET)
                    out["transport_budgeted"] = dict(served.last_transport)
    return out


def bench_sharded_serving(benchmark):
    """Time the persistence + sharded-serving sweep; require >= 10x cold
    start vs rebuild, >= 2.5x batched throughput at 4 pool workers vs 1
    (full size, >= 4 usable cores), and >= 5x fewer bytes over the
    executor pipe than the pickled-stream baseline (full size)."""
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    cores = _usable_cores()
    cold_speedup = timings["rebuild_s"] / timings["load_s"]
    build_speedup = timings["build_serial_s"] / timings["build_threads_s"]
    pool_scaling = timings["pool1_s"] / timings["pool4_s"]
    qps = {w: N_QUERIES / timings[f"pool{w}_s"] for w in (1, 4)}
    transport = timings["transport"]
    transport_budgeted = timings["transport_budgeted"]
    baseline_bytes = timings["pickled_stream_bytes"]
    transport_reduction = baseline_bytes / max(transport["pipe_bytes"], 1)
    lines = [
        "Sharded serving: zero-copy cold start + process-pool batched "
        f"queries (n={N_POINTS} clustered points, L={N_TABLES}, "
        f"c={K} components, {SHARDS} shards, {N_QUERIES} batched queries, "
        f"{cores} usable cores{', SMOKE' if SMOKE else ''})",
        fmt_row("path", "seconds", width=28),
        fmt_row("rebuild from spec", timings["rebuild_s"], width=28),
        fmt_row("load_index (mmap)", timings["load_s"], width=28),
        fmt_row("build serial", timings["build_serial_s"], width=28),
        fmt_row("build 4 threads", timings["build_threads_s"], width=28),
        fmt_row("batch query, pool x1", timings["pool1_s"], width=28),
        fmt_row("batch query, pool x4", timings["pool4_s"], width=28),
        "",
        f"cold-start speedup (load vs rebuild): x{cold_speedup:.1f}",
        f"threaded build speedup: x{build_speedup:.2f}",
        f"pool throughput: {qps[1]:.0f} q/s @1 worker, "
        f"{qps[4]:.0f} q/s @4 workers (x{pool_scaling:.2f})",
        f"transport: {baseline_bytes} B pickled-stream baseline -> "
        f"{transport['pipe_bytes']} B over the pipe "
        f"(x{transport_reduction:.1f} smaller; "
        f"{transport['shm_bytes']} B via shared memory, "
        f"{transport['tasks']} tasks / {transport['chunks']} chunks)",
        f"worker-clipped (max_retrieved={BUDGET}): "
        f"{transport_budgeted['pipe_bytes']} B pipe + "
        f"{transport_budgeted['shm_bytes']} B shm",
    ]
    report(
        "sharded_serving",
        lines,
        metrics={
            "cold_start_speedup": cold_speedup,
            "threaded_build_speedup": build_speedup,
            "pool_scaling_4v1": pool_scaling,
            "queries_per_s": {"workers_1": qps[1], "workers_4": qps[4]},
            "transport": {
                "pickled_stream_bytes": baseline_bytes,
                "pipe_bytes": transport["pipe_bytes"],
                "shm_bytes": transport["shm_bytes"],
                "reduction_x": transport_reduction,
                "tasks": transport["tasks"],
                "chunks": transport["chunks"],
                "budgeted_pipe_bytes": transport_budgeted["pipe_bytes"],
                "budgeted_shm_bytes": transport_budgeted["shm_bytes"],
            },
            "median_s": {
                key: timings[key]
                for key in (
                    "rebuild_s", "load_s", "build_serial_s",
                    "build_threads_s", "pool1_s", "pool4_s",
                )
            },
        },
        config={
            "n_points": N_POINTS,
            "n_queries": N_QUERIES,
            "n_tables": N_TABLES,
            "components": K,
            "shards": SHARDS,
            "budget": BUDGET,
            "smoke": SMOKE,
            "usable_cores": cores,
        },
    )
    # Timing assertions only at full size — smoke instances are small
    # enough that process startup and scheduler noise dominate.  The
    # transport assertion is byte accounting, deterministic at full size
    # regardless of cores.
    if not SMOKE:
        assert cold_speedup >= MIN_COLD_START_SPEEDUP, (
            f"mmap cold start only x{cold_speedup:.1f} faster than rebuild "
            f"(required x{MIN_COLD_START_SPEEDUP})"
        )
        assert transport_reduction >= MIN_TRANSPORT_REDUCTION, (
            f"shared-memory transport only x{transport_reduction:.1f} fewer "
            f"bytes over the pipe than the pickled-stream baseline "
            f"(required x{MIN_TRANSPORT_REDUCTION})"
        )
        if cores >= 4:
            assert pool_scaling >= MIN_POOL_SCALING, (
                f"4-worker pool only x{pool_scaling:.2f} over 1 worker "
                f"(required x{MIN_POOL_SCALING})"
            )
        else:
            print(
                f"[sharded_serving] NOTE: only {cores} usable core(s); "
                f"skipping the >=x{MIN_POOL_SCALING} 4-worker scaling "
                "assertion (needs >= 4 cores to be meaningful)"
            )
