"""Theorems 3.7 / 3.8: the rho_- floor ``1/(2c - 1)``.

Section 3.1 rewrites the monotone-DSH lower bound in terms of relative
Hamming distances ``delta`` and ``delta/c``: every increasingly-sensitive
family must satisfy ``rho >= 1/(2c-1) - o_d(1)``.  We tabulate the
achieved exponents of the library's constructions against the floor:
everything sits above it, the sphere filter family comes within a factor
~2 (its ``1/c``), and anti bit-sampling is far above — the same ordering
the paper's discussion predicts.
"""

import numpy as np

from repro.bounds.monotone import theorem38_rho_lower_bound
from repro.families.filters import log_filter_collision_probability

from _harness import fmt_row, report

R = 0.02
C_VALUES = [1.5, 2.0, 3.0, 5.0, 8.0]
T_FILTER = 3.0


def _achieved():
    rows = []
    for c in C_VALUES:
        floor = theorem38_rho_lower_bound(c)
        anti = float(np.log(R) / np.log(R / c))
        alpha_r = 1.0 - 2.0 * R
        alpha_rc = 1.0 - 2.0 * R / c
        log_f_r = log_filter_collision_probability(alpha_r, T_FILTER, negated=True)
        log_f_rc = log_filter_collision_probability(alpha_rc, T_FILTER, negated=True)
        sphere = float(log_f_r / log_f_rc)
        rows.append((c, floor, sphere, anti))
    return rows


def bench_theorem38_floor(benchmark):
    """Time the exponent sweep; verify that no construction crosses the
    floor and that the filter family stays within a small factor of it."""
    rows = benchmark(_achieved)
    lines = [
        "Theorems 3.7/3.8 reproduction: achieved rho_- vs the 1/(2c-1) "
        f"floor (relative distance r={R}, filter t={T_FILTER})",
        fmt_row("c", "floor 1/(2c-1)", "sphere filter", "anti-bits", width=15),
    ]
    for c, floor, sphere, anti in rows:
        lines.append(fmt_row(float(c), float(floor), float(sphere), float(anti), width=15))
        assert sphere >= floor - 1e-9, f"filter family crosses the floor at c={c}"
        assert anti >= floor - 1e-9
        assert anti > sphere  # the Section 4.1 ordering
        # The filter's 1/c is within a factor (2c-1)/c < 2 of the floor.
        assert sphere / floor < 2.2
    lines.append("")
    lines.append(
        "the sphere filter's ~1/c sits within a factor (2c-1)/c < 2 of the "
        "universal floor; no construction crosses it"
    )
    report("thm38_rho_floor", lines)
