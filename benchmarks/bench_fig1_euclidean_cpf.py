"""Figure 1: CPF of the shifted Euclidean family (equation (2), k=3, w=1).

The paper's figure plots the collision probability against distance for
``k = 3``, ``w = 1``: a unimodal curve, zero at the origin, peaking around
0.08 near distance 3, decreasing steeply on the left of the peak and slowly
on the right.  We regenerate the curve from the closed form, validate it by
Monte Carlo at selected distances, and check the three shape properties.
"""

import numpy as np

from repro.core.estimate import estimate_collision_probability
from repro.families.euclidean_lsh import (
    ShiftedGaussianProjection,
    shifted_collision_probability,
)
from repro.spaces import euclidean
from repro.utils.asciiplot import ascii_plot

from _harness import fmt_row, report

K, W, D = 3, 1.0, 16
DISTANCES = np.linspace(0.1, 10.0, 34)
MC_DISTANCES = [1.0, 2.0, 3.0, 5.0, 8.0]


def _series():
    return np.asarray(shifted_collision_probability(DISTANCES, K, W))


def bench_figure1_curve(benchmark):
    """Time the closed-form CPF evaluation over the figure's grid and emit
    the series with an MC cross-check."""
    values = benchmark(_series)
    family = ShiftedGaussianProjection(D, w=W, k=K)
    lines = [
        "Figure 1 reproduction: CPF of (h, g) = (floor((<a,x>+b)/w), ... + k)",
        f"k={K}, w={W} (paper's parameters)",
        fmt_row("distance", "analytic f", "MC estimate"),
    ]
    mc = {}
    for delta in MC_DISTANCES:
        est = estimate_collision_probability(
            family,
            lambda n, rng, dd=delta: euclidean.pairs_at_distance(n, D, dd, rng),
            n_functions=150,
            pairs_per_function=100,
            rng=1,
        )
        mc[delta] = est.p_hat
    for delta, value in zip(DISTANCES, values):
        mc_cell = f"{mc[float(round(delta, 6))]:.4f}" if float(round(delta, 6)) in mc else ""
        lines.append(fmt_row(float(delta), float(value), mc_cell))
    peak = int(np.argmax(values))
    peak_delta, peak_value = float(DISTANCES[peak]), float(values[peak])
    lines += [
        "",
        f"peak: f({peak_delta:.2f}) = {peak_value:.4f} "
        "(paper's figure: ~0.08 near distance 3)",
        "unimodal: "
        + str(
            bool(
                np.all(np.diff(values[: peak + 1]) >= -1e-12)
                and np.all(np.diff(values[peak:]) <= 1e-12)
            )
        ),
        "left flank steeper than right: "
        + str(
            bool(
                values[peak] - values[max(0, peak - 5)]
                > values[peak] - values[min(len(values) - 1, peak + 5)]
            )
        ),
        "MC cross-check at selected distances:",
        fmt_row("distance", "analytic", "measured"),
    ]
    for delta in MC_DISTANCES:
        lines.append(
            fmt_row(delta, float(shifted_collision_probability(delta, K, W)), mc[delta])
        )
    lines += [
        "",
        ascii_plot(
            DISTANCES,
            {"f(delta)": values},
            title="Figure 1 (rendered): collision probability vs distance, k=3 w=1",
        ),
    ]
    report("fig1_euclidean_cpf", lines)
    assert 2.0 < peak_delta < 4.0
    assert abs(peak_value - 0.081) < 0.01
