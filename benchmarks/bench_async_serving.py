"""Async micro-batching serving tier benchmark.

Measures what request coalescing buys a single-query serving API under
concurrent load.  Two ``AsyncIndexServer`` configurations serve the same
saved packed index:

* **batch-size 1** — ``max_batch=1``: every request executes as its own
  ``batch_query`` of one row.  This is the per-request dispatch baseline
  (what a naive async wrapper around ``query`` does).
* **coalesced** — ``max_batch=64`` with a short ``max_wait_us`` window:
  concurrent requests are merged into one vectorised ``batch_query``
  and the per-row results fanned back.

Two load shapes:

* **capacity (closed loop)** — a fixed population of concurrent clients
  floods each server; served q/s isolates dispatch overhead vs
  vectorisation.  Asserted ≥ 3× for coalesced over batch-size 1 at full
  size.
* **latency (open-loop Poisson)** — arrivals follow an exponential
  inter-arrival schedule fixed in advance (open loop: a slow server
  does not slow the arrival process down), offered at ~60% of the
  coalesced capacity.  Reports p50/p99 latency and shed counts for both
  servers at the *same* offered rate — the batch-size-1 server is over
  capacity there, which is the point: the latency distribution and
  ``ServerOverloadedError`` shedding show what coalescing absorbs.

Every served response in the capacity phase is checked bit-identical to
a direct ``batch_query`` on the same index before any number is
trusted.  Set ``BENCH_SMOKE=1`` to shrink the instance for CI smoke
runs (assertions are only enforced at full size).
"""

import asyncio
import os
import tempfile

import numpy as np

from repro.api import IndexSpec, save_index
from repro.serving import AsyncIndexServer, ServerOverloadedError
from repro.spaces import hamming

from _harness import clustered_hamming, fmt_row, report

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_POINTS = 4_000 if SMOKE else 50_000
N_CLUSTERS = 40 if SMOKE else 100
D = 64
K = 16
N_TABLES = 8 if SMOKE else 16
SEED = 2018
FLOOD_N = 200 if SMOKE else 1_500
FLOOD_CONCURRENCY = 64 if SMOKE else 128
POISSON_N = 150 if SMOKE else 1_200
POISSON_UTILISATION = 0.6
MAX_BATCH = 64
MAX_WAIT_US = 2_000
MIN_COALESCING_SPEEDUP = 3.0


def _spec():
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": K},
        n_tables=N_TABLES,
        backend="packed",
        seed=SEED + 3,
    )


async def _flood(server, queries, n, concurrency):
    """Closed-loop capacity probe: ``concurrency`` clients, each issuing
    its next request the moment the previous one completes, ``n``
    requests total.  Returns (served q/s, responses in issue order)."""
    loop = asyncio.get_running_loop()
    sem = asyncio.Semaphore(concurrency)

    async def one(i):
        async with sem:
            return await server.query(queries[i % queries.shape[0]])

    start = loop.time()
    responses = await asyncio.gather(*(one(i) for i in range(n)))
    elapsed = loop.time() - start
    return n / elapsed, responses


async def _poisson(server, queries, rate, n, rng):
    """Open-loop Poisson load: the arrival schedule is drawn up front
    and honoured regardless of how the server keeps up.  Returns
    (latencies seconds, shed count, wall seconds)."""
    loop = asyncio.get_running_loop()
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
    start = loop.time()

    async def one(i):
        delay = start + arrivals[i] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        issued = loop.time()
        try:
            await server.query(queries[i % queries.shape[0]])
        except ServerOverloadedError:
            return None
        return loop.time() - issued

    outcomes = await asyncio.gather(*(one(i) for i in range(n)))
    wall = loop.time() - start
    latencies = [t for t in outcomes if t is not None]
    return latencies, sum(t is None for t in outcomes), wall


async def _measure(path, queries, reference, rng):
    out = {}
    servers = {
        "batch1": dict(max_batch=1, max_wait_us=0),
        "coalesced": dict(max_batch=MAX_BATCH, max_wait_us=MAX_WAIT_US),
    }
    # Capacity: closed-loop flood, responses verified exact.
    for name, cfg in servers.items():
        async with AsyncIndexServer(
            path, max_pending=2 * FLOOD_CONCURRENCY, **cfg
        ) as server:
            await _flood(server, queries, FLOOD_CONCURRENCY, 16)  # warm-up
            qps, responses = await _flood(
                server, queries, FLOOD_N, FLOOD_CONCURRENCY
            )
            for i, served in enumerate(responses):
                ref = reference[i % queries.shape[0]]
                assert served.indices == ref.indices, (
                    f"{name} response {i} diverged from direct batch_query"
                )
                assert served.result.stats == ref.stats
            metrics = server.metrics()
            out[f"{name}_qps"] = qps
            out[f"{name}_mean_batch"] = metrics["mean_batch"]
            out[f"{name}_max_batch_size"] = metrics["max_batch_size"]

    # Latency: both servers face the same open-loop Poisson arrivals at
    # ~60% of the *coalesced* capacity.
    rate = POISSON_UTILISATION * out["coalesced_qps"]
    out["offered_rate"] = rate
    for name, cfg in servers.items():
        async with AsyncIndexServer(
            path, max_pending=2 * FLOOD_CONCURRENCY, **cfg
        ) as server:
            await _flood(server, queries, FLOOD_CONCURRENCY, 16)  # warm-up
            latencies, shed, wall = await _poisson(
                server, queries, rate, POISSON_N, rng
            )
            lat = np.asarray(latencies) if latencies else np.asarray([np.nan])
            out[f"{name}_p50_ms"] = float(np.percentile(lat, 50)) * 1e3
            out[f"{name}_p99_ms"] = float(np.percentile(lat, 99)) * 1e3
            out[f"{name}_shed"] = shed
            out[f"{name}_served_rate"] = len(latencies) / wall
    return out


def _run():
    rng = np.random.default_rng(SEED)
    prototypes = hamming.random_points(N_CLUSTERS, D, rng=rng)
    points = clustered_hamming(prototypes, N_POINTS, rng)
    queries = clustered_hamming(prototypes, 256, rng)
    index = _spec().build(points)
    reference = index.batch_query(queries)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "srv")
        save_index(index, path)
        return asyncio.run(_measure(path, queries, reference, rng))


def bench_async_serving(benchmark):
    """Time the async serving sweep; require the coalescing server to
    sustain >= 3x the q/s of the batch-size-1 server at full size."""
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = timings["coalesced_qps"] / timings["batch1_qps"]
    lines = [
        "Async micro-batching serving tier: coalesced vs batch-size-1 "
        f"dispatch (n={N_POINTS} clustered points, L={N_TABLES}, "
        f"c={K} components, {FLOOD_CONCURRENCY} flood clients, "
        f"{POISSON_N} Poisson arrivals{', SMOKE' if SMOKE else ''})",
        "",
        fmt_row("server", "q/s", "mean batch", "p50 ms", "p99 ms",
                "shed", width=13),
        fmt_row(
            "batch-size 1", timings["batch1_qps"],
            timings["batch1_mean_batch"], timings["batch1_p50_ms"],
            timings["batch1_p99_ms"], timings["batch1_shed"], width=13,
        ),
        fmt_row(
            "coalesced", timings["coalesced_qps"],
            timings["coalesced_mean_batch"], timings["coalesced_p50_ms"],
            timings["coalesced_p99_ms"], timings["coalesced_shed"],
            width=13,
        ),
        "",
        f"coalescing throughput speedup: x{speedup:.2f} "
        f"(largest coalesced batch: {timings['coalesced_max_batch_size']})",
        f"open-loop Poisson offered rate: {timings['offered_rate']:.0f} q/s "
        f"(~{POISSON_UTILISATION:.0%} of coalesced capacity)",
    ]
    report(
        "async_serving",
        lines,
        metrics={
            "coalescing_speedup": speedup,
            "queries_per_s": {
                "batch1": timings["batch1_qps"],
                "coalesced": timings["coalesced_qps"],
            },
            "latency_ms": {
                "batch1": {
                    "p50": timings["batch1_p50_ms"],
                    "p99": timings["batch1_p99_ms"],
                },
                "coalesced": {
                    "p50": timings["coalesced_p50_ms"],
                    "p99": timings["coalesced_p99_ms"],
                },
            },
            "shed": {
                "batch1": timings["batch1_shed"],
                "coalesced": timings["coalesced_shed"],
            },
            "mean_batch": {
                "batch1": timings["batch1_mean_batch"],
                "coalesced": timings["coalesced_mean_batch"],
            },
            "offered_rate_qps": timings["offered_rate"],
        },
        config={
            "n_points": N_POINTS,
            "n_tables": N_TABLES,
            "components": K,
            "max_batch": MAX_BATCH,
            "max_wait_us": MAX_WAIT_US,
            "flood_n": FLOOD_N,
            "flood_concurrency": FLOOD_CONCURRENCY,
            "poisson_n": POISSON_N,
            "poisson_utilisation": POISSON_UTILISATION,
            "smoke": SMOKE,
        },
    )
    if not SMOKE:
        assert speedup >= MIN_COALESCING_SPEEDUP, (
            f"coalescing only x{speedup:.2f} over batch-size-1 dispatch "
            f"(required x{MIN_COALESCING_SPEEDUP})"
        )
