"""Tests for repro.spaces.embeddings: Hamming->sphere, Valiant maps, TensorSketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spaces import hamming, sphere
from repro.spaces.embeddings import (
    TensorSketchEmbedding,
    ValiantEmbedding,
    hamming_to_sphere,
    tensor_power,
)


class TestHammingToSphere:
    def test_unit_norm(self):
        x = hamming.random_points(20, 10, rng=0)
        emb = hamming_to_sphere(x)
        np.testing.assert_allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-12)

    def test_inner_product_equals_similarity(self):
        x, y = hamming.pairs_at_distance(30, 12, 4, rng=1)
        ip = np.einsum("ij,ij->i", hamming_to_sphere(x), hamming_to_sphere(y))
        np.testing.assert_allclose(ip, hamming.similarity(x, y), atol=1e-12)


class TestTensorPower:
    def test_order_zero_is_ones(self):
        out = tensor_power(np.ones((3, 4)), 0)
        np.testing.assert_array_equal(out, np.ones((3, 1)))

    def test_order_one_is_identity(self):
        x = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(tensor_power(x, 1), x)

    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25)
    def test_inner_product_power_identity(self, order, seed):
        x, y = sphere.pairs_at_inner_product(4, 3, 0.37, rng=seed)
        tx, ty = tensor_power(x, order), tensor_power(y, order)
        ip = np.einsum("ij,ij->i", tx, ty)
        np.testing.assert_allclose(ip, 0.37**order, atol=1e-9)

    def test_negative_order_raises(self):
        with pytest.raises(ValueError):
            tensor_power(np.ones((1, 2)), -1)

    def test_dimension_guard(self):
        with pytest.raises(ValueError, match="TensorSketch"):
            tensor_power(np.ones((1, 100)), 5)


# Figure 4 polynomials from the paper (already normalized: sum |a_i| <= 1).
FIG4_POLYNOMIALS = [
    [0.0, 0.0, 1.0],                       # t^2
    [0.0, 0.0, -1.0],                      # -t^2
    [0.0, -1 / 3, 1 / 3, -1 / 3],          # (-t^3 + t^2 - t)/3
    [-1 / 3, 0.0, 2 / 3],                  # (2t^2 - 1)/3
    [0.0, -3 / 7, 0.0, 4 / 7],             # (4t^3 - 3t)/7
    [1 / 17, 0.0, -8 / 17, 0.0, 8 / 17],   # (8t^4 - 8t^2 + 1)/17
    [0.0, 5 / 41, 0.0, -20 / 41, 0.0, 16 / 41],  # (16t^5 - 20t^3 + 5t)/41
]


class TestValiantEmbedding:
    @pytest.mark.parametrize("coeffs", FIG4_POLYNOMIALS)
    def test_polynomial_identity(self, coeffs):
        emb = ValiantEmbedding(coeffs, d=4)
        alpha = 0.6
        x, y = sphere.pairs_at_inner_product(8, 4, alpha, rng=3)
        ips = np.einsum("ij,ij->i", emb.embed_data(x), emb.embed_query(y))
        expected = np.polyval(list(reversed(coeffs)), alpha)
        np.testing.assert_allclose(ips, expected, atol=1e-9)

    @pytest.mark.parametrize("coeffs", FIG4_POLYNOMIALS)
    def test_unit_norms_both_sides(self, coeffs):
        emb = ValiantEmbedding(coeffs, d=5)
        x = sphere.random_points(6, 5, rng=4)
        np.testing.assert_allclose(
            np.linalg.norm(emb.embed_data(x), axis=1), 1.0, atol=1e-9
        )
        np.testing.assert_allclose(
            np.linalg.norm(emb.embed_query(x), axis=1), 1.0, atol=1e-9
        )

    def test_coefficient_sum_above_one_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            ValiantEmbedding([0.8, 0.8], d=3)

    def test_output_dim(self):
        emb = ValiantEmbedding([0.5, 0.25, 0.25], d=3)
        assert emb.output_dim == 2 + 1 + 3 + 9

    def test_wrong_input_dim_raises(self):
        emb = ValiantEmbedding([1.0], d=3)
        with pytest.raises(ValueError, match="dimension"):
            emb.embed_data(np.ones((2, 4)))


class TestTensorSketchEmbedding:
    def test_inner_product_approximates_polynomial(self):
        coeffs = [0.0, 0.25, -0.25, 0.5]
        exact = ValiantEmbedding(coeffs, d=6)
        sketch = TensorSketchEmbedding(coeffs, d=6, sketch_dim=4096, rng=5)
        alpha = -0.4
        x, y = sphere.pairs_at_inner_product(64, 6, alpha, rng=6)
        approx_ip = np.einsum(
            "ij,ij->i", sketch.embed_data(x), sketch.embed_query(y)
        )
        exact_ip = np.einsum("ij,ij->i", exact.embed_data(x), exact.embed_query(y))
        # Unbiased with variance O(1/m): the mean over 64 pairs is close.
        assert np.mean(approx_ip) == pytest.approx(np.mean(exact_ip), abs=0.05)

    def test_degree_one_is_exact_countsketch(self):
        coeffs = [0.0, 1.0]
        sketch = TensorSketchEmbedding(coeffs, d=8, sketch_dim=64, rng=7)
        x, y = sphere.pairs_at_inner_product(16, 8, 0.3, rng=8)
        # Degree-1 sketches use one CountSketch for both maps: the sketch
        # preserves inner products in expectation, not exactly.
        ip = np.einsum("ij,ij->i", sketch.embed_data(x), sketch.embed_query(y))
        assert np.mean(ip) == pytest.approx(0.3, abs=0.15)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TensorSketchEmbedding([1.0], d=0)
        with pytest.raises(ValueError):
            TensorSketchEmbedding([1.0], d=2, sketch_dim=0)
        with pytest.raises(ValueError):
            TensorSketchEmbedding([0.9, 0.9], d=2)
