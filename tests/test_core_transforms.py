"""Tests for the probability-generating CPF transformations ([18] remark)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimate import estimate_collision_probability
from repro.core.transforms import transform_family, transformed_cpf
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.spaces import hamming

D = 32


def _sampler(r):
    def sampler(n, rng):
        return hamming.pairs_at_distance(n, D, r, rng)

    return sampler


class TestTransformedCpf:
    def test_polynomial_of_base(self):
        base = BitSampling(D).cpf
        # P(f) = 0.25 + 0.5 f^2.
        cpf = transformed_cpf(base, [0.25, 0.0, 0.5])
        t = 0.25
        assert cpf(t) == pytest.approx(0.25 + 0.5 * (1 - t) ** 2)

    def test_arg_kind_preserved(self):
        cpf = transformed_cpf(AntiBitSampling(D).cpf, [0.0, 1.0])
        assert cpf.arg_kind == "relative_distance"

    @given(
        # transformed_cpf requires sum(coeffs) <= 1 (see test_validation),
        # so cap each of the <= 4 coefficients at 0.25.
        st.lists(st.floats(min_value=0.0, max_value=0.25), min_size=1, max_size=4),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40)
    def test_always_a_valid_cpf(self, coeffs, t):
        cpf = transformed_cpf(BitSampling(D).cpf, coeffs)
        assert 0.0 <= cpf(t) <= 1.0

    def test_validation(self):
        base = BitSampling(D).cpf
        with pytest.raises(ValueError):
            transformed_cpf(base, [])
        with pytest.raises(ValueError):
            transformed_cpf(base, [-0.1, 0.5])
        with pytest.raises(ValueError):
            transformed_cpf(base, [0.8, 0.8])


class TestTransformFamily:
    def test_measured_matches_transformed_cpf(self):
        coeffs = [0.2, 0.3, 0.4]
        family = transform_family(AntiBitSampling(D), coeffs)
        cpf = transformed_cpf(AntiBitSampling(D).cpf, coeffs)
        for r in [8, 16, 24]:
            est = estimate_collision_probability(
                family, _sampler(r), n_functions=1000, pairs_per_function=50, rng=r
            )
            assert est.contains(float(cpf(r / D))), f"r={r}"

    def test_constant_term_only(self):
        family = transform_family(BitSampling(D), [0.5])
        est = estimate_collision_probability(
            family, _sampler(16), n_functions=800, pairs_per_function=20, rng=0
        )
        assert est.contains(0.5)

    def test_zero_polynomial(self):
        family = transform_family(BitSampling(D), [0.0])
        pair = family.sample(rng=1)
        x = hamming.random_points(10, D, rng=2)
        assert not np.any(pair.collides(x, x))

    def test_slack_reduces_collisions(self):
        full = transform_family(BitSampling(D), [0.0, 1.0])
        half = transform_family(BitSampling(D), [0.0, 0.5])
        est_full = estimate_collision_probability(
            full, _sampler(8), n_functions=600, pairs_per_function=40, rng=3
        )
        est_half = estimate_collision_probability(
            half, _sampler(8), n_functions=600, pairs_per_function=40, rng=4
        )
        assert est_half.p_hat < est_full.p_hat
        assert est_half.contains(0.5 * (1 - 8 / D))
