"""Tests for repro.core.cpf."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpf import (
    AntiBitSamplingCPF,
    BitSamplingCPF,
    ConstantCPF,
    EmpiricalCPF,
    LambdaCPF,
    MixtureCPF,
    PolynomialCPF,
    PowerCPF,
    ProductCPF,
    SimHashCPF,
)


class TestBasics:
    def test_invalid_arg_kind(self):
        with pytest.raises(ValueError, match="arg_kind"):
            ConstantCPF(0.5, arg_kind="nonsense")

    def test_out_of_range_output_raises(self):
        bad = LambdaCPF(lambda t: t * 2.0, "relative_distance")
        with pytest.raises(ValueError, match="outside"):
            bad(np.array([0.9]))

    def test_tiny_overshoot_clipped(self):
        almost = LambdaCPF(lambda t: 1.0 + 1e-12 + 0 * t, "relative_distance")
        assert almost(0.3) == 1.0


class TestAtomicCpfs:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bit_sampling(self, t):
        assert BitSamplingCPF()(t) == pytest.approx(1 - t)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_anti_bit_sampling(self, t):
        assert AntiBitSamplingCPF()(t) == pytest.approx(t)

    def test_simhash_known_values(self):
        cpf = SimHashCPF()
        assert cpf(1.0) == pytest.approx(1.0)
        assert cpf(-1.0) == pytest.approx(0.0)
        assert cpf(0.0) == pytest.approx(0.5)

    def test_constant(self):
        cpf = ConstantCPF(0.37)
        np.testing.assert_allclose(cpf(np.linspace(0, 1, 5)), 0.37)

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            ConstantCPF(1.5)


class TestPolynomialCpf:
    def test_evaluates_polynomial(self):
        # P(t) = 1 - t^2, scaled by 2.
        cpf = PolynomialCPF([1.0, 0.0, -1.0], "relative_distance", scale=2.0)
        assert cpf(0.0) == pytest.approx(0.5)
        assert cpf(1.0) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PolynomialCPF([], "relative_distance")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            PolynomialCPF([0.5], "relative_distance", scale=0.0)


class TestCombinatorCpfs:
    def test_product(self):
        f = ProductCPF([BitSamplingCPF(), AntiBitSamplingCPF()])
        t = np.array([0.3])
        assert f(t)[0] == pytest.approx(0.3 * 0.7)

    def test_product_mixed_kinds_rejected(self):
        with pytest.raises(ValueError, match="mixed"):
            ProductCPF([BitSamplingCPF(), SimHashCPF()])

    def test_mixture(self):
        f = MixtureCPF([BitSamplingCPF(), AntiBitSamplingCPF()], [0.25, 0.75])
        assert f(0.4) == pytest.approx(0.25 * 0.6 + 0.75 * 0.4)

    def test_mixture_bad_weights(self):
        with pytest.raises(ValueError):
            MixtureCPF([BitSamplingCPF()], [0.9])

    @given(st.integers(min_value=1, max_value=6), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30)
    def test_power(self, k, t):
        f = PowerCPF(BitSamplingCPF(), k)
        assert f(t) == pytest.approx((1 - t) ** k)

    def test_power_invalid_k(self):
        with pytest.raises(ValueError):
            PowerCPF(BitSamplingCPF(), 0)


class TestEmpiricalCpf:
    def test_interpolates(self):
        f = EmpiricalCPF([0.0, 1.0], [0.0, 1.0], "relative_distance")
        assert f(0.5) == pytest.approx(0.5)

    def test_requires_increasing_xs(self):
        with pytest.raises(ValueError):
            EmpiricalCPF([1.0, 0.0], [0.0, 1.0], "relative_distance")

    def test_rejects_invalid_probabilities(self):
        with pytest.raises(ValueError):
            EmpiricalCPF([0.0, 1.0], [0.0, 1.5], "relative_distance")


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=50)
def test_property_product_in_unit_interval(ps, t):
    """Products of CPFs stay valid CPFs (Lemma 1.4(a) sanity)."""
    f = ProductCPF([ConstantCPF(p) for p in ps])
    assert 0.0 <= f(t) <= 1.0
