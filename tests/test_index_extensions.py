"""Tests for index extensions: batch queries and multi-result annulus."""

import numpy as np
import pytest

from repro.data.synthetic import clustered_unit_vectors, planted_sphere_annulus
from repro.families.bit_sampling import BitSampling
from repro.index.annulus import sphere_annulus_index
from repro.index.lsh_index import DSHIndex
from repro.spaces import hamming


class TestBatchQuery:
    def test_matches_single_queries(self):
        d = 16
        pts = hamming.random_points(300, d, rng=0)
        index = DSHIndex(BitSampling(d), n_tables=6, rng=1).build(pts)
        queries = hamming.random_points(10, d, rng=2)
        batched = index.batch_query(queries)
        for i in range(10):
            single, single_stats = index.query(queries[i])
            b_cands, b_stats = batched[i]
            assert single == b_cands
            assert single_stats.retrieved == b_stats.retrieved
            assert single_stats.unique_candidates == b_stats.unique_candidates

    def test_truncation_matches(self):
        d = 8
        pts = np.zeros((40, d), dtype=np.int8)
        index = DSHIndex(BitSampling(d), n_tables=8, rng=3).build(pts)
        queries = np.zeros((3, d), dtype=np.int8)
        for cands, stats in index.batch_query(queries, max_retrieved=50):
            assert stats.truncated
            assert stats.retrieved >= 50

    def test_unbuilt_raises(self):
        index = DSHIndex(BitSampling(8), n_tables=2, rng=4)
        with pytest.raises(RuntimeError):
            index.batch_query(np.zeros((1, 8), dtype=np.int8))


class TestQueryMany:
    def test_returns_distinct_in_interval_points(self):
        pts, labels, centers = clustered_unit_vectors(6, 150, 32, rng=5)
        query = pts[0]
        index = sphere_annulus_index(
            pts, alpha_interval=(0.3, 0.8), t=1.6, n_tables=120, rng=6
        )
        hits = index.query_many(query, k=5)
        assert 1 <= len(hits) <= 5
        indices = [h.index for h in hits]
        assert len(set(indices)) == len(indices)
        for h in hits:
            assert 0.3 <= h.proximity <= 0.8

    def test_k_one_matches_query_semantics(self):
        inst = planted_sphere_annulus(300, 24, (0.4, 0.5), rng=7)
        index = sphere_annulus_index(
            inst.points, (0.3, 0.6), t=1.6, n_tables=100, rng=8
        )
        hits = index.query_many(inst.query, k=1)
        single = index.query(inst.query)
        if single.found:
            assert len(hits) == 1
            assert hits[0].index == single.index

    def test_invalid_k(self):
        inst = planted_sphere_annulus(50, 24, (0.4, 0.5), rng=9)
        index = sphere_annulus_index(
            inst.points, (0.3, 0.6), t=1.5, n_tables=10, rng=10
        )
        with pytest.raises(ValueError):
            index.query_many(inst.query, k=0)

    def test_budget_respected(self):
        inst = planted_sphere_annulus(500, 24, (0.4, 0.5), rng=11)
        index = sphere_annulus_index(
            inst.points, (0.3, 0.6), t=1.5, n_tables=20, rng=12, budget_factor=1.0
        )
        hits = index.query_many(inst.query, k=50)
        # With a tight budget, the number of candidates any hit saw is
        # bounded by the budget.
        for h in hits:
            assert h.candidates_examined <= 20 + 1
