"""Tests for the leakage-profile diagnostics (Section 6.4's privacy claim)."""

import numpy as np
import pytest

from repro.core.combinators import ConcatenatedFamily, PoweredFamily
from repro.families.bit_sampling import BitSampling, ConstantCollisionFamily
from repro.privacy.distance import (
    PrivateDistanceEstimator,
    ProtocolDesign,
    design_protocol,
    leakage_profile,
)

D = 64
R, C = 0.1, 3.0


@pytest.fixture(scope="module")
def estimator():
    design = design_protocol(d=D, r=R, c=C, epsilon=0.15, delta=0.15)
    return PrivateDistanceEstimator(design, rng=7)


class TestLeakageProfile:
    def test_flat_over_near_region(self, estimator):
        """Intersection size varies only within the documented Theta factor
        across [0, r] — the triangulation observable is uninformative."""
        r_bits = int(R * D)
        profile = leakage_profile(
            estimator, [0, r_bits // 2, r_bits], trials=25, rng=0
        )
        sizes = [s for _, s in profile]
        assert max(sizes) <= estimator.design.flat_ratio * max(min(sizes), 1e-9) * 1.5

    def test_never_reveals_full_sketch(self, estimator):
        profile = leakage_profile(estimator, [0], trials=15, rng=1)
        assert profile[0][1] < estimator.design.n_hashes / 2

    def test_classical_lsh_leaks_everything_at_zero(self):
        """Contrast case: the same protocol with a plain monotone LSH
        (f(0) = p0 with J = 0 powering ... i.e. f(0) ~ 1) intersects on
        ~every key for identical records — the [45] weakness."""
        plain_family = ConcatenatedFamily(
            [ConstantCollisionFamily(1.0), PoweredFamily(BitSampling(D), 2)]
        )
        design = ProtocolDesign(
            family=plain_family,
            n_hashes=40,
            p_near=0.8,
            p_far=0.3,
            flat_level=1.0,
            flat_ratio=1.0,
            epsilon=0.1,
            delta=0.1,
            rho=0.5,
            expected_leak_items=40.0,
            r=R,
            c=C,
            d=D,
            j=2,
        )
        classical = PrivateDistanceEstimator(design, rng=8)
        profile = leakage_profile(classical, [0], trials=10, rng=2)
        assert profile[0][1] == pytest.approx(40.0)  # every key matches

    def test_profile_informative_only_across_the_step(self, estimator):
        """The observable distinguishes near from far (that single bit is
        the protocol's *intended* output), dropping past c r."""
        far_bits = int(2 * C * R * D)
        profile = leakage_profile(estimator, [0, far_bits], trials=25, rng=3)
        near_size, far_size = profile[0][1], profile[1][1]
        assert far_size < near_size / 3

    def test_distance_validation(self, estimator):
        with pytest.raises(ValueError):
            leakage_profile(estimator, [D + 1], trials=2, rng=4)
