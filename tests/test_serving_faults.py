"""Chaos suite for fault-tolerant sharded serving.

Every failure the serving path claims to survive is injected here via
:mod:`repro.serving.faults` and proven against the differential oracle:
after any recovery, results must be *bit-identical* to the unsharded
reference; after degradation, exactly equal to the surviving shards'
own reference; and no injected failure may leak a shared-memory
segment (asserted by ``/dev/shm`` accounting around every pool test).
"""

import os
import pathlib
import shutil
import time

import numpy as np
import pytest

from repro.api import IndexSpec, load_index
from repro.index.persistence import IndexIntegrityError
from repro.serving import (
    FaultInjected,
    PoolRecoveryError,
    ServingOptions,
    ShardedIndex,
)
from repro.serving import faults
from repro.spaces import hamming

D = 24
N_TABLES = 8
N_POINTS = 257
DEV_SHM = pathlib.Path("/dev/shm")


def _spec(shards=1):
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": 4},
        n_tables=N_TABLES,
        backend="packed",
        seed=11,
        shards=shards,
    )


def _clustered_points(n, rng):
    prototypes = hamming.random_points(10, D, rng=rng)
    rows = prototypes[rng.integers(0, prototypes.shape[0], size=n)]
    return rows ^ (rng.random(size=rows.shape) < 0.02).astype(np.int8)


def _assert_results_equal(reference, observed):
    assert len(reference) == len(observed)
    for a, b in zip(reference, observed):
        assert a.indices == b.indices
        assert a.stats == b.stats


def _assert_degraded_equal(reference, observed):
    """Candidates and retrieval stats match the surviving-shard
    reference; only the ``degraded`` flag differs (and must be set)."""
    assert len(reference) == len(observed)
    for a, b in zip(reference, observed):
        assert a.indices == b.indices
        assert b.stats.degraded is True
        assert a.stats.retrieved == b.stats.retrieved
        assert a.stats.unique_candidates == b.stats.unique_candidates
        assert a.stats.tables_probed == b.stats.tables_probed
        assert a.stats.truncated == b.stats.truncated


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(77)
    points = _clustered_points(N_POINTS, rng)
    queries = np.concatenate([points[:8], _clustered_points(40, rng)])
    return points, queries


@pytest.fixture(scope="module")
def flat(data):
    points, _ = data
    return _spec().build(points)


@pytest.fixture(scope="module")
def saved(data, tmp_path_factory):
    """A pristine 2-shard save; tests that damage files work on copies."""
    points, _ = data
    root = tmp_path_factory.mktemp("pristine")
    ShardedIndex(points, _spec(shards=2)).save(root / "srv")
    return root


@pytest.fixture
def served_dir(saved, tmp_path):
    """Fresh mutable copy of the pristine save for this test."""
    for name in os.listdir(saved):
        shutil.copy2(saved / name, tmp_path / name)
    return tmp_path


@pytest.fixture
def fault_dir(tmp_path, monkeypatch):
    """Arm-able token directory, exported to (future) pool workers via
    the environment; always disarmed afterwards so stray tokens cannot
    fire in later tests."""
    directory = tmp_path / "fault-tokens"
    monkeypatch.setenv(faults.ENV_FAULT_DIR, str(directory))
    yield directory
    faults.disarm_all(directory)


@pytest.fixture
def shm_guard():
    """Assert zero leaked shared-memory segments: any ``psm_*`` entry
    created during the test must be gone shortly after it finishes."""
    if not DEV_SHM.is_dir():
        pytest.skip("/dev/shm not available for segment accounting")
    before = {p.name for p in DEV_SHM.glob("psm_*")}
    yield
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = {p.name for p in DEV_SHM.glob("psm_*")} - before
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked shared-memory segments: {sorted(leaked)}")


# ---------------------------------------------------------------------------
# faults module mechanics
# ---------------------------------------------------------------------------


class TestFaultHooks:
    def test_fault_point_is_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_FAULT_DIR, raising=False)
        faults.fault_point("pool_worker")  # must not raise

    def test_arm_claim_and_disarm(self, fault_dir):
        tokens = faults.arm(fault_dir, "pool_worker", "raise", count=2)
        assert len(tokens) == 2
        assert len(faults.armed(fault_dir)) == 2
        with pytest.raises(FaultInjected):
            faults.fault_point("pool_worker")
        assert len(faults.armed(fault_dir)) == 1  # one-shot: one consumed
        assert faults.disarm_all(fault_dir) == 1
        faults.fault_point("pool_worker")  # disarmed: no-op

    def test_tokens_are_point_scoped(self, fault_dir):
        faults.arm(fault_dir, "shm_attach", "raise")
        faults.fault_point("pool_worker")  # different point: not claimed
        assert len(faults.armed(fault_dir)) == 1

    def test_sleep_action_delays(self, fault_dir):
        faults.arm(fault_dir, "pool_worker", "sleep:0.2")
        start = time.monotonic()
        faults.fault_point("pool_worker")
        assert time.monotonic() - start >= 0.2

    def test_unknown_action_and_bad_point_name(self, fault_dir):
        faults.arm(fault_dir, "pool_worker", "explode")
        with pytest.raises(ValueError, match="unknown fault action"):
            faults.fault_point("pool_worker")
        with pytest.raises(ValueError, match="must not contain"):
            faults.arm(fault_dir, "bad@point")

    def test_corrupt_bundle_flips_one_byte_in_place(self, served_dir):
        npz = served_dir / "srv.shard0.npz"
        original = npz.read_bytes()
        offset = faults.corrupt_bundle(served_dir / "srv.shard0")
        mutated = npz.read_bytes()
        assert len(mutated) == len(original)
        assert mutated[offset] == original[offset] ^ 0xFF
        assert sum(a != b for a, b in zip(original, mutated)) == 1
        with pytest.raises(ValueError, match="no member"):
            faults.corrupt_bundle(served_dir / "srv.shard1", member="nope")

    def test_truncate_bundle(self, served_dir):
        npz = served_dir / "srv.shard0.npz"
        before = npz.stat().st_size
        kept = faults.truncate_bundle(served_dir / "srv.shard0", 0.5)
        assert npz.stat().st_size == kept < before
        with pytest.raises(ValueError, match="keep_fraction"):
            faults.truncate_bundle(served_dir / "srv.shard0", 1.5)


# ---------------------------------------------------------------------------
# pool crash recovery
# ---------------------------------------------------------------------------


class TestPoolRecovery:
    @pytest.mark.parametrize(
        "shm", [False, True], ids=["pipe-transport", "shm-transport"]
    )
    def test_killed_worker_recovered_bit_identical(
        self, data, flat, served_dir, fault_dir, shm_guard, shm
    ):
        _, queries = data
        reference = flat.batch_query(queries, max_retrieved=23)
        with load_index(served_dir / "srv", options=ServingOptions(workers=2)) as served:
            served._shm_min_bytes = 0 if shm else None
            faults.arm(fault_dir, "pool_worker", "kill")
            observed = served.batch_query(queries, max_retrieved=23)
            _assert_results_equal(reference, observed)
            assert served.last_health["respawns"] >= 1
            assert served.last_health["retries"] >= 1
            assert served.last_health["failed_shards"] == []
            # The recovered pool keeps serving without further incident.
            _assert_results_equal(
                reference, served.batch_query(queries, max_retrieved=23)
            )
            assert served.last_health["respawns"] == 0

    def test_kill_mid_ship_sweeps_journaled_segment(
        self, data, flat, served_dir, fault_dir, shm_guard
    ):
        """A worker dying *after* creating its shared-memory segment is
        the leak window: the crash journal must reclaim it."""
        _, queries = data
        reference = flat.batch_query(queries)
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            served._shm_min_bytes = 0
            faults.arm(fault_dir, "shm_ship", "kill")
            observed = served.batch_query(queries)
            _assert_results_equal(reference, observed)
            assert served.last_health["respawns"] >= 1
            assert served.last_health["swept_segments"] >= 1

    def test_vanished_segment_retried_transparently(
        self, data, flat, served_dir, fault_dir, shm_guard
    ):
        """A shm attach failing in the parent is transient: the task is
        re-run, not the request failed."""
        _, queries = data
        reference = flat.batch_query(queries)
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            served._shm_min_bytes = 0
            faults.arm(fault_dir, "shm_attach", "raise")
            observed = served.batch_query(queries)
            _assert_results_equal(reference, observed)
            assert served.last_health["retries"] >= 1
            assert served.last_health["respawns"] == 0

    def test_retries_exhausted_raises_then_pool_recovers(
        self, data, flat, served_dir, fault_dir, shm_guard
    ):
        _, queries = data
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            served.max_retries = 1
            served.retry_backoff_s = 0.01
            faults.arm(fault_dir, "pool_worker", "kill", count=10)
            with pytest.raises(PoolRecoveryError, match="retries exhausted"):
                served.batch_query(queries)
            assert served.last_health["failed_shards"]
            faults.disarm_all(fault_dir)
            # The same handle serves again once the faults stop.
            _assert_results_equal(
                flat.batch_query(queries), served.batch_query(queries)
            )

    def test_timeout_deadline_raises_builtin_timeout(
        self, data, flat, served_dir, fault_dir, shm_guard
    ):
        _, queries = data
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            faults.arm(fault_dir, "pool_worker", "sleep:2.0")
            start = time.monotonic()
            with pytest.raises(TimeoutError) as excinfo:
                served.batch_query(queries, timeout=0.3)
            assert type(excinfo.value) is TimeoutError  # builtin, all Pythons
            assert time.monotonic() - start < 1.5
            # The straggler drains and the pool serves the next request.
            _assert_results_equal(
                flat.batch_query(queries), served.batch_query(queries)
            )

    def test_rejects_nonpositive_timeout(self, data, served_dir):
        _, queries = data
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            with pytest.raises(ValueError, match="timeout must be positive"):
                served.batch_query(queries, timeout=0.0)


# ---------------------------------------------------------------------------
# graceful degradation
# ---------------------------------------------------------------------------


class TestGracefulDegradation:
    def test_degrade_serves_surviving_shards_exactly(
        self, data, served_dir, fault_dir, shm_guard
    ):
        points, queries = data
        with load_index(served_dir / "srv", options=ServingOptions(workers=2, on_shard_failure="degrade")) as served:
            split = int(served.bounds[1])
            served.batch_query(queries)  # healthy warm-up
            assert served.last_health["degraded"] is False
            faults.delete_bundle(served_dir / "srv.shard1")
            observed = served.batch_query(queries)
            # The exact oracle: an unsharded index over shard 0's points.
            survivor = _spec().build(points[:split])
            _assert_degraded_equal(survivor.batch_query(queries), observed)
            report = served.last_health
            assert report["degraded"] is True
            assert [f["shard"] for f in report["failed_shards"]] == [1]
            assert "FileNotFoundError" in report["failed_shards"][0]["error"]

    def test_raise_mode_propagates_shard_failure(
        self, data, served_dir, fault_dir, shm_guard
    ):
        _, queries = data
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            served.batch_query(queries)
            faults.delete_bundle(served_dir / "srv.shard1")
            with pytest.raises(PoolRecoveryError, match="srv.shard1"):
                served.batch_query(queries)

    def test_all_shards_failed_raises_even_in_degrade_mode(
        self, data, served_dir, fault_dir, shm_guard
    ):
        _, queries = data
        with load_index(served_dir / "srv", options=ServingOptions(workers=1, on_shard_failure="degrade")) as served:
            served.batch_query(queries)
            faults.delete_bundle(served_dir / "srv.shard0")
            faults.delete_bundle(served_dir / "srv.shard1")
            with pytest.raises(PoolRecoveryError, match="every shard"):
                served.batch_query(queries)

    def test_load_validates_mode_values(self, served_dir):
        with pytest.raises(ValueError, match="on_shard_failure"):
            load_index(served_dir / "srv", options=ServingOptions(workers=1, on_shard_failure="nope"))
        with pytest.raises(ValueError, match="verify mode"):
            load_index(served_dir / "srv", options=ServingOptions(workers=1, verify="paranoid"))


# ---------------------------------------------------------------------------
# integrity-checked loads under fault injection
# ---------------------------------------------------------------------------


class TestIntegrityUnderFaults:
    def test_eager_load_rejects_corrupted_shard(self, served_dir):
        faults.corrupt_bundle(served_dir / "srv.shard0")
        with pytest.raises(IndexIntegrityError) as excinfo:
            load_index(served_dir / "srv", options=ServingOptions(workers=1, verify="eager"))
        assert excinfo.value.kind == "checksum"

    def test_lazy_load_rejects_truncated_shard(self, served_dir):
        faults.truncate_bundle(served_dir / "srv.shard1", 0.5)
        with pytest.raises(IndexIntegrityError) as excinfo:
            load_index(served_dir / "srv", options=ServingOptions(workers=1, verify="lazy"))
        assert excinfo.value.kind == "truncated"

    def test_hot_swapped_corruption_caught_by_worker(
        self, data, served_dir, fault_dir, shm_guard
    ):
        """Corruption arriving *after* load (in-place rewrite) is caught
        by the worker-side re-verify on reload, not served silently."""
        points, queries = data
        with load_index(served_dir / "srv", options=ServingOptions(workers=1, verify="eager", on_shard_failure="degrade")) as served:
            split = int(served.bounds[1])
            served.batch_query(queries)  # healthy, caches the clean shard
            faults.corrupt_bundle(served_dir / "srv.shard1")
            observed = served.batch_query(queries)
            survivor = _spec().build(points[:split])
            _assert_degraded_equal(survivor.batch_query(queries), observed)
            error = served.last_health["failed_shards"][0]["error"]
            assert "IndexIntegrityError" in error


# ---------------------------------------------------------------------------
# health probe
# ---------------------------------------------------------------------------


class TestHealthProbe:
    def test_healthy_pool_report(self, served_dir, shm_guard):
        with load_index(served_dir / "srv", options=ServingOptions(workers=2)) as served:
            report = served.health()
            assert report["ok"] is True
            assert report["mode"] == "pool"
            assert all(s["ok"] for s in report["shards"])
            assert all("signature" in s for s in report["shards"])
            assert report["workers"]["ok"] is True
            assert 1 <= len(report["workers"]["alive_pids"]) <= 2
            assert os.getpid() not in report["workers"]["alive_pids"]

    def test_health_flags_damaged_shard(self, served_dir, shm_guard):
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            faults.delete_bundle(served_dir / "srv.shard0")
            report = served.health()
            assert report["ok"] is False
            assert report["shards"][0]["ok"] is False
            assert "FileNotFoundError" in report["shards"][0]["error"]
            assert report["shards"][1]["ok"] is True

    def test_health_eager_override_catches_bit_flip(
        self, served_dir, shm_guard
    ):
        with load_index(served_dir / "srv", options=ServingOptions(workers=1)) as served:
            faults.corrupt_bundle(served_dir / "srv.shard1")
            assert served.health()["ok"] is True  # lazy: size unchanged
            report = served.health(verify="eager")
            assert report["ok"] is False
            assert "IndexIntegrityError" in report["shards"][1]["error"]

    def test_health_modes(self, data, served_dir):
        points, _ = data
        in_memory = ShardedIndex(points, _spec(shards=2))
        assert in_memory.health()["mode"] == "in-process"
        assert in_memory.health()["ok"] is True
        served = load_index(served_dir / "srv", options=ServingOptions(workers=1))
        served.close()
        assert served.health()["mode"] == "closed"
        assert served.health()["ok"] is False
