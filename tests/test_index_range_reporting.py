"""Tests for output-sensitive range reporting (Theorem 6.5)."""

import numpy as np
import pytest

from repro.core.combinators import PoweredFamily
from repro.data.synthetic import planted_euclidean_range
from repro.families.euclidean_lsh import ShiftedGaussianProjection
from repro.families.step import design_step_family
from repro.index.range_reporting import RangeReportingIndex


def _euclid(q, pts):
    return np.linalg.norm(pts - q, axis=1)


D = 8
RADIUS = 4.0


class TestRangeReporting:
    def _step_index(self, inst, n_tables, rng):
        design = design_step_family(D, r_flat=RADIUS, level=0.12, n_components=4)
        return RangeReportingIndex(
            inst.points, design.family, RADIUS, _euclid, n_tables, rng=rng
        )

    def test_high_recall_on_planted_instance(self):
        inst = planted_euclidean_range(300, D, RADIUS, n_near=12, rng=0)
        index = self._step_index(inst, n_tables=60, rng=1)
        recall = index.recall(inst.query, set(inst.near_indices))
        assert recall >= 0.8

    def test_reported_points_within_radius(self):
        inst = planted_euclidean_range(300, D, RADIUS, n_near=10, rng=2)
        index = self._step_index(inst, n_tables=40, rng=3)
        report = index.query(inst.query)
        for idx in report.indices:
            assert np.linalg.norm(inst.points[idx] - inst.query) <= RADIUS + 1e-9

    def test_step_cpf_beats_classical_lsh_on_duplicates(self):
        """Theorem 6.5's point: near-flat CPFs re-retrieve each in-range
        point O(f_max/f_min) = O(1) times per unit of recall, while a
        monotone LSH re-retrieves its closest points in almost every
        table."""
        inst = planted_euclidean_range(400, D, RADIUS, n_near=25, rng=4)
        step_index = self._step_index(inst, n_tables=50, rng=5)
        # Classical: symmetric k=0 family powered to a similar far-distance
        # collision rate; close points then collide in almost every table.
        classical = PoweredFamily(ShiftedGaussianProjection(D, w=4.0, k=0), 2)
        classical_index = RangeReportingIndex(
            inst.points, classical, RADIUS, _euclid, 50, rng=6
        )
        step_report = step_index.query(inst.query)
        classical_report = classical_index.query(inst.query)
        assert len(step_report.indices) > 0
        assert len(classical_report.indices) > 0
        assert (
            step_report.retrievals_per_report
            < classical_report.retrievals_per_report
        )

    def test_empty_candidates_report(self):
        inst = planted_euclidean_range(50, D, RADIUS, n_near=0, rng=7)
        # A family whose buckets will not contain the query's bucket often:
        design = design_step_family(D, r_flat=RADIUS, level=0.12, n_components=4)
        index = RangeReportingIndex(
            inst.points, design.family, RADIUS, _euclid, 10, rng=8
        )
        report = index.query(inst.query)
        assert report.indices == () or all(
            np.linalg.norm(inst.points[i] - inst.query) <= RADIUS
            for i in report.indices
        )

    def test_recall_with_empty_truth_is_one(self):
        inst = planted_euclidean_range(50, D, RADIUS, n_near=0, rng=9)
        index = self._step_index(inst, n_tables=10, rng=10)
        assert index.recall(inst.query, set()) == 1.0

    def test_radius_validation(self):
        inst = planted_euclidean_range(20, D, RADIUS, n_near=2, rng=11)
        design = design_step_family(D, r_flat=RADIUS, level=0.12, n_components=4)
        with pytest.raises(ValueError):
            RangeReportingIndex(inst.points, design.family, -1.0, _euclid, 5)
