"""Tests for synthetic workload generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    clustered_unit_vectors,
    planted_euclidean_range,
    planted_sphere_annulus,
)


class TestPlantedSphereAnnulus:
    def test_planted_point_inside_interval(self):
        inst = planted_sphere_annulus(200, 16, (0.3, 0.5), rng=0)
        alpha = float(inst.points[inst.planted_index] @ inst.query)
        assert 0.3 <= alpha <= 0.5
        assert alpha == pytest.approx(inst.planted_alpha, abs=1e-9)

    def test_all_points_unit_norm(self):
        inst = planted_sphere_annulus(100, 12, (-0.2, 0.2), rng=1)
        np.testing.assert_allclose(
            np.linalg.norm(inst.points, axis=1), 1.0, atol=1e-9
        )
        assert np.linalg.norm(inst.query) == pytest.approx(1.0)

    def test_distractors_nearly_orthogonal(self):
        inst = planted_sphere_annulus(500, 256, (0.6, 0.7), rng=2)
        others = np.delete(np.arange(500), inst.planted_index)
        ips = inst.points[others] @ inst.query
        assert np.max(np.abs(ips)) < 0.45  # 6+ sigma at d=256

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            planted_sphere_annulus(10, 8, (0.5, 0.3))
        with pytest.raises(ValueError):
            planted_sphere_annulus(1, 8, (0.1, 0.2))


class TestPlantedEuclideanRange:
    def test_near_points_within_radius(self):
        inst = planted_euclidean_range(120, 8, 2.0, n_near=15, rng=3)
        assert len(inst.near_indices) == 15
        for i in inst.near_indices:
            assert np.linalg.norm(inst.points[i] - inst.query) <= 2.0 + 1e-9

    def test_far_points_respect_margin(self):
        inst = planted_euclidean_range(120, 8, 2.0, n_near=15, far_factor=3.0, rng=4)
        far = set(range(120)) - set(inst.near_indices)
        for i in far:
            assert np.linalg.norm(inst.points[i] - inst.query) >= 3.0 * 2.0 - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_euclidean_range(10, 4, -1.0, n_near=2)
        with pytest.raises(ValueError):
            planted_euclidean_range(10, 4, 1.0, n_near=20)
        with pytest.raises(ValueError):
            planted_euclidean_range(10, 4, 1.0, n_near=2, far_factor=0.5)


class TestClusteredUnitVectors:
    def test_shapes_and_labels(self):
        pts, labels, centers = clustered_unit_vectors(4, 25, 16, rng=5)
        assert pts.shape == (100, 16)
        assert centers.shape == (4, 16)
        assert set(labels) == {0, 1, 2, 3}

    def test_points_close_to_their_center(self):
        pts, labels, centers = clustered_unit_vectors(
            3, 40, 32, concentration=30.0, rng=6
        )
        # Expected similarity ~ conc/sqrt(conc^2 + d) = 0.983 at conc=30, d=32.
        for label in range(3):
            cluster = pts[labels == label]
            sims = cluster @ centers[label]
            assert np.min(sims) > 0.9

    def test_concentration_controls_spread(self):
        tight, labels_t, centers_t = clustered_unit_vectors(
            1, 200, 32, concentration=30.0, rng=8
        )
        diffuse, labels_d, centers_d = clustered_unit_vectors(
            1, 200, 32, concentration=3.0, rng=9
        )
        assert np.mean(tight @ centers_t[0]) > np.mean(diffuse @ centers_d[0])

    def test_unit_norms(self):
        pts, _, centers = clustered_unit_vectors(2, 10, 8, rng=7)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(np.linalg.norm(centers, axis=1), 1.0, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_unit_vectors(0, 5, 8)
        with pytest.raises(ValueError):
            clustered_unit_vectors(2, 5, 8, concentration=-1.0)
