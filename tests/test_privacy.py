"""Tests for PSI and privacy-preserving distance estimation (Section 6.4)."""

import numpy as np
import pytest

from repro.privacy.distance import PrivateDistanceEstimator, design_protocol
from repro.privacy.psi import run_psi, salted_digests
from repro.spaces import hamming

D = 64
R = 0.1   # relative Hamming radius (6.4 bits at d=64)
C = 3.0


class TestPsi:
    def test_intersection_correct(self):
        a = {b"x", b"y", b"z"}
        b = {b"y", b"z", b"w"}
        result = run_psi(a, b, rng=0)
        assert result.intersection == frozenset({b"y", b"z"})
        assert result.size_a == 3 and result.size_b == 3

    def test_empty_intersection(self):
        result = run_psi({b"a"}, {b"b"}, rng=1)
        assert result.intersection == frozenset()

    def test_leakage_grows_with_intersection(self):
        small = run_psi({b"a", b"b"}, {b"a"}, rng=2)
        large = run_psi({b"a", b"b", b"c"}, {b"a", b"b", b"c"}, rng=3)
        assert large.leaked_bits > small.leaked_bits

    def test_salt_changes_digests(self):
        d1 = salted_digests([b"item"], b"salt-one")
        d2 = salted_digests([b"item"], b"salt-two")
        assert set(d1.keys()) != set(d2.keys())

    def test_type_check(self):
        with pytest.raises(TypeError):
            run_psi({"not-bytes"}, {b"x"})


class TestProtocolDesign:
    def test_design_meets_targets_on_paper(self):
        design = design_protocol(d=D, r=R, c=C, epsilon=0.1, delta=0.1)
        assert design.n_hashes * design.p_far <= 0.1 + 1e-9
        assert (1 - design.p_near) ** design.n_hashes <= 0.1 + 1e-9
        assert 0 < design.rho < 1

    def test_hash_count_is_modest(self):
        """The exponential step tail keeps N small (paper: N = O(t log 1/eps))."""
        design = design_protocol(d=D, r=R, c=C, epsilon=0.1, delta=0.1)
        assert design.n_hashes < 500

    def test_cpf_is_step_shaped(self):
        design = design_protocol(d=D, r=R, c=C, epsilon=0.1, delta=0.1)
        cpf = design.family.cpf
        # flat within the documented Theta-factor on [0, r] ...
        flat = cpf(np.linspace(0, R, 20))
        assert flat.max() / flat.min() <= design.flat_ratio + 1e-9
        # ... and far below the flat level beyond c r.
        tail = cpf(np.linspace(C * R, 1.0, 20))
        assert tail.max() <= design.p_far + 1e-12

    def test_smaller_delta_needs_larger_power(self):
        loose = design_protocol(d=D, r=R, c=C, epsilon=0.2, delta=0.2)
        tight = design_protocol(d=D, r=R, c=C, epsilon=0.2, delta=0.001)
        assert tight.j > loose.j
        assert tight.n_hashes >= loose.n_hashes

    def test_leakage_logarithmic_in_epsilon(self):
        d1 = design_protocol(d=D, r=R, c=C, epsilon=0.1, delta=0.1)
        d2 = design_protocol(d=D, r=R, c=C, epsilon=0.01, delta=0.1)
        # ln(1/eps) doubles; leak items grow by about that factor (plus a
        # small flat-ratio increase because the FP constraint also tightens).
        assert d2.expected_leak_items <= 3.0 * d1.expected_leak_items

    def test_validation(self):
        with pytest.raises(ValueError):
            design_protocol(d=D, r=R, c=1.0, epsilon=0.1, delta=0.1)
        with pytest.raises(ValueError):
            design_protocol(d=D, r=0.4, c=3.0, epsilon=0.1, delta=0.1)  # c r >= 1
        with pytest.raises(ValueError):
            design_protocol(d=D, r=R, c=C, epsilon=0.0, delta=0.1)


class TestEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        design = design_protocol(d=D, r=R, c=C, epsilon=0.15, delta=0.15)
        return PrivateDistanceEstimator(design, rng=42)

    def test_near_pairs_answer_yes(self, estimator):
        rng = np.random.default_rng(0)
        r_bits = int(R * D)
        yes = 0
        trials = 40
        for _ in range(trials):
            x, q = hamming.pairs_at_distance(1, D, r_bits // 2, rng)
            yes += estimator.is_within(x, q)
        assert yes / trials >= 1 - 0.15 - 0.15  # epsilon target + sampling slack

    def test_far_pairs_answer_no(self, estimator):
        rng = np.random.default_rng(1)
        far_bits = int(3 * C * R * D)
        yes = 0
        trials = 40
        for _ in range(trials):
            x, q = hamming.pairs_at_distance(1, D, far_bits, rng)
            yes += estimator.is_within(x, q)
        assert yes / trials <= 0.15 + 0.15

    def test_identical_points_leak_little(self, estimator):
        """The step CPF's bounded flat level: even q = x produces only
        ~N p0 collisions, never the full sketch (the privacy contrast
        with plain LSH, where q = x collides on every hash)."""
        x = hamming.random_points(1, D, rng=2)
        _, psi = estimator.decide(
            estimator.sketch_data(x), estimator.sketch_query(x)
        )
        n = estimator.design.n_hashes
        expected = estimator.design.expected_leak_items
        assert len(psi.intersection) <= 3 * expected + 5
        assert len(psi.intersection) < n / 2

    def test_sketch_sizes(self, estimator):
        x = hamming.random_points(1, D, rng=3)
        assert len(estimator.sketch_data(x)) == estimator.design.n_hashes

    def test_dimension_enforced(self, estimator):
        with pytest.raises(ValueError, match="dimension"):
            estimator.sketch_data(hamming.random_points(1, D + 1, rng=4))

    def test_single_point_enforced(self, estimator):
        with pytest.raises(ValueError, match="one point"):
            estimator.sketch_data(hamming.random_points(2, D, rng=5))
