"""Tests for repro.core.family: hash component conventions and HashPair."""

import numpy as np
import pytest

from repro.core.family import HashPair, as_components, rows_equal, rows_to_keys
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.spaces import hamming


class TestAsComponents:
    def test_1d_promoted(self):
        out = as_components(np.array([1, 2, 3]))
        assert out.shape == (3, 1)
        assert out.dtype == np.int64

    def test_2d_passthrough(self):
        out = as_components(np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert out.shape == (2, 2)
        assert out.dtype == np.int64

    def test_float_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            as_components(np.array([1.5]))

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            as_components(np.zeros((1, 1, 1), dtype=np.int64))


class TestRowsEqual:
    def test_all_components_must_match(self):
        a = np.array([[1, 2], [3, 4], [5, 6]])
        b = np.array([[1, 2], [3, 0], [0, 6]])
        np.testing.assert_array_equal(rows_equal(a, b), [True, False, False])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rows_equal(np.zeros((2, 1), dtype=int), np.zeros((2, 2), dtype=int))


class TestRowsToKeys:
    def test_keys_distinguish_rows(self):
        keys = rows_to_keys(np.array([[1, 2], [1, 3], [1, 2]]))
        assert keys[0] == keys[2] and keys[0] != keys[1]

    def test_noncontiguous_input(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)[:, ::2]
        keys = rows_to_keys(arr)
        assert len(keys) == 3


class TestHashPair:
    def test_collides_matches_manual_equality(self):
        fam = BitSampling(d=8)
        pair = fam.sample(rng=0)
        x, y = hamming.pairs_at_distance(100, 8, 2, rng=1)
        manual = pair.hash_data(x)[:, 0] == pair.hash_query(y)[:, 0]
        np.testing.assert_array_equal(pair.collides(x, y), manual)

    def test_meta_records_coordinate(self):
        pair = BitSampling(d=5).sample(rng=3)
        assert 0 <= pair.meta["coordinate"] < 5


class TestSamplePairs:
    def test_reproducible(self):
        fam = AntiBitSampling(d=10)
        coords_a = [p.meta["coordinate"] for p in fam.sample_pairs(5, rng=42)]
        coords_b = [p.meta["coordinate"] for p in fam.sample_pairs(5, rng=42)]
        assert coords_a == coords_b

    def test_count(self):
        assert len(BitSampling(d=4).sample_pairs(7, rng=0)) == 7


class TestSymmetryFlags:
    def test_bit_sampling_symmetric(self):
        assert BitSampling(d=4).is_symmetric

    def test_anti_bit_sampling_asymmetric(self):
        assert not AntiBitSampling(d=4).is_symmetric
