"""Tests for repro.core.family: hash component conventions and HashPair."""

import numpy as np
import pytest

from repro.core.family import (
    HashPair,
    as_components,
    rows_equal,
    rows_to_fingerprints,
    rows_to_keys,
)
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.spaces import hamming


class TestAsComponents:
    def test_1d_promoted(self):
        out = as_components(np.array([1, 2, 3]))
        assert out.shape == (3, 1)
        assert out.dtype == np.int64

    def test_2d_passthrough(self):
        out = as_components(np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert out.shape == (2, 2)
        assert out.dtype == np.int64

    def test_float_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            as_components(np.array([1.5]))

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            as_components(np.zeros((1, 1, 1), dtype=np.int64))


class TestRowsEqual:
    def test_all_components_must_match(self):
        a = np.array([[1, 2], [3, 4], [5, 6]])
        b = np.array([[1, 2], [3, 0], [0, 6]])
        np.testing.assert_array_equal(rows_equal(a, b), [True, False, False])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rows_equal(np.zeros((2, 1), dtype=int), np.zeros((2, 2), dtype=int))


class TestRowsToKeys:
    def test_keys_distinguish_rows(self):
        keys = rows_to_keys(np.array([[1, 2], [1, 3], [1, 2]]))
        assert keys[0] == keys[2] and keys[0] != keys[1]

    def test_noncontiguous_input(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)[:, ::2]
        keys = rows_to_keys(arr)
        assert len(keys) == 3


class TestHashPair:
    def test_collides_matches_manual_equality(self):
        fam = BitSampling(d=8)
        pair = fam.sample(rng=0)
        x, y = hamming.pairs_at_distance(100, 8, 2, rng=1)
        manual = pair.hash_data(x)[:, 0] == pair.hash_query(y)[:, 0]
        np.testing.assert_array_equal(pair.collides(x, y), manual)

    def test_meta_records_coordinate(self):
        pair = BitSampling(d=5).sample(rng=3)
        assert 0 <= pair.meta["coordinate"] < 5


class TestSamplePairs:
    def test_reproducible(self):
        fam = AntiBitSampling(d=10)
        coords_a = [p.meta["coordinate"] for p in fam.sample_pairs(5, rng=42)]
        coords_b = [p.meta["coordinate"] for p in fam.sample_pairs(5, rng=42)]
        assert coords_a == coords_b

    def test_count(self):
        assert len(BitSampling(d=4).sample_pairs(7, rng=0)) == 7


class TestSymmetryFlags:
    def test_bit_sampling_symmetric(self):
        assert BitSampling(d=4).is_symmetric

    def test_anti_bit_sampling_asymmetric(self):
        assert not AntiBitSampling(d=4).is_symmetric


class TestRowsToFingerprints:
    """The uint64 mixing behind the packed index backend.

    ``rows_to_fingerprints`` documents a ~2**-64 per-pair collision
    probability for non-crafted inputs; these tests probe the structured
    near-miss patterns that break weak mixers (per-column multiply-add
    sums): high-bit-only differences vanish under mod-2**64 sums of shifted
    products, negative values alias their absolute values when the sign bit
    is dropped, and column swaps are invisible to any commutative combine.
    """

    def test_layout_and_determinism(self):
        rows = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.int64)
        fps = rows_to_fingerprints(rows)
        assert fps.shape == (2,)
        assert fps.dtype == np.uint64
        np.testing.assert_array_equal(fps, rows_to_fingerprints(rows))

    def test_matches_bytes_key_partition(self):
        """On a realistic hash-component sample, the fingerprint partition
        must equal the exact-bytes partition (no merged buckets)."""
        rng = np.random.default_rng(0)
        rows = rng.integers(-(2**62), 2**62, size=(5000, 4), dtype=np.int64)
        keys = rows_to_keys(rows)
        fps = rows_to_fingerprints(rows)
        assert len(set(keys)) == np.unique(fps).size

    def test_high_bit_only_differences(self):
        """Rows differing only in the top int64 bits must not collide —
        exactly the bits a truncating/summing mixer would discard."""
        base = np.zeros((1, 3), dtype=np.int64)
        variants = [base.copy() for _ in range(7)]
        variants[1][0, 0] = np.int64(-(2**63))          # sign bit of col 0
        variants[2][0, 1] = np.int64(-(2**63))          # sign bit of col 1
        variants[3][0, 0] = np.int64(2**62)
        variants[4][0, 2] = np.int64(2**62)
        variants[5][0, 0] = np.int64(-(2**63) + 2**62)
        variants[6][:] = np.int64(-(2**63))
        fps = rows_to_fingerprints(np.vstack(variants))
        assert np.unique(fps).size == len(variants)

    def test_negative_components_distinct_from_positive(self):
        rows = np.array(
            [[-1, 5], [1, 5], [-1, -5], [1, -5], [5, -1], [5, 1]],
            dtype=np.int64,
        )
        fps = rows_to_fingerprints(rows)
        assert np.unique(fps).size == rows.shape[0]

    def test_column_order_matters(self):
        """Swapping columns must change the fingerprint (a commutative
        combine like XOR-of-mixed-columns would collide here)."""
        a = rows_to_fingerprints(np.array([[3, 9]], dtype=np.int64))
        b = rows_to_fingerprints(np.array([[9, 3]], dtype=np.int64))
        assert a[0] != b[0]

    def test_offset_lattice_rows(self):
        """Rows on a 2**32 lattice (identical low words) stay distinct."""
        step = np.int64(2**32)
        rows = np.arange(64, dtype=np.int64)[:, None] * step + np.array(
            [7, 7, 7], dtype=np.int64
        )
        fps = rows_to_fingerprints(rows)
        assert np.unique(fps).size == 64

    def test_avalanche_on_single_bit_flips(self):
        """A one-bit input difference should flip ~32 of 64 output bits —
        evidence the documented 2**-64 uniform-collision heuristic applies."""
        rng = np.random.default_rng(1)
        rows = rng.integers(-(2**62), 2**62, size=(200, 2), dtype=np.int64)
        base = rows_to_fingerprints(rows)
        flipped_rows = rows.copy()
        bits = rng.integers(0, 63, size=200)
        flipped_rows[np.arange(200), 0] ^= np.int64(1) << bits
        flipped = rows_to_fingerprints(flipped_rows)
        changed = base ^ flipped
        popcount = np.array([bin(int(x)).count("1") for x in changed])
        assert popcount.min() >= 10
        assert 24 <= popcount.mean() <= 40

    def test_accepts_one_dimensional_components(self):
        fps = rows_to_fingerprints(np.array([1, 2, 2], dtype=np.int64))
        assert fps.shape == (3,)
        assert fps[1] == fps[2]
        assert fps[0] != fps[1]
