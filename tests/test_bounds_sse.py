"""Tests for small-set expansion bounds against exact cube probabilities."""

import numpy as np
import pytest

from repro.booleancube.sets import (
    correlated_pair_probability,
    hamming_ball,
    subcube,
    volume,
)
from repro.bounds.sse import (
    generalized_sse_upper_bound,
    reverse_sse_lower_bound,
    volume_to_parameter,
)

D = 10
ALPHAS = [0.0, 0.2, 0.5, 0.8]


def _test_sets(d):
    return {
        "half": subcube(d, {0: 0}),
        "quarter": subcube(d, {0: 0, 1: 1}),
        "thin": subcube(d, {0: 0, 1: 0, 2: 0, 3: 0}),
        "ball": hamming_ball(d, d // 3),
        "small ball": hamming_ball(d, 1),
    }


class TestVolumeParameter:
    def test_roundtrip(self):
        for v in [1.0, 0.5, 0.1, 1e-4]:
            a = volume_to_parameter(v)
            assert np.exp(-(a**2) / 2) == pytest.approx(v)

    def test_full_cube_parameter_zero(self):
        assert volume_to_parameter(1.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            volume_to_parameter(0.0)
        with pytest.raises(ValueError):
            volume_to_parameter(1.5)


class TestReverseSse:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_lower_bounds_exact_probability(self, alpha):
        sets = _test_sets(D)
        for name_a, a_ind in sets.items():
            for name_b, b_ind in sets.items():
                exact = correlated_pair_probability(a_ind, b_ind, alpha)
                bound = reverse_sse_lower_bound(volume(a_ind), volume(b_ind), alpha)
                assert exact >= bound - 1e-12, (
                    f"A={name_a}, B={name_b}, alpha={alpha}: {exact} < {bound}"
                )

    def test_tight_for_independent_halfcubes(self):
        """At alpha=0 the bound equals vol(A) * vol(B)."""
        bound = reverse_sse_lower_bound(0.5, 0.25, 0.0)
        assert bound == pytest.approx(0.125)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            reverse_sse_lower_bound(0.5, 0.5, -0.1)
        with pytest.raises(ValueError):
            reverse_sse_lower_bound(0.5, 0.5, 1.0)


class TestGeneralizedSse:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_upper_bounds_exact_probability(self, alpha):
        sets = _test_sets(D)
        for name_a, a_ind in sets.items():
            for name_b, b_ind in sets.items():
                va, vb = volume(a_ind), volume(b_ind)
                a = volume_to_parameter(va)
                b = volume_to_parameter(vb)
                lo, hi = min(a, b), max(a, b)
                if not alpha * hi <= lo:
                    continue  # outside the theorem's applicability region
                exact = correlated_pair_probability(a_ind, b_ind, alpha)
                bound = generalized_sse_upper_bound(va, vb, alpha)
                assert exact <= bound + 1e-12, (
                    f"A={name_a}, B={name_b}, alpha={alpha}: {exact} > {bound}"
                )

    def test_applicability_condition_enforced(self):
        # Tiny A (huge parameter b) with large alpha violates alpha*b <= a.
        with pytest.raises(ValueError, match="requires"):
            generalized_sse_upper_bound(0.9, 1e-6, 0.9)

    def test_symmetric_in_sets(self):
        assert generalized_sse_upper_bound(0.3, 0.5, 0.4) == pytest.approx(
            generalized_sse_upper_bound(0.5, 0.3, 0.4)
        )


class TestBoundsConsistency:
    def test_reverse_below_generalized(self):
        """Lower bound <= upper bound wherever both apply."""
        for alpha in ALPHAS:
            for va, vb in [(0.5, 0.5), (0.3, 0.4), (0.25, 0.25)]:
                a, b = volume_to_parameter(va), volume_to_parameter(vb)
                if alpha * max(a, b) > min(a, b):
                    continue
                lo = reverse_sse_lower_bound(va, vb, alpha)
                hi = generalized_sse_upper_bound(va, vb, alpha)
                assert lo <= hi + 1e-12
