"""Tests for bit-sampling families (Section 4.1 + Theorem 5.2 blocks)."""

import numpy as np
import pytest

from repro.booleancube.noise import exact_probabilistic_cpf
from repro.booleancube.walsh import enumerate_cube
from repro.core.estimate import estimate_collision_probability
from repro.families.bit_sampling import (
    AntiBitSampling,
    BitSampling,
    ConstantCollisionFamily,
)
from repro.spaces import hamming

D = 24


def _sampler(r):
    def sampler(n, rng):
        return hamming.pairs_at_distance(n, D, r, rng)

    return sampler


class TestBitSampling:
    def test_cpf_matches_measurement(self):
        fam = BitSampling(D)
        for r in [0, 6, 12, 24]:
            est = estimate_collision_probability(
                fam, _sampler(r), n_functions=200, pairs_per_function=80, rng=r
            )
            assert est.contains(1 - r / D), f"r={r}"

    def test_identical_points_always_collide(self):
        fam = BitSampling(D)
        x = hamming.random_points(50, D, rng=0)
        for pair in fam.sample_pairs(10, rng=1):
            assert np.all(pair.collides(x, x))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            BitSampling(0)

    def test_wrong_point_dimension_raises(self):
        pair = BitSampling(8).sample(rng=0)
        # Force sampling of a coordinate >= 4 to guarantee failure.
        bad = [p for p in BitSampling(8).sample_pairs(50, rng=3) if p.meta["coordinate"] >= 4]
        x = hamming.random_points(2, 4, rng=2)
        with pytest.raises(ValueError):
            bad[0].hash_data(x)


class TestAntiBitSampling:
    def test_cpf_is_increasing_in_distance(self):
        fam = AntiBitSampling(D)
        ests = [
            estimate_collision_probability(
                fam, _sampler(r), n_functions=200, pairs_per_function=80, rng=r
            ).p_hat
            for r in [2, 12, 22]
        ]
        assert ests[0] < ests[1] < ests[2]

    def test_identical_points_never_collide(self):
        """The paper's 'x = y must collide' objection is void for pairs."""
        fam = AntiBitSampling(D)
        x = hamming.random_points(50, D, rng=0)
        for pair in fam.sample_pairs(10, rng=1):
            assert not np.any(pair.collides(x, x))

    def test_antipodal_points_always_collide(self):
        fam = AntiBitSampling(D)
        x = hamming.random_points(50, D, rng=2)
        for pair in fam.sample_pairs(10, rng=3):
            assert np.all(pair.collides(x, 1 - x))

    def test_exact_probabilistic_cpf_matches_theory(self):
        """On the whole cube: f_hat(alpha) = (1 - alpha)/2 exactly."""
        d = 8
        cube = enumerate_cube(d)
        fam = AntiBitSampling(d)
        pairs = fam.sample_pairs(16, rng=4)
        labels = [(p.hash_data(cube)[:, 0], p.hash_query(cube)[:, 0]) for p in pairs]
        for alpha in [0.0, 0.3, 0.7]:
            got = exact_probabilistic_cpf(labels, alpha)
            assert got == pytest.approx((1 - alpha) / 2, abs=1e-12)


class TestConstantCollisionFamily:
    @pytest.mark.parametrize("p", [0.0, 0.3, 1.0])
    def test_collision_rate(self, p):
        fam = ConstantCollisionFamily(p)
        x = hamming.random_points(1, D, rng=0)
        collisions = sum(
            bool(pair.collides(x, x)[0]) for pair in fam.sample_pairs(600, rng=1)
        )
        assert collisions / 600 == pytest.approx(p, abs=0.06)

    def test_distance_independence(self):
        fam = ConstantCollisionFamily(0.5)
        pair = fam.sample(rng=5)
        x, y = hamming.pairs_at_distance(30, D, 12, rng=6)
        hits = pair.collides(x, y)
        # Within one sampled pair the outcome is the same for all points.
        assert np.all(hits) or not np.any(hits)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ConstantCollisionFamily(1.2)
