"""Tests for the shifted Euclidean family (Section 4.2, Thm 4.1, Fig 1)."""

import numpy as np
import pytest
from scipy import integrate
from scipy.stats import norm

from repro.core.estimate import estimate_collision_probability
from repro.families.euclidean_lsh import (
    ShiftedEuclideanCPF,
    ShiftedGaussianProjection,
    shifted_collision_probability,
    theorem41_rho_minus,
    theorem41_w,
)
from repro.spaces import euclidean

D = 8


def _sampler(delta):
    def sampler(n, rng):
        return euclidean.pairs_at_distance(n, D, delta, rng)

    return sampler


class TestClosedForm:
    @pytest.mark.parametrize("k,w", [(0, 1.0), (1, 0.7), (3, 1.0), (5, 2.0)])
    @pytest.mark.parametrize("delta", [0.25, 1.0, 4.0])
    def test_matches_quadrature(self, k, w, delta):
        tri = lambda s: max(0.0, 1 - abs(s - k * w) / w)  # noqa: E731
        expected, _ = integrate.quad(
            lambda s: norm.pdf(s / delta) / delta * tri(s), k * w - w, k * w + w
        )
        assert shifted_collision_probability(delta, k, w) == pytest.approx(
            expected, abs=1e-10
        )

    def test_k0_matches_datar_formula(self):
        w = 1.0
        for delta in [0.3, 1.0, 2.0]:
            classic = (
                2 * norm.cdf(w / delta)
                - 1
                - 2 * delta / (np.sqrt(2 * np.pi) * w) * (1 - np.exp(-(w**2) / (2 * delta**2)))
            )
            assert shifted_collision_probability(delta, 0, w) == pytest.approx(classic)

    def test_distance_zero(self):
        assert shifted_collision_probability(0.0, 0, 1.0) == 1.0
        assert shifted_collision_probability(0.0, 3, 1.0) == 0.0

    def test_figure1_shape(self):
        """k=3, w=1: unimodal, peak ~0.08, steeper left flank than right."""
        deltas = np.linspace(0.1, 10.0, 300)
        values = np.asarray(shifted_collision_probability(deltas, 3, 1.0))
        peak = int(np.argmax(values))
        assert 0 < peak < len(deltas) - 1
        assert values[peak] == pytest.approx(0.081, abs=0.005)
        assert 2.0 < deltas[peak] < 4.0
        # Unimodality.
        assert np.all(np.diff(values[: peak + 1]) >= -1e-12)
        assert np.all(np.diff(values[peak:]) <= 1e-12)
        # Asymmetry: value drops faster moving left of the peak than right.
        left = values[peak] - values[max(0, peak - 30)]
        right = values[peak] - values[min(len(values) - 1, peak + 30)]
        assert left > right

    def test_vectorized_matches_scalar(self):
        deltas = np.array([0.5, 1.5, 3.0])
        vec = shifted_collision_probability(deltas, 2, 0.8)
        scalars = [shifted_collision_probability(float(d), 2, 0.8) for d in deltas]
        np.testing.assert_allclose(vec, scalars)

    def test_validation(self):
        with pytest.raises(ValueError):
            shifted_collision_probability(1.0, -1, 1.0)
        with pytest.raises(ValueError):
            shifted_collision_probability(-1.0, 1, 1.0)
        with pytest.raises(ValueError):
            shifted_collision_probability(1.0, 1, 0.0)


class TestFamilyMeasurement:
    @pytest.mark.parametrize("k", [0, 2])
    def test_measured_cpf_matches_closed_form(self, k):
        fam = ShiftedGaussianProjection(D, w=1.0, k=k)
        for delta in [0.5, 2.0, 4.0]:
            est = estimate_collision_probability(
                fam, _sampler(delta), n_functions=250, pairs_per_function=80, rng=k * 10 + 1
            )
            expected = shifted_collision_probability(delta, k, 1.0)
            assert est.contains(expected), f"k={k} delta={delta}: {est} vs {expected}"

    def test_symmetry_flag(self):
        assert ShiftedGaussianProjection(D, 1.0, k=0).is_symmetric
        assert not ShiftedGaussianProjection(D, 1.0, k=2).is_symmetric

    def test_hash_values_shift_by_k(self):
        fam = ShiftedGaussianProjection(D, 1.0, k=4)
        pair = fam.sample(rng=0)
        x = euclidean.random_points(20, D, rng=1)
        np.testing.assert_array_equal(
            pair.hash_query(x)[:, 0] - pair.hash_data(x)[:, 0], 4
        )

    def test_cpf_object(self):
        cpf = ShiftedEuclideanCPF(3, 1.0)
        assert cpf.arg_kind == "distance"
        assert cpf(3.0) == pytest.approx(
            float(shifted_collision_probability(3.0, 3, 1.0))
        )


class TestTheorem41:
    def test_w_formula(self):
        assert theorem41_w(2.0) == pytest.approx(np.sqrt(2 * np.pi) / 4)
        with pytest.raises(ValueError):
            theorem41_w(1.0)

    @pytest.mark.parametrize("c", [1.5, 2.0, 3.0])
    def test_rho_minus_converges_to_inverse_c_squared(self, c):
        """rho_- * c^2 = 1 + O(1/k): check it decreases towards 1 in k."""
        values = [theorem41_rho_minus(k, c) * c**2 for k in (4, 8, 16, 32)]
        errors = [abs(v - 1.0) for v in values]
        assert errors[-1] < errors[0]
        assert values[-1] == pytest.approx(1.0, abs=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem41_rho_minus(0, 2.0)
        with pytest.raises(ValueError):
            theorem41_rho_minus(4, 1.0)
