"""Unit + property tests for repro.spaces.sphere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spaces import sphere


class TestConversions:
    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_angle_roundtrip(self, alpha):
        theta = sphere.inner_product_to_angle(alpha)
        assert sphere.angle_to_inner_product(theta) == pytest.approx(alpha, abs=1e-9)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_euclidean_roundtrip(self, alpha):
        tau = sphere.inner_product_to_euclidean(alpha)
        assert sphere.euclidean_to_inner_product(tau) == pytest.approx(alpha, abs=1e-9)

    def test_footnote_one_examples(self):
        # alpha = 1 -> distance 0; alpha = -1 -> distance 2; alpha = 0 -> sqrt(2).
        assert sphere.inner_product_to_euclidean(1.0) == 0.0
        assert sphere.inner_product_to_euclidean(-1.0) == pytest.approx(2.0)
        assert sphere.inner_product_to_euclidean(0.0) == pytest.approx(np.sqrt(2))


class TestSampling:
    def test_random_points_unit_norm(self):
        pts = sphere.random_points(100, 8, rng=0)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)

    def test_random_points_mean_near_zero(self):
        pts = sphere.random_points(20000, 3, rng=1)
        assert np.linalg.norm(pts.mean(axis=0)) < 0.02

    @pytest.mark.parametrize("alpha", [-0.9, -0.5, 0.0, 0.3, 0.99])
    def test_pairs_at_inner_product_exact(self, alpha):
        x, y = sphere.pairs_at_inner_product(200, 16, alpha, rng=2)
        np.testing.assert_allclose(sphere.inner_product(x, y), alpha, atol=1e-9)
        np.testing.assert_allclose(np.linalg.norm(y, axis=1), 1.0, atol=1e-9)

    def test_pairs_d1_raises(self):
        with pytest.raises(ValueError):
            sphere.pairs_at_inner_product(1, 1, 0.0)

    def test_orthogonal_to_is_orthogonal_unit(self):
        x = sphere.random_points(50, 6, rng=3)
        u = sphere.orthogonal_to(x, rng=4)
        np.testing.assert_allclose(sphere.inner_product(x, u), 0.0, atol=1e-9)
        np.testing.assert_allclose(np.linalg.norm(u, axis=1), 1.0, atol=1e-9)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            sphere.normalize(np.zeros((1, 3)))


class TestRandomRotation:
    @settings(max_examples=10)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=1000))
    def test_rotation_is_orthogonal(self, d, seed):
        q = sphere.random_rotation(d, rng=seed)
        np.testing.assert_allclose(q @ q.T, np.eye(d), atol=1e-9)

    def test_rotation_preserves_inner_products(self):
        q = sphere.random_rotation(5, rng=11)
        x, y = sphere.pairs_at_inner_product(10, 5, 0.4, rng=12)
        np.testing.assert_allclose(
            sphere.inner_product(x @ q.T, y @ q.T), 0.4, atol=1e-9
        )
