"""API-surface tests: reprs, query dimensionality validation, the
tuple-compatible ``CandidateResult``, deprecation shims, and the
``Queryable`` protocol."""

import numpy as np
import pytest

from repro.data.synthetic import planted_euclidean_range
from repro.families.bit_sampling import BitSampling
from repro.families.simhash import SimHash
from repro.families.step import design_step_family
from repro.index import (
    CandidateResult,
    DSHIndex,
    HyperplaneIndex,
    Queryable,
    QueryStats,
    RangeReportingIndex,
    sphere_annulus_index,
)
from repro.spaces import hamming, sphere


def _euclid(q, pts):
    return np.linalg.norm(pts - q, axis=1)


class TestRepr:
    def test_dsh_index(self):
        index = DSHIndex(SimHash(6), n_tables=4, rng=0, backend="packed")
        assert "unbuilt" in repr(index)
        index.build(sphere.random_points(25, 6, rng=1))
        text = repr(index)
        assert "SimHash" in text
        assert "L=4" in text
        assert "backend='packed'" in text
        assert "n_points=25" in text

    def test_annulus_index(self):
        pts = sphere.random_points(30, 8, rng=2)
        index = sphere_annulus_index(
            pts, (0.3, 0.6), t=1.5, n_tables=5, rng=3, backend="dict"
        )
        text = repr(index)
        assert "AnnulusIndex" in text and "AnnulusFamily" in text
        assert "L=5" in text and "backend='dict'" in text
        assert "n_points=30" in text and "interval=(0.3, 0.6)" in text

    def test_hyperplane_index(self):
        pts = sphere.random_points(30, 8, rng=4)
        index = HyperplaneIndex(pts, alpha=0.3, t=1.5, n_tables=5, rng=5)
        text = repr(index)
        assert "HyperplaneIndex" in text and "alpha=0.3" in text
        assert "L=5" in text and "n_points=30" in text

    def test_range_reporting_index(self):
        inst = planted_euclidean_range(40, 8, 4.0, n_near=3, rng=6)
        design = design_step_family(8, r_flat=4.0, level=0.12, n_components=3)
        index = RangeReportingIndex(
            inst.points, design.family, 4.0, _euclid, 5, rng=7
        )
        text = repr(index)
        assert "RangeReportingIndex" in text
        assert "r_report=4.0" in text and "n_points=40" in text


class TestDimensionValidation:
    @pytest.fixture(scope="class")
    def index(self):
        return DSHIndex(BitSampling(16), n_tables=3, rng=0).build(
            hamming.random_points(50, 16, rng=1)
        )

    def test_dim_property(self, index):
        assert index.dim == 16
        assert DSHIndex(BitSampling(4), n_tables=1).dim is None

    @pytest.mark.parametrize("bad_d", [8, 17])
    def test_single_query_rejected(self, index, bad_d):
        with pytest.raises(ValueError, match="dimensionality"):
            index.query(np.zeros(bad_d, dtype=np.int8))

    def test_batch_query_rejected(self, index):
        with pytest.raises(ValueError, match="dimensionality"):
            index.batch_query(np.zeros((4, 8), dtype=np.int8))

    def test_iter_and_hits_rejected(self, index):
        with pytest.raises(ValueError, match="dimensionality"):
            next(index.iter_candidates(np.zeros(8, dtype=np.int8)))
        with pytest.raises(ValueError, match="dimensionality"):
            index.query_hits(np.zeros(8, dtype=np.int8))
        with pytest.raises(ValueError, match="dimensionality"):
            index.batch_query_hits(np.zeros((2, 8), dtype=np.int8))

    def test_3d_queries_rejected(self, index):
        with pytest.raises(ValueError, match="one point"):
            index.batch_query(np.zeros((2, 3, 16), dtype=np.int8))

    def test_application_layers_validate(self):
        pts = sphere.random_points(40, 12, rng=2)
        annulus = sphere_annulus_index(
            pts, (0.3, 0.6), t=1.5, n_tables=4, rng=3
        )
        with pytest.raises(ValueError, match="dimensionality"):
            annulus.query(np.zeros(7))
        with pytest.raises(ValueError, match="dimensionality"):
            annulus.batch_query(np.zeros((2, 7)))
        inst = planted_euclidean_range(30, 8, 4.0, n_near=2, rng=4)
        design = design_step_family(8, r_flat=4.0, level=0.12, n_components=3)
        reporting = RangeReportingIndex(
            inst.points, design.family, 4.0, _euclid, 4, rng=5
        )
        with pytest.raises(ValueError, match="dimensionality"):
            reporting.query(np.zeros(5))
        with pytest.raises(ValueError, match="dimensionality"):
            reporting.batch_query(np.zeros((2, 5)))

    def test_matching_dim_accepted(self, index):
        candidates, stats = index.query(np.zeros(16, dtype=np.int8))
        assert stats.tables_probed == 3


class TestCandidateResultCompat:
    @pytest.fixture(scope="class")
    def index(self):
        return DSHIndex(BitSampling(8), n_tables=3, rng=0).build(
            np.zeros((5, 8), dtype=np.int8)
        )

    def test_tuple_unpacking_and_equality(self, index):
        result = index.query(np.zeros(8, dtype=np.int8))
        candidates, stats = result          # legacy unpacking
        assert isinstance(result, CandidateResult)
        assert result == (candidates, stats)  # legacy tuple equality
        assert result.indices is candidates
        assert result.stats is stats
        assert isinstance(stats, QueryStats)

    def test_batch_elements_are_candidate_results(self, index):
        for result in index.batch_query(np.zeros((2, 8), dtype=np.int8)):
            assert isinstance(result, CandidateResult)
            assert result.indices == [0, 1, 2, 3, 4]


class TestRemovedShims:
    def test_query_candidates_shim_is_gone(self):
        # Deprecated in PR 2, removed in this release: the README
        # migration table documents `query` as the replacement.
        index = DSHIndex(BitSampling(8), n_tables=3, rng=0).build(
            np.zeros((5, 8), dtype=np.int8)
        )
        assert not hasattr(index, "query_candidates")


class TestQueryableProtocol:
    def test_all_indexes_satisfy_protocol(self):
        pts = sphere.random_points(30, 8, rng=0)
        inst = planted_euclidean_range(30, 8, 4.0, n_near=2, rng=1)
        design = design_step_family(8, r_flat=4.0, level=0.12, n_components=3)
        indexes = [
            DSHIndex(SimHash(8), n_tables=2, rng=0).build(pts),
            sphere_annulus_index(pts, (0.3, 0.6), t=1.5, n_tables=3, rng=1),
            HyperplaneIndex(pts, alpha=0.3, t=1.5, n_tables=3, rng=2),
            RangeReportingIndex(
                inst.points, design.family, 4.0, _euclid, 3, rng=3
            ),
        ]
        for index in indexes:
            assert isinstance(index, Queryable)

    def test_results_carry_stats(self):
        pts = sphere.random_points(30, 8, rng=0)
        annulus = sphere_annulus_index(pts, (0.3, 0.6), t=1.5, n_tables=3, rng=1)
        result = annulus.query(pts[0])
        assert result.stats.tables_probed >= 1
        assert result.retrieved == result.stats.retrieved
        assert result.unique_candidates == result.stats.unique_candidates
