"""Tests for the name-based family registry and its validated params."""

import dataclasses

import numpy as np
import pytest

from repro.core.combinators import PoweredFamily
from repro.core.family import DSHFamily, HashPair
from repro.families import registry
from repro.families.registry import (
    FAMILY_REGISTRY,
    family_entry,
    family_names,
    make_family,
    register_family,
    validate_family_params,
)
from repro.spaces import euclidean, hamming, sphere

# (name, params, point sampler) — every registered family builds and hashes.
CONSTRUCTIBLE = [
    ("simhash", {"d": 8}, lambda n: sphere.random_points(n, 8, rng=0)),
    ("bit_sampling", {"d": 16}, lambda n: hamming.random_points(n, 16, rng=0)),
    (
        "anti_bit_sampling",
        {"d": 16},
        lambda n: hamming.random_points(n, 16, rng=0),
    ),
    (
        "euclidean_lsh",
        {"d": 8, "w": 2.0, "k": 1},
        lambda n: euclidean.random_points(n, 8, rng=0),
    ),
    (
        "annulus_sphere",
        {"d": 10, "alpha_max": 0.3, "t": 1.5},
        lambda n: sphere.random_points(n, 10, rng=0),
    ),
    (
        "hamming_annulus",
        {"d": 16, "peak": 0.3},
        lambda n: hamming.random_points(n, 16, rng=0),
    ),
    ("cross_polytope", {"d": 6}, lambda n: sphere.random_points(n, 6, rng=0)),
    (
        "negated_cross_polytope",
        {"d": 6},
        lambda n: sphere.random_points(n, 6, rng=0),
    ),
    (
        "step_euclidean",
        {"d": 8, "r_flat": 4.0, "level": 0.12, "n_components": 3},
        lambda n: euclidean.random_points(n, 8, rng=0),
    ),
]


class TestRegistryContents:
    def test_all_expected_names_registered(self):
        assert {name for name, _, _ in CONSTRUCTIBLE} <= set(family_names())

    def test_entries_have_descriptions_and_dataclasses(self):
        for name in family_names():
            entry = family_entry(name)
            assert entry.description
            assert dataclasses.is_dataclass(entry.params_type)

    @pytest.mark.parametrize(
        "name,params,sampler",
        CONSTRUCTIBLE,
        ids=[c[0] for c in CONSTRUCTIBLE],
    )
    def test_every_family_constructs_and_hashes(self, name, params, sampler):
        family = make_family(name, **params)
        assert isinstance(family, DSHFamily)
        pair = family.sample(rng=1)
        points = sampler(5)
        comps = pair.hash_data(points)
        assert comps.shape[0] == 5
        assert comps.dtype == np.int64
        qcomps = pair.hash_query(points)
        assert qcomps.shape == comps.shape

    def test_power_wraps_in_powered_family(self):
        family = make_family("simhash", power=4, d=8)
        assert isinstance(family, PoweredFamily)
        pair = family.sample(rng=0)
        comps = pair.hash_data(sphere.random_points(3, 8, rng=2))
        assert comps.shape == (3, 4)  # one component per concatenated draw

    def test_power_one_is_identity(self):
        family = make_family("simhash", power=1, d=8)
        assert not isinstance(family, PoweredFamily)


class TestValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            make_family("b-tree", d=4)

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_family("simhash", d=8, widgets=3)

    def test_missing_required_parameter(self):
        with pytest.raises(ValueError, match="missing required"):
            make_family("euclidean_lsh", d=8)  # no w

    @pytest.mark.parametrize(
        "name,params",
        [
            ("simhash", {"d": 0}),
            ("euclidean_lsh", {"d": 8, "w": -1.0}),
            ("euclidean_lsh", {"d": 8, "w": 1.0, "k": -1}),
            ("annulus_sphere", {"d": 8, "alpha_max": 1.5, "t": 1.0}),
            ("annulus_sphere", {"d": 8, "alpha_max": 0.3, "t": 0.0}),
            ("hamming_annulus", {"d": 8, "peak": 0.0}),
            ("step_euclidean", {"d": 8, "r_flat": 4.0, "level": 0.9}),
        ],
    )
    def test_out_of_domain_values(self, name, params):
        with pytest.raises(ValueError):
            validate_family_params(name, params)

    def test_invalid_power(self):
        with pytest.raises(ValueError, match="power"):
            make_family("simhash", power=0, d=8)

    def test_validate_returns_dataclass_instance(self):
        params = validate_family_params("euclidean_lsh", {"d": 8, "w": 2.0})
        assert params.k == 0  # default filled in
        assert dataclasses.asdict(params) == {"d": 8, "w": 2.0, "k": 0}


class _ToyParams:
    pass


class TestRegisterFamily:
    def _cleanup(self, name):
        FAMILY_REGISTRY.pop(name, None)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_family(
                "simhash", registry.DimParams, lambda p: None
            )

    def test_non_dataclass_params_rejected(self):
        with pytest.raises(TypeError, match="dataclass"):
            register_family("toy", _ToyParams, lambda p: None)

    def test_register_and_overwrite(self):
        try:
            register_family(
                "toy",
                registry.DimParams,
                lambda p: registry.SimHash(p.d),
                "toy entry",
            )
            assert "toy" in family_names()
            family = make_family("toy", d=4)
            assert isinstance(family, registry.SimHash)
            with pytest.raises(ValueError):
                register_family("toy", registry.DimParams, lambda p: None)
            register_family(
                "toy",
                registry.DimParams,
                lambda p: registry.BitSampling(p.d),
                overwrite=True,
            )
            assert isinstance(make_family("toy", d=4), registry.BitSampling)
        finally:
            self._cleanup("toy")
