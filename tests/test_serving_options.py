"""ServingOptions: validation, round-trip, plumb-through, and the
legacy-keyword deprecation shim on ``load_index`` / ``ShardedIndex.load``.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.api import IndexSpec, load_index, save_index
from repro.serving import ServingOptions, ShardedIndex
from repro.spaces import hamming

D = 16
N_TABLES = 6


def _spec(shards=1):
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": 3},
        n_tables=N_TABLES,
        seed=7,
        shards=shards,
    )


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    rng = np.random.default_rng(5)
    points = hamming.random_points(120, D, rng=rng)
    root = tmp_path_factory.mktemp("options")
    single = root / "single"
    sharded = root / "sharded"
    save_index(_spec().build(points), single)
    save_index(_spec(shards=2).build(points), sharded)
    return single, sharded, points


class TestValidation:
    def test_defaults_are_valid(self):
        opts = ServingOptions()
        assert opts.workers is None
        assert opts.mmap is True
        assert opts.verify == "lazy"
        assert opts.on_shard_failure == "raise"
        assert opts.timeout is None
        assert opts.max_retries == 2
        assert opts.retry_backoff_s == pytest.approx(0.05)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ServingOptions().workers = 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -1},
            {"verify": "sometimes"},
            {"on_shard_failure": "explode"},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"max_retries": -1},
            {"retry_backoff_s": -0.1},
        ],
    )
    def test_bad_values_rejected_eagerly(self, kwargs):
        with pytest.raises(ValueError):
            ServingOptions(**kwargs)


class TestRoundTrip:
    def test_dict_json_round_trip(self):
        opts = ServingOptions(
            workers=3,
            mmap=False,
            verify="eager",
            on_shard_failure="degrade",
            timeout=2.5,
            max_retries=4,
            retry_backoff_s=0.1,
        )
        assert ServingOptions.from_dict(opts.to_dict()) == opts
        assert (
            ServingOptions.from_dict(json.loads(json.dumps(opts.to_dict())))
            == opts
        )

    def test_round_trips_alongside_index_spec(self):
        # A deployment config can pin the build and the serving policy in
        # one JSON document.
        config = {
            "spec": _spec(shards=2).to_dict(),
            "serving": ServingOptions(workers=2, timeout=5.0).to_dict(),
        }
        revived = json.loads(json.dumps(config))
        assert IndexSpec.from_dict(revived["spec"]) == _spec(shards=2)
        assert ServingOptions.from_dict(revived["serving"]) == ServingOptions(
            workers=2, timeout=5.0
        )

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServingOptions field"):
            ServingOptions.from_dict({"workerz": 2})

    def test_from_dict_accepts_partial(self):
        assert ServingOptions.from_dict({"verify": "off"}) == ServingOptions(
            verify="off"
        )


class TestPlumbThrough:
    def test_sharded_load_applies_options(self, saved):
        _, sharded_path, _ = saved
        opts = ServingOptions(
            verify="off", on_shard_failure="degrade",
            timeout=9.0, max_retries=5, retry_backoff_s=0.2,
        )
        with load_index(sharded_path, options=opts) as index:
            assert isinstance(index, ShardedIndex)
            assert index.options == opts
            assert index.max_retries == 5
            assert index.retry_backoff_s == pytest.approx(0.2)

    def test_default_timeout_used_by_batch_query(self, saved):
        _, sharded_path, points = saved
        # A generous default deadline must not interfere with a healthy
        # in-process query path (the deadline plumbing itself is
        # exercised against a real pool in test_serving_faults.py).
        opts = ServingOptions(timeout=60.0)
        with load_index(sharded_path, options=opts) as index:
            results = index.batch_query(points[:4])
            assert len(results) == 4
        # ... while an absurdly small explicit per-call timeout still
        # overrides the default validation-wise.
        with load_index(sharded_path, options=opts) as index:
            with pytest.raises(ValueError, match="timeout must be positive"):
                index.batch_query(points[:4], timeout=-1.0)

    def test_single_index_rejects_pool_only_options(self, saved):
        single_path, _, _ = saved
        with pytest.raises(ValueError, match="sharded indexes only"):
            load_index(single_path, options=ServingOptions(workers=2))
        with pytest.raises(ValueError, match="sharded indexes only"):
            load_index(
                single_path,
                options=ServingOptions(on_shard_failure="degrade"),
            )

    def test_in_memory_sharded_index_has_default_options(self, saved):
        _, _, points = saved
        index = ShardedIndex(points, _spec(shards=2))
        assert index.options == ServingOptions()


class TestDeprecationShim:
    def test_legacy_kwargs_warn_and_still_work(self, saved):
        single_path, sharded_path, points = saved
        with pytest.warns(DeprecationWarning, match="ServingOptions"):
            index = load_index(single_path, mmap=False)
        baseline = load_index(single_path)
        assert [r.indices for r in index.batch_query(points[:3])] == [
            r.indices for r in baseline.batch_query(points[:3])
        ]
        with pytest.warns(DeprecationWarning, match="ServingOptions"):
            with load_index(sharded_path, verify="off") as sharded:
                assert sharded.options.verify == "off"

    def test_legacy_kwargs_on_sharded_load_warn(self, saved):
        _, sharded_path, _ = saved
        with pytest.warns(DeprecationWarning, match="ServingOptions"):
            with ShardedIndex.load(
                sharded_path, on_shard_failure="degrade"
            ) as index:
                assert index.options.on_shard_failure == "degrade"

    def test_mixing_legacy_and_options_raises(self, saved):
        _, sharded_path, _ = saved
        with pytest.raises(ValueError, match="not both"):
            load_index(
                sharded_path, verify="off", options=ServingOptions()
            )
        with pytest.raises(ValueError, match="not both"):
            ShardedIndex.load(
                sharded_path, workers=1, options=ServingOptions()
            )

    def test_no_warning_without_legacy_kwargs(self, saved, recwarn):
        single_path, _, _ = saved
        load_index(single_path)
        load_index(single_path, options=ServingOptions(verify="eager"))
        deprecations = [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
        assert deprecations == []
