"""The invariant linter: one good/bad fixture pair per rule, the
suppression/baseline machinery, the CLI contract, and the self-check
that ``src/`` itself is violation-free against the committed (empty)
baseline."""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.analysis import (
    ALL_RULES,
    RULES_BY_ID,
    SourceFile,
    load_baseline,
    main,
    run_source,
    write_baseline,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def lint(text: str, path: str = "pkg/mod.py", select: str | None = None):
    """Run the registry (or one rule) over an in-memory module."""
    rules = [RULES_BY_ID[select]] if select else list(ALL_RULES)
    return run_source(SourceFile(path, text), rules)


def codes(violations) -> list[str]:
    return [v.rule for v in violations]


# ---------------------------------------------------------------------------
# RR001 rng-discipline
# ---------------------------------------------------------------------------


def test_rr001_flags_legacy_module_state_rng():
    bad = "import numpy as np\nx = np.random.rand(3)\n"
    assert codes(lint(bad, select="RR001")) == ["RR001"]


def test_rr001_flags_unseeded_default_rng_outside_rng_module():
    bad = "import numpy as np\ngen = np.random.default_rng(7)\n"
    assert codes(lint(bad, select="RR001")) == ["RR001"]


def test_rr001_good_uses_ensure_rng_and_rng_module_is_exempt():
    good = (
        "from repro.utils.rng import ensure_rng\n"
        "gen = ensure_rng(7)\n"
        "x = gen.standard_normal(3)\n"
    )
    assert lint(good, select="RR001") == []
    # The sanctioned construction site may call default_rng directly.
    sanctioned = "import numpy as np\ngen = np.random.default_rng(s)\n"
    assert lint(sanctioned, path="src/repro/utils/rng.py", select="RR001") == []


def test_rr001_sees_through_import_aliases():
    bad = "from numpy import random as nr\nnr.shuffle(x)\n"
    assert codes(lint(bad, select="RR001")) == ["RR001"]


# ---------------------------------------------------------------------------
# RR002 dtype-contract
# ---------------------------------------------------------------------------


def test_rr002_flags_id_narrowing_outside_sanctioned_site():
    bad = "import numpy as np\nids = raw_ids.astype(np.int32)\n"
    assert codes(lint(bad, select="RR002")) == ["RR002"]


def test_rr002_flags_narrow_fingerprint_dtype_kwarg():
    bad = "import numpy as np\nfps = np.zeros(4, dtype=np.uint32)\n"
    assert codes(lint(bad, select="RR002")) == ["RR002"]


def test_rr002_good_wide_dtypes_and_sanctioned_build():
    good = (
        "import numpy as np\n"
        "ids = raw_ids.astype(np.int64)\n"
        "fps = np.zeros(4, dtype=np.uint64)\n"
    )
    assert lint(good, select="RR002") == []
    sanctioned = (
        "import numpy as np\n"
        "class PackedBackend:\n"
        "    def build(self, tables):\n"
        "        ids = raw_ids.astype(np.int32)\n"
    )
    assert (
        lint(sanctioned, path="src/repro/index/backends.py", select="RR002")
        == []
    )


# ---------------------------------------------------------------------------
# RR003 transport-hygiene
# ---------------------------------------------------------------------------


def test_rr003_flags_pickle_import_outside_transport_layer():
    assert codes(lint("import pickle\n", select="RR003")) == ["RR003"]
    assert codes(
        lint("from multiprocessing import shared_memory\n", select="RR003")
    ) == ["RR003"]


def test_rr003_good_in_serving_and_persistence():
    text = "import pickle\nfrom multiprocessing import shared_memory\n"
    assert lint(text, path="src/repro/serving/sharded.py", select="RR003") == []
    assert (
        lint(text, path="src/repro/index/persistence.py", select="RR003") == []
    )


# ---------------------------------------------------------------------------
# RR004 api-surface
# ---------------------------------------------------------------------------


def test_rr004_flags_drifted_all_and_bare_public_function():
    bad = (
        '__all__ = ["ghost"]\n'
        "def helper(x):\n"
        '    """Doc."""\n'
        "    return x\n"
    )
    found = codes(lint(bad, select="RR004"))
    # ghost is undefined; helper is unexported and unannotated.
    assert found.count("RR004") >= 3


def test_rr004_good_exported_annotated_documented():
    good = (
        '__all__ = ["helper"]\n'
        "def helper(x: int) -> int:\n"
        '    """Doc."""\n'
        "    return x\n"
    )
    assert lint(good, select="RR004") == []


# ---------------------------------------------------------------------------
# RR005 no-assert / no-mutable-default
# ---------------------------------------------------------------------------


def test_rr005_flags_assert_and_mutable_default():
    bad = (
        "def f(xs=[]):\n"
        '    """Doc."""\n'
        "    assert xs\n"
        "    return xs\n"
    )
    assert codes(lint(bad, select="RR005")) == ["RR005", "RR005"]


def test_rr005_good_none_default_and_raise():
    good = (
        "def f(xs=None):\n"
        '    """Doc."""\n'
        "    if not xs:\n"
        '        raise ValueError("empty")\n'
        "    return xs\n"
    )
    assert lint(good, select="RR005") == []


# ---------------------------------------------------------------------------
# RR006 clip-discipline
# ---------------------------------------------------------------------------


def test_rr006_flags_direct_hit_array_slicing():
    bad = "def f(block, budget):\n    return block.hits[:budget]\n"
    assert codes(lint(bad, select="RR006")) == ["RR006"]


def test_rr006_good_inside_clip_batch_hits():
    good = (
        "def clip_batch_hits(block, budget):\n"
        "    return block.hits[:budget]\n"
    )
    assert lint(good, select="RR006") == []


# ---------------------------------------------------------------------------
# RR007 broad-except-discipline
# ---------------------------------------------------------------------------


def test_rr007_flags_silent_broad_handlers():
    bad = (
        "try:\n"
        "    f()\n"
        "except Exception:\n"
        "    pass\n"
        "try:\n"
        "    g()\n"
        "except:\n"
        "    ...\n"
    )
    assert codes(lint(bad, select="RR007")) == ["RR007", "RR007"]


def test_rr007_good_narrow_or_acting_handlers():
    good = (
        "import warnings\n"
        "try:\n"
        "    f()\n"
        "except FileNotFoundError:\n"
        "    pass\n"  # narrow + silent: documents what it expects
        "try:\n"
        "    g()\n"
        "except Exception as exc:\n"
        "    warnings.warn(f'unexpected: {exc!r}')\n"  # broad but acts
    )
    assert lint(good, select="RR007") == []


# ---------------------------------------------------------------------------
# RR008 resource-lifecycle
# ---------------------------------------------------------------------------


def test_rr008_flags_straight_line_resource_use():
    bad = (
        "def leak(path):\n"
        '    """Doc."""\n'
        "    handle = open(path)\n"
        "    data = handle.read()\n"
        "    handle.close()\n"  # straight-line close: leaks on exception
        "    return data\n"
    )
    assert codes(lint(bad, select="RR008")) == ["RR008"]


def test_rr008_flags_unbound_acquisition():
    bad = (
        "def peek(path):\n"
        '    """Doc."""\n'
        "    return open(path).read()\n"
    )
    assert codes(lint(bad, select="RR008")) == ["RR008"]


def test_rr008_good_with_try_finally_and_finalize():
    good = (
        "import weakref\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def read(path):\n"
        '    """Doc."""\n'
        "    with open(path) as handle:\n"
        "        return handle.read()\n"
        "def guarded(path):\n"
        '    """Doc."""\n'
        "    handle = open(path)\n"
        "    try:\n"
        "        return handle.read()\n"
        "    finally:\n"
        "        handle.close()\n"
        "class Serving:\n"
        '    """Doc."""\n'
        "    def start(self):\n"
        '        """Doc."""\n'
        "        self._pool = ProcessPoolExecutor(2)\n"
        "        weakref.finalize(self, _cleanup, self._pool)\n"
    )
    assert lint(good, select="RR008") == []


def test_rr008_good_escape_and_journal_handoff():
    # Returned resources transfer ownership to the caller.
    escape = (
        "import numpy as np\n"
        "def view(path):\n"
        '    """Doc."""\n'
        "    return np.memmap(path, dtype='uint8', mode='r')\n"
    )
    assert lint(escape, select="RR008") == []
    # The journal-mediated shm handoff in serving/sharded.py is
    # sanctioned: the crash journal sweeper reclaims orphans.
    journal = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def _ship(journal_dir, payload):\n"
        '    """Doc."""\n'
        "    shm = SharedMemory(create=True, size=len(payload))\n"
        "    _journal_record(journal_dir, shm.name)\n"
        "    shm.buf[: len(payload)] = payload\n"
        "    shm.close()\n"
    )
    assert lint(journal, path="src/repro/serving/sharded.py", select="RR008") == []
    # The same shape outside sharded.py is a leak.
    assert codes(lint(journal, path="src/repro/api.py", select="RR008")) == [
        "RR008"
    ]


# ---------------------------------------------------------------------------
# RR009 exception-flow
# ---------------------------------------------------------------------------


_RR009_PRELUDE = (
    "class BoomError(RuntimeError):\n"
    '    """Boom."""\n'
    "def _helper():\n"
    '    """Doc."""\n'
    '    raise BoomError("x")\n'
)


def test_rr009_flags_undocumented_escapee_through_call_graph():
    bad = _RR009_PRELUDE + (
        "def public_api():\n"
        '    """Does a thing."""\n'
        "    return _helper()\n"
    )
    found = lint(bad, select="RR009")
    assert codes(found) == ["RR009"]
    assert "BoomError" in found[0].message


def test_rr009_good_documented_or_caught():
    documented = _RR009_PRELUDE + (
        "def public_api():\n"
        '    """Does a thing; raises BoomError when x is bad."""\n'
        "    return _helper()\n"
    )
    assert lint(documented, select="RR009") == []
    caught = _RR009_PRELUDE + (
        "def safe_api():\n"
        '    """Never raises BoomError upward."""\n'
        "    try:\n"
        "        return _helper()\n"
        "    except BoomError:\n"
        "        return None\n"
    )
    assert lint(caught, select="RR009") == []


def test_rr009_flags_stale_raises_section():
    stale = (
        "class BoomError(RuntimeError):\n"
        '    """Boom."""\n'
        "def public_api():\n"
        '    """Does a thing.\n'
        "\n"
        "    Raises\n"
        "    ------\n"
        "    BoomError\n"
        "        never actually raised.\n"
        '    """\n'
        "    return 1\n"
    )
    found = lint(stale, select="RR009")
    assert codes(found) == ["RR009"]
    assert "cannot reach" in found[0].message


# ---------------------------------------------------------------------------
# RR010 process-boundary
# ---------------------------------------------------------------------------


def test_rr010_flags_lambda_submitted_to_process_pool():
    bad = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def run():\n"
        '    """Doc."""\n'
        "    with ProcessPoolExecutor() as pool:\n"
        "        return pool.submit(lambda: 1).result()\n"
    )
    found = lint(bad, select="RR010")
    assert codes(found) == ["RR010"]
    assert "lambda" in found[0].message


def test_rr010_flags_nested_function_and_nested_exception():
    nested_func = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def run():\n"
        '    """Doc."""\n'
        "    def inner(x):\n"
        '        """Doc."""\n'
        "        return x\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return pool.submit(inner, 1).result()\n"
    )
    assert codes(lint(nested_func, select="RR010")) == ["RR010"]
    nested_exc = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def work():\n"
        '    """Doc."""\n'
        "    class InnerError(ValueError):\n"
        '        """Doc."""\n'
        '    raise InnerError("x")\n'
        "def run():\n"
        '    """Doc."""\n'
        "    with ProcessPoolExecutor() as pool:\n"
        "        return pool.submit(work).result()\n"
    )
    found = lint(nested_exc, select="RR010")
    assert codes(found) == ["RR010"]
    assert "InnerError" in found[0].message


def test_rr010_good_top_level_target_and_thread_pool():
    good = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def work(x):\n"
        '    """Doc."""\n'
        "    return x + 1\n"
        "def run():\n"
        '    """Doc."""\n'
        "    with ProcessPoolExecutor() as pool:\n"
        "        return pool.submit(work, 1).result()\n"
    )
    assert lint(good, select="RR010") == []
    # Thread pools never cross a pickle boundary: lambdas are fine.
    threads = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "def run():\n"
        '    """Doc."""\n'
        "    with ThreadPoolExecutor() as pool:\n"
        "        return pool.submit(lambda: 1).result()\n"
    )
    assert lint(threads, select="RR010") == []


def test_rr010_confines_fault_hooks_to_serving():
    leak = "from repro.serving import faults\n"
    assert codes(lint(leak, path="src/repro/api.py", select="RR010")) == [
        "RR010"
    ]
    direct = "from repro.serving.faults import fault_point\n"
    assert codes(lint(direct, path="src/repro/index/backends.py", select="RR010")) == [
        "RR010"
    ]
    inside = "from repro.serving import faults\n"
    assert (
        lint(inside, path="src/repro/serving/sharded.py", select="RR010") == []
    )


# ---------------------------------------------------------------------------
# RR011 layering
# ---------------------------------------------------------------------------


def test_rr011_flags_upward_eager_import():
    bad = "from repro.serving.sharded import ShardedIndex\n"
    found = lint(bad, path="src/repro/core/widget.py", select="RR011")
    assert codes(found) == ["RR011"]
    assert "layer" in found[0].message


def test_rr011_good_downward_or_lazy_import():
    down = "from repro.core.family import DSHFamily\n"
    assert lint(down, path="src/repro/serving/widget.py", select="RR011") == []
    lazy = (
        "def load_sharded(path):\n"
        '    """Doc."""\n'
        "    from repro.serving.sharded import ShardedIndex\n"
        "    return ShardedIndex.load(path)\n"
    )
    assert lint(lazy, path="src/repro/api.py", select="RR011") == []
    guarded = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.serving.sharded import ShardedIndex\n"
    )
    assert lint(guarded, path="src/repro/core/widget.py", select="RR011") == []


# ---------------------------------------------------------------------------
# Suppression and baseline machinery
# ---------------------------------------------------------------------------


def test_noqa_blanket_and_coded_suppression():
    assert lint("import pickle  # noqa\n", select="RR003") == []
    assert lint("import pickle  # noqa: RR003\n", select="RR003") == []
    # A noqa for a *different* rule does not suppress.
    assert codes(lint("import pickle  # noqa: RR001\n", select="RR003")) == [
        "RR003"
    ]


def test_noqa_comma_list_tolerates_spaces():
    src = "import pickle  # noqa: RR001, RR003\n"
    assert lint(src, select="RR003") == []
    assert lint(src, select="RR001") == []
    spaced = "import pickle  # noqa:  RR003 , RR001\n"
    assert lint(spaced, select="RR003") == []


def test_noqa_inside_string_literal_does_not_suppress():
    # The marker only counts as a directive in a COMMENT token; the same
    # text inside a string literal on the flagged line must not suppress.
    src = 'assert validate("ok # noqa: RR005")\n'
    assert codes(lint(src, select="RR005")) == ["RR005"]
    blanket = 'assert validate("ok # noqa")\n'
    assert codes(lint(blanket, select="RR005")) == ["RR005"]
    # ... while a real trailing comment on the same line still works.
    mixed = 'assert validate("ok # noqa")  # noqa: RR005\n'
    assert lint(mixed, select="RR005") == []


def test_baseline_partition_is_line_insensitive(tmp_path):
    violations = lint("import pickle\n", select="RR003")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, violations)
    # Same violation on a different line still matches the baseline.
    shifted = lint("\n\nimport pickle\n", select="RR003")
    new, baselined, stale = load_baseline(baseline_file).partition(shifted)
    assert new == [] and len(baselined) == 1 and stale == 0
    # A clean run reports the baseline entry as stale.
    new, baselined, stale = load_baseline(baseline_file).partition([])
    assert new == [] and baselined == [] and stale == 1


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------


def test_cli_exit_codes_and_json_report(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x: int = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import pickle\n")
    baseline = tmp_path / "baseline.json"

    assert main([str(clean), "--baseline", str(baseline)]) == 0
    assert main([str(dirty), "--baseline", str(baseline)]) == 1
    capsys.readouterr()

    code = main(
        [str(dirty), "--baseline", str(baseline), "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["files_checked"] == 1
    assert [v["rule"] for v in payload["violations"]] == ["RR003"]
    assert {r["id"] for r in payload["rules"]} == set(RULES_BY_ID)

    # Adopting the baseline turns the same tree green.
    assert main([str(dirty), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([str(dirty), "--baseline", str(baseline)]) == 0

    assert main(["--select", "RRXXX", str(clean)]) == 2
    assert main([str(tmp_path / "missing_dir")]) == 2


def test_cli_select_rejects_empty_list_and_accepts_lowercase(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import pickle\n")
    baseline = str(tmp_path / "baseline.json")

    # An all-separator selection is an error, not "run everything".
    assert main(["--select", ",,", str(dirty)]) == 2
    assert main(["--select", " , ", str(dirty)]) == 2
    assert "empty rule list" in capsys.readouterr().err

    # Codes are case-insensitive and comma lists may carry spaces.
    assert main(["--select", "rr003", str(dirty), "--baseline", baseline]) == 1
    code = main(
        ["--select", "rr001, RR003", str(dirty), "--baseline", baseline]
    )
    assert code == 1


def test_cli_warm_ast_cache_skips_reparsing(tmp_path, capsys):
    from repro.analysis.project import AstCache, Project

    target = tmp_path / "mod.py"
    target.write_text("x: int = 1\n")
    cache = AstCache(tmp_path / "cache")

    project, errors = Project.load([str(target)], cache)
    assert errors == []
    assert project.stats["parsed"] == 1 and project.stats["cache_hits"] == 0

    warm = AstCache(tmp_path / "cache")
    project, errors = Project.load([str(target)], warm)
    assert errors == []
    assert project.stats["cache_hits"] > 0
    assert project.stats["parsed"] == 0

    # Editing the file invalidates its entry: it is re-parsed, not served
    # stale from the cache.
    target.write_text("x: int = 2\ny: int = 3\n")
    stale = AstCache(tmp_path / "cache")
    project, errors = Project.load([str(target)], stale)
    assert errors == []
    assert project.stats["parsed"] == 1 and project.stats["cache_hits"] == 0

    # The CLI surfaces the same counters in the JSON report.
    code = main(
        [
            str(target),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--format",
            "json",
            "--baseline",
            str(tmp_path / "baseline.json"),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["cache"] == {"parsed": 0, "hits": 1}


def test_worker_reachable_exceptions_round_trip_pickle():
    """RR010's premise, checked for real: every project exception type
    reachable from a process-pool submission target must survive the
    pickle round trip a crashed worker would put it through."""
    import pickle

    from repro.analysis.project import Project

    project, errors = Project.load([str(REPO_ROOT / "src")])
    assert errors == []
    checked = 0
    for sub in project.submissions():
        if sub.pool_kind != "process" or sub.target is None:
            continue
        for exc_module, exc_name in project.raise_set(*sub.target):
            if exc_module not in project.modules:
                continue
            mod = __import__(exc_module, fromlist=[exc_name])
            cls = getattr(mod, exc_name, None)
            if cls is None or not isinstance(cls, type):
                continue
            try:
                instance = cls("boom")
            except TypeError:
                instance = cls("boom", kind="self-check")
            clone = pickle.loads(pickle.dumps(instance))
            assert type(clone) is cls
            checked += 1
    assert checked > 0, "expected at least one worker-reachable exception"


def test_cli_reports_parse_errors_as_failures(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken), "--baseline", str(tmp_path / "b.json")]) == 1
    assert "parse error" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Self-check: the repo holds its own bar
# ---------------------------------------------------------------------------


def test_committed_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / "analysis_baseline.json")
    assert len(baseline) == 0


def test_src_is_violation_free():
    code = main(
        [
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "analysis_baseline.json"),
        ]
    )
    assert code == 0


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_gate():
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            str(REPO_ROOT / "src" / "repro"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
