"""The invariant linter: one good/bad fixture pair per rule, the
suppression/baseline machinery, the CLI contract, and the self-check
that ``src/`` itself is violation-free against the committed (empty)
baseline."""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.analysis import (
    ALL_RULES,
    RULES_BY_ID,
    SourceFile,
    load_baseline,
    main,
    run_source,
    write_baseline,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def lint(text: str, path: str = "pkg/mod.py", select: str | None = None):
    """Run the registry (or one rule) over an in-memory module."""
    rules = [RULES_BY_ID[select]] if select else list(ALL_RULES)
    return run_source(SourceFile(path, text), rules)


def codes(violations) -> list[str]:
    return [v.rule for v in violations]


# ---------------------------------------------------------------------------
# RR001 rng-discipline
# ---------------------------------------------------------------------------


def test_rr001_flags_legacy_module_state_rng():
    bad = "import numpy as np\nx = np.random.rand(3)\n"
    assert codes(lint(bad, select="RR001")) == ["RR001"]


def test_rr001_flags_unseeded_default_rng_outside_rng_module():
    bad = "import numpy as np\ngen = np.random.default_rng(7)\n"
    assert codes(lint(bad, select="RR001")) == ["RR001"]


def test_rr001_good_uses_ensure_rng_and_rng_module_is_exempt():
    good = (
        "from repro.utils.rng import ensure_rng\n"
        "gen = ensure_rng(7)\n"
        "x = gen.standard_normal(3)\n"
    )
    assert lint(good, select="RR001") == []
    # The sanctioned construction site may call default_rng directly.
    sanctioned = "import numpy as np\ngen = np.random.default_rng(s)\n"
    assert lint(sanctioned, path="src/repro/utils/rng.py", select="RR001") == []


def test_rr001_sees_through_import_aliases():
    bad = "from numpy import random as nr\nnr.shuffle(x)\n"
    assert codes(lint(bad, select="RR001")) == ["RR001"]


# ---------------------------------------------------------------------------
# RR002 dtype-contract
# ---------------------------------------------------------------------------


def test_rr002_flags_id_narrowing_outside_sanctioned_site():
    bad = "import numpy as np\nids = raw_ids.astype(np.int32)\n"
    assert codes(lint(bad, select="RR002")) == ["RR002"]


def test_rr002_flags_narrow_fingerprint_dtype_kwarg():
    bad = "import numpy as np\nfps = np.zeros(4, dtype=np.uint32)\n"
    assert codes(lint(bad, select="RR002")) == ["RR002"]


def test_rr002_good_wide_dtypes_and_sanctioned_build():
    good = (
        "import numpy as np\n"
        "ids = raw_ids.astype(np.int64)\n"
        "fps = np.zeros(4, dtype=np.uint64)\n"
    )
    assert lint(good, select="RR002") == []
    sanctioned = (
        "import numpy as np\n"
        "class PackedBackend:\n"
        "    def build(self, tables):\n"
        "        ids = raw_ids.astype(np.int32)\n"
    )
    assert (
        lint(sanctioned, path="src/repro/index/backends.py", select="RR002")
        == []
    )


# ---------------------------------------------------------------------------
# RR003 transport-hygiene
# ---------------------------------------------------------------------------


def test_rr003_flags_pickle_import_outside_transport_layer():
    assert codes(lint("import pickle\n", select="RR003")) == ["RR003"]
    assert codes(
        lint("from multiprocessing import shared_memory\n", select="RR003")
    ) == ["RR003"]


def test_rr003_good_in_serving_and_persistence():
    text = "import pickle\nfrom multiprocessing import shared_memory\n"
    assert lint(text, path="src/repro/serving/sharded.py", select="RR003") == []
    assert (
        lint(text, path="src/repro/index/persistence.py", select="RR003") == []
    )


# ---------------------------------------------------------------------------
# RR004 api-surface
# ---------------------------------------------------------------------------


def test_rr004_flags_drifted_all_and_bare_public_function():
    bad = (
        '__all__ = ["ghost"]\n'
        "def helper(x):\n"
        '    """Doc."""\n'
        "    return x\n"
    )
    found = codes(lint(bad, select="RR004"))
    # ghost is undefined; helper is unexported and unannotated.
    assert found.count("RR004") >= 3


def test_rr004_good_exported_annotated_documented():
    good = (
        '__all__ = ["helper"]\n'
        "def helper(x: int) -> int:\n"
        '    """Doc."""\n'
        "    return x\n"
    )
    assert lint(good, select="RR004") == []


# ---------------------------------------------------------------------------
# RR005 no-assert / no-mutable-default
# ---------------------------------------------------------------------------


def test_rr005_flags_assert_and_mutable_default():
    bad = (
        "def f(xs=[]):\n"
        '    """Doc."""\n'
        "    assert xs\n"
        "    return xs\n"
    )
    assert codes(lint(bad, select="RR005")) == ["RR005", "RR005"]


def test_rr005_good_none_default_and_raise():
    good = (
        "def f(xs=None):\n"
        '    """Doc."""\n'
        "    if not xs:\n"
        '        raise ValueError("empty")\n'
        "    return xs\n"
    )
    assert lint(good, select="RR005") == []


# ---------------------------------------------------------------------------
# RR006 clip-discipline
# ---------------------------------------------------------------------------


def test_rr006_flags_direct_hit_array_slicing():
    bad = "def f(block, budget):\n    return block.hits[:budget]\n"
    assert codes(lint(bad, select="RR006")) == ["RR006"]


def test_rr006_good_inside_clip_batch_hits():
    good = (
        "def clip_batch_hits(block, budget):\n"
        "    return block.hits[:budget]\n"
    )
    assert lint(good, select="RR006") == []


# ---------------------------------------------------------------------------
# RR007 broad-except-discipline
# ---------------------------------------------------------------------------


def test_rr007_flags_silent_broad_handlers():
    bad = (
        "try:\n"
        "    f()\n"
        "except Exception:\n"
        "    pass\n"
        "try:\n"
        "    g()\n"
        "except:\n"
        "    ...\n"
    )
    assert codes(lint(bad, select="RR007")) == ["RR007", "RR007"]


def test_rr007_good_narrow_or_acting_handlers():
    good = (
        "import warnings\n"
        "try:\n"
        "    f()\n"
        "except FileNotFoundError:\n"
        "    pass\n"  # narrow + silent: documents what it expects
        "try:\n"
        "    g()\n"
        "except Exception as exc:\n"
        "    warnings.warn(f'unexpected: {exc!r}')\n"  # broad but acts
    )
    assert lint(good, select="RR007") == []


# ---------------------------------------------------------------------------
# Suppression and baseline machinery
# ---------------------------------------------------------------------------


def test_noqa_blanket_and_coded_suppression():
    assert lint("import pickle  # noqa\n", select="RR003") == []
    assert lint("import pickle  # noqa: RR003\n", select="RR003") == []
    # A noqa for a *different* rule does not suppress.
    assert codes(lint("import pickle  # noqa: RR001\n", select="RR003")) == [
        "RR003"
    ]


def test_baseline_partition_is_line_insensitive(tmp_path):
    violations = lint("import pickle\n", select="RR003")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, violations)
    # Same violation on a different line still matches the baseline.
    shifted = lint("\n\nimport pickle\n", select="RR003")
    new, baselined, stale = load_baseline(baseline_file).partition(shifted)
    assert new == [] and len(baselined) == 1 and stale == 0
    # A clean run reports the baseline entry as stale.
    new, baselined, stale = load_baseline(baseline_file).partition([])
    assert new == [] and baselined == [] and stale == 1


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------


def test_cli_exit_codes_and_json_report(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x: int = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import pickle\n")
    baseline = tmp_path / "baseline.json"

    assert main([str(clean), "--baseline", str(baseline)]) == 0
    assert main([str(dirty), "--baseline", str(baseline)]) == 1
    capsys.readouterr()

    code = main(
        [str(dirty), "--baseline", str(baseline), "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["files_checked"] == 1
    assert [v["rule"] for v in payload["violations"]] == ["RR003"]
    assert {r["id"] for r in payload["rules"]} == set(RULES_BY_ID)

    # Adopting the baseline turns the same tree green.
    assert main([str(dirty), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([str(dirty), "--baseline", str(baseline)]) == 0

    assert main(["--select", "RRXXX", str(clean)]) == 2
    assert main([str(tmp_path / "missing_dir")]) == 2


def test_cli_reports_parse_errors_as_failures(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken), "--baseline", str(tmp_path / "b.json")]) == 1
    assert "parse error" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Self-check: the repo holds its own bar
# ---------------------------------------------------------------------------


def test_committed_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / "analysis_baseline.json")
    assert len(baseline) == 0


def test_src_is_violation_free():
    code = main(
        [
            str(REPO_ROOT / "src"),
            "--baseline",
            str(REPO_ROOT / "analysis_baseline.json"),
        ]
    )
    assert code == 0


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_gate():
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            str(REPO_ROOT / "src" / "repro"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
