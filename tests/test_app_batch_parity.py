"""Differential batch-vs-loop parity suite for the application layers.

The tentpole guarantee of the batch-first API: for every Section 6
application index, ``batch_query(queries)`` is element-for-element
identical to ``[query(q) for q in queries]`` — same reported indices, same
``QueryStats`` (retrieved / unique / tables_probed), same truncation
behavior under the Theorem 6.1 ``8L`` budget — on **both** storage
backends, across ≥3 hash families.  The single-query path is the lazy
streaming reference implementation (the literal theorem procedure); the
batch path is the vectorized searchsorted/gather route; these tests are
what keep them from drifting.

Reported ``proximity`` floats are compared with a tight ``allclose``: a
batched BLAS proximity evaluation may round the last bit differently than
a one-row call (documented on :meth:`AnnulusIndex.batch_query`).
"""

import numpy as np
import pytest

from repro.core.combinators import PoweredFamily
from repro.families.annulus_sphere import AnnulusFamily
from repro.families.bit_sampling import BitSampling
from repro.families.euclidean_lsh import ShiftedGaussianProjection
from repro.families.simhash import SimHash
from repro.families.step import design_step_family
from repro.index.annulus import AnnulusIndex
from repro.index.hyperplane import HyperplaneIndex
from repro.index.range_reporting import RangeReportingIndex
from repro.spaces import euclidean, hamming, sphere

BACKENDS = ["dict", "packed"]
N_POINTS = 220
N_QUERIES = 10


def _inner(q, pts):
    return pts @ q


def _euclid(q, pts):
    return np.linalg.norm(pts - q, axis=1)


def _hamming(q, pts):
    return np.count_nonzero(pts != q, axis=1)


def _queries(points, sampler, seed):
    """Half data points (guaranteed bucket hits for symmetric families),
    half fresh draws (often empty buckets)."""
    fresh = sampler(N_QUERIES // 2, 300 + seed)
    return np.concatenate([points[: N_QUERIES - fresh.shape[0]], fresh])


# ---------------------------------------------------------------------------
# Annulus search: ≥3 families (sphere annulus, shifted Euclidean, SimHash).


ANNULUS_CASES = [
    (
        "annulus-sphere",
        lambda: AnnulusFamily(12, alpha_max=0.35, t=1.5),
        lambda n, rng: sphere.random_points(n, 12, rng=rng),
        (0.2, 0.55),
        _inner,
    ),
    (
        "euclidean-lsh",
        lambda: ShiftedGaussianProjection(8, w=2.0, k=2),
        lambda n, rng: euclidean.random_points(n, 8, rng=rng),
        (2.0, 5.0),
        _euclid,
    ),
    (
        "simhash",
        lambda: PoweredFamily(SimHash(10), 4),
        lambda n, rng: sphere.random_points(n, 10, rng=rng),
        (0.3, 0.9),
        _inner,
    ),
]


def _assert_annulus_equal(single, batched):
    assert single.index == batched.index
    assert single.found == batched.found
    assert single.stats == batched.stats
    assert single.candidates_examined == batched.candidates_examined
    if single.found:
        np.testing.assert_allclose(
            single.proximity, batched.proximity, rtol=1e-9
        )
    else:
        assert np.isnan(single.proximity) and np.isnan(batched.proximity)


class TestAnnulusBatchParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "case", ANNULUS_CASES, ids=[c[0] for c in ANNULUS_CASES]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_batch_matches_loop(self, backend, case, seed):
        _, family_factory, sampler, interval, proximity = case
        points = sampler(N_POINTS, 100 + seed)
        queries = _queries(points, sampler, seed)
        index = AnnulusIndex(
            points, family_factory(), interval, proximity,
            n_tables=12, rng=seed, backend=backend,
        )
        batched = index.batch_query(queries)
        assert len(batched) == queries.shape[0]
        for i in range(queries.shape[0]):
            _assert_annulus_equal(index.query(queries[i]), batched[i])

    @pytest.mark.parametrize(
        "case", ANNULUS_CASES, ids=[c[0] for c in ANNULUS_CASES]
    )
    def test_backends_agree_on_batch(self, case):
        _, family_factory, sampler, interval, proximity = case
        points = sampler(N_POINTS, 42)
        queries = _queries(points, sampler, 42)
        results = {}
        for backend in BACKENDS:
            index = AnnulusIndex(
                points, family_factory(), interval, proximity,
                n_tables=12, rng=7, backend=backend,
            )
            results[backend] = index.batch_query(queries)
        for d_res, p_res in zip(results["dict"], results["packed"]):
            assert d_res.index == p_res.index
            assert d_res.stats == p_res.stats

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tight_budget_truncation_matches(self, backend):
        """budget_factor=1 forces mid-stream truncation; the batch path
        must cut each query's stream at exactly the same hit."""
        points = np.zeros((60, 8), dtype=np.int8)  # worst case: one bucket
        index = AnnulusIndex(
            points,
            BitSampling(8),
            interval=(0.5, 1.0),      # hamming distance 0 is never inside
            proximity=_hamming,
            n_tables=6,
            budget_factor=1.0,        # budget = 6 << 360 available hits
            rng=3,
            backend=backend,
        )
        queries = np.zeros((3, 8), dtype=np.int8)
        batched = index.batch_query(queries)
        for i in range(3):
            single = index.query(queries[i])
            _assert_annulus_equal(single, batched[i])
            assert single.stats.truncated
            assert single.stats.retrieved == index.budget == 6

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_streams(self, backend):
        """Queries whose buckets are all empty: not-found results with
        zero work and tables_probed == L on both paths."""
        rng = np.random.default_rng(0)
        points = sphere.random_points(50, 16, rng=rng)
        index = AnnulusIndex(
            points,
            AnnulusFamily(16, alpha_max=0.4, t=2.5),
            interval=(0.3, 0.5),
            proximity=_inner,
            n_tables=4,
            rng=11,
            backend=backend,
        )
        # Antipodal queries: far outside the annulus, buckets mostly empty.
        queries = -points[:5]
        batched = index.batch_query(queries)
        for i in range(5):
            single = index.query(queries[i])
            _assert_annulus_equal(single, batched[i])
            assert single.stats.tables_probed == 4 or single.found


# ---------------------------------------------------------------------------
# Range reporting: step mixture, classical Euclidean LSH, and bit-sampling.


RANGE_CASES = [
    (
        "step-euclidean",
        lambda: design_step_family(8, r_flat=4.0, level=0.12, n_components=4).family,
        lambda n, rng: euclidean.random_points(n, 8, rng=rng) * 3.0,
        4.0,
        _euclid,
    ),
    (
        "classical-euclidean",
        lambda: PoweredFamily(ShiftedGaussianProjection(8, w=4.0, k=0), 2),
        lambda n, rng: euclidean.random_points(n, 8, rng=rng) * 3.0,
        4.0,
        _euclid,
    ),
    (
        "bit-sampling-hamming",
        lambda: PoweredFamily(BitSampling(24), 3),
        lambda n, rng: hamming.random_points(n, 24, rng=rng),
        6.0,
        _hamming,
    ),
]


class TestRangeReportingBatchParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "case", RANGE_CASES, ids=[c[0] for c in RANGE_CASES]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_batch_matches_loop(self, backend, case, seed):
        _, family_factory, sampler, r_report, distance = case
        points = sampler(N_POINTS, 100 + seed)
        queries = _queries(points, sampler, seed)
        index = RangeReportingIndex(
            points, family_factory(), r_report, distance,
            n_tables=10, rng=seed, backend=backend,
        )
        batched = index.batch_query(queries)
        assert len(batched) == queries.shape[0]
        for i in range(queries.shape[0]):
            single = index.query(queries[i])
            # RangeReport is all-integer: exact dataclass equality.
            assert single == batched[i]
            assert single.retrievals_per_report == batched[i].retrievals_per_report

    @pytest.mark.parametrize(
        "case", RANGE_CASES, ids=[c[0] for c in RANGE_CASES]
    )
    def test_backends_agree_on_batch(self, case):
        _, family_factory, sampler, r_report, distance = case
        points = sampler(N_POINTS, 42)
        queries = _queries(points, sampler, 42)
        results = {}
        for backend in BACKENDS:
            index = RangeReportingIndex(
                points, family_factory(), r_report, distance,
                n_tables=10, rng=7, backend=backend,
            )
            results[backend] = index.batch_query(queries)
        assert results["dict"] == results["packed"]


# ---------------------------------------------------------------------------
# Hyperplane queries delegate to the annulus path.


class TestHyperplaneBatchParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_matches_loop(self, backend):
        pool = sphere.random_points(N_POINTS, 12, rng=5)
        index = HyperplaneIndex(
            pool, alpha=0.3, t=1.4, n_tables=15, rng=6, backend=backend
        )
        queries = sphere.random_points(N_QUERIES, 12, rng=7)
        batched = index.batch_query(queries)
        found_any = False
        for i in range(N_QUERIES):
            single = index.query(queries[i])
            _assert_annulus_equal(single, batched[i])
            if single.found:
                found_any = True
                assert abs(float(pool[single.index] @ queries[i])) <= 0.3 + 1e-12
        assert found_any  # the case must actually exercise the found path

    def test_backends_agree(self):
        pool = sphere.random_points(N_POINTS, 12, rng=8)
        queries = sphere.random_points(N_QUERIES, 12, rng=9)
        per_backend = {}
        for backend in BACKENDS:
            index = HyperplaneIndex(
                pool, alpha=0.3, t=1.4, n_tables=15, rng=10, backend=backend
            )
            per_backend[backend] = index.batch_query(queries)
        for d_res, p_res in zip(per_backend["dict"], per_backend["packed"]):
            assert d_res.index == p_res.index
            assert d_res.stats == p_res.stats
