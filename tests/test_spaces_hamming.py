"""Unit + property tests for repro.spaces.hamming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spaces import hamming


class TestDistances:
    def test_hamming_distance_basic(self):
        x = np.array([[0, 0, 1, 1]])
        y = np.array([[0, 1, 1, 0]])
        assert hamming.hamming_distance(x, y)[0] == 2

    def test_relative_distance(self):
        x = np.array([[0, 0, 1, 1]])
        y = np.array([[1, 1, 0, 0]])
        assert hamming.relative_distance(x, y)[0] == 1.0

    def test_similarity_identity(self):
        x = np.array([[0, 1, 0, 1]])
        assert hamming.similarity(x, x)[0] == 1.0

    def test_similarity_antipodal(self):
        x = np.array([[0, 1]])
        assert hamming.similarity(x, 1 - x)[0] == -1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming.hamming_distance(np.zeros((1, 3)), np.zeros((1, 4)))


class TestConversions:
    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_similarity_relative_roundtrip(self, alpha):
        t = hamming.similarity_to_relative_distance(alpha)
        back = hamming.relative_distance_to_similarity(t)
        assert back == pytest.approx(alpha, abs=1e-12)

    def test_known_values(self):
        assert hamming.similarity_to_relative_distance(1.0) == 0.0
        assert hamming.similarity_to_relative_distance(-1.0) == 1.0
        assert hamming.relative_distance_to_similarity(0.5) == 0.0


class TestSampling:
    def test_random_points_shape_and_binary(self):
        pts = hamming.random_points(50, 16, rng=0)
        assert pts.shape == (50, 16)
        assert set(np.unique(pts)) <= {0, 1}

    def test_alpha_correlated_mean_similarity(self):
        x, y = hamming.alpha_correlated_pairs(4000, 64, alpha=0.5, rng=1)
        mean_sim = float(np.mean(hamming.similarity(x, y)))
        assert mean_sim == pytest.approx(0.5, abs=0.02)

    def test_alpha_one_gives_equal_points(self):
        x, y = hamming.alpha_correlated_pairs(10, 8, alpha=1.0, rng=2)
        np.testing.assert_array_equal(x, y)

    def test_alpha_minus_one_gives_antipodal(self):
        x, y = hamming.alpha_correlated_pairs(10, 8, alpha=-1.0, rng=3)
        np.testing.assert_array_equal(y, 1 - x)

    def test_alpha_out_of_range_raises(self):
        with pytest.raises(ValueError):
            hamming.alpha_correlated_pairs(1, 4, alpha=1.5)

    @pytest.mark.parametrize("r", [0, 3, 8])
    def test_pairs_at_distance_exact(self, r):
        x, y = hamming.pairs_at_distance(25, 8, r, rng=4)
        np.testing.assert_array_equal(hamming.hamming_distance(x, y), r)

    def test_pairs_at_distance_out_of_range(self):
        with pytest.raises(ValueError):
            hamming.pairs_at_distance(1, 4, 5)

    def test_flip_bits_exact_count(self):
        x = hamming.random_points(10, 12, rng=5)
        y = hamming.flip_bits(x, 4, rng=6)
        np.testing.assert_array_equal(hamming.hamming_distance(x, y), 4)


class TestSignEncoding:
    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30)
    def test_roundtrip(self, d, seed):
        x = hamming.random_points(5, d, rng=seed)
        np.testing.assert_array_equal(hamming.from_signs(hamming.to_signs(x)), x)

    def test_sign_inner_product_equals_similarity(self):
        x, y = hamming.pairs_at_distance(20, 10, 3, rng=7)
        sx, sy = hamming.to_signs(x), hamming.to_signs(y)
        ip = np.einsum("ij,ij->i", sx, sy) / 10
        np.testing.assert_allclose(ip, hamming.similarity(x, y))
