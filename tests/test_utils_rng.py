"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


def test_ensure_rng_from_none_returns_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(123).integers(0, 1000, size=5)
    b = ensure_rng(123).integers(0, 1000, size=5)
    np.testing.assert_array_equal(a, b)


def test_ensure_rng_passes_generator_through():
    rng = np.random.default_rng(0)
    assert ensure_rng(rng) is rng


def test_spawn_rngs_count_and_independence():
    rng = ensure_rng(7)
    children = spawn_rngs(rng, 3)
    assert len(children) == 3
    draws = [c.integers(0, 2**31) for c in children]
    assert len(set(draws)) == 3


def test_spawn_rngs_deterministic_given_parent_seed():
    a = [c.integers(0, 2**31) for c in spawn_rngs(ensure_rng(9), 4)]
    b = [c.integers(0, 2**31) for c in spawn_rngs(ensure_rng(9), 4)]
    assert a == b


def test_spawn_rngs_zero_children():
    assert spawn_rngs(ensure_rng(1), 0) == []


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(ensure_rng(1), -1)
