"""Tests for Lemma 1.4 combinators: concatenation, powering, mixtures,
point transforms.  The key checks compare *measured* collision rates of
combined families against the composed analytic CPFs."""

import numpy as np
import pytest

from repro.core.combinators import (
    ConcatenatedFamily,
    MixtureFamily,
    PoweredFamily,
    TransformedFamily,
    negate_queries,
)
from repro.core.estimate import estimate_collision_probability
from repro.families.bit_sampling import (
    AntiBitSampling,
    BitSampling,
    ConstantCollisionFamily,
    scaled_anti_bit_sampling,
    scaled_bit_sampling,
)
from repro.spaces import hamming

D = 32


def _sampler_at(r: int):
    def sampler(n, rng):
        return hamming.pairs_at_distance(n, D, r, rng)

    return sampler


class TestConcatenation:
    def test_cpf_is_product(self):
        fam = ConcatenatedFamily([BitSampling(D), AntiBitSampling(D)])
        t = 0.25
        assert fam.cpf(t) == pytest.approx((1 - t) * t)

    def test_measured_collision_matches_product(self):
        fam = ConcatenatedFamily([BitSampling(D), AntiBitSampling(D)])
        r = 8  # relative distance 0.25
        est = estimate_collision_probability(
            fam, _sampler_at(r), n_functions=400, pairs_per_function=100, rng=0
        )
        assert est.contains(float(fam.cpf(r / D)))

    def test_component_stacking(self):
        fam = ConcatenatedFamily([BitSampling(D), BitSampling(D), BitSampling(D)])
        pair = fam.sample(rng=1)
        x = hamming.random_points(5, D, rng=2)
        assert pair.hash_data(x).shape == (5, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConcatenatedFamily([])

    def test_symmetry_propagates(self):
        assert ConcatenatedFamily([BitSampling(D)] * 2).is_symmetric
        assert not ConcatenatedFamily([BitSampling(D), AntiBitSampling(D)]).is_symmetric


class TestPowering:
    def test_cpf_is_power(self):
        fam = PoweredFamily(AntiBitSampling(D), 3)
        assert fam.cpf(0.5) == pytest.approx(0.125)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PoweredFamily(BitSampling(D), 0)

    def test_measured_matches_power(self):
        fam = PoweredFamily(BitSampling(D), 2)
        r = 16
        est = estimate_collision_probability(
            fam, _sampler_at(r), n_functions=400, pairs_per_function=100, rng=3
        )
        assert est.contains(float(fam.cpf(0.5)))


class TestMixture:
    def test_cpf_is_convex_combination(self):
        fam = MixtureFamily([BitSampling(D), AntiBitSampling(D)], [0.3, 0.7])
        t = 0.25
        assert fam.cpf(t) == pytest.approx(0.3 * (1 - t) + 0.7 * t)

    def test_measured_matches_mixture(self):
        fam = MixtureFamily([BitSampling(D), AntiBitSampling(D)], [0.5, 0.5])
        est = estimate_collision_probability(
            fam, _sampler_at(8), n_functions=500, pairs_per_function=100, rng=4
        )
        assert est.contains(float(fam.cpf(0.25)))

    def test_tag_prevents_cross_family_collision(self):
        # Even if both sub-families produce identical raw values, mixtures
        # drawing different indices must not collide.  The tag column is
        # shared between h and g of one sampled pair, so this is about the
        # component layout: tag + inner components.
        fam = MixtureFamily(
            [ConstantCollisionFamily(1.0), ConstantCollisionFamily(1.0)], [0.5, 0.5]
        )
        pair = fam.sample(rng=5)
        x = hamming.random_points(3, D, rng=6)
        comps = pair.hash_data(x)
        assert comps.shape == (3, 2)
        assert comps[0, 0] in (0, 1)

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            MixtureFamily([BitSampling(D)], [0.5])


class TestScaledVariants:
    def test_scaled_bit_sampling_cpf(self):
        fam = scaled_bit_sampling(D, scale=0.6)
        assert fam.cpf(0.5) == pytest.approx(1 - 0.6 * 0.5)

    def test_scaled_anti_bit_sampling_cpf(self):
        fam = scaled_anti_bit_sampling(D, scale=0.4, bias=0.2)
        assert fam.cpf(0.5) == pytest.approx(0.2 + 0.4 * 0.5)

    def test_scaled_anti_requires_valid_mass(self):
        with pytest.raises(ValueError):
            scaled_anti_bit_sampling(D, scale=0.8, bias=0.5)

    def test_measured_scaled_anti(self):
        fam = scaled_anti_bit_sampling(D, scale=0.5, bias=0.25)
        est = estimate_collision_probability(
            fam, _sampler_at(16), n_functions=500, pairs_per_function=100, rng=7
        )
        assert est.contains(float(fam.cpf(0.5)))


class TestTransformedFamily:
    def test_identity_transform_is_noop(self):
        base = BitSampling(D)
        fam = TransformedFamily(base, cpf=base.cpf)
        pair = fam.sample(rng=8)
        x = hamming.random_points(4, D, rng=9)
        assert pair.hash_data(x).shape == (4, 1)
        assert fam.is_symmetric

    def test_negate_queries_breaks_symmetry(self):
        from repro.families.simhash import SimHash

        fam = negate_queries(SimHash(d=6))
        assert not fam.is_symmetric

    def test_query_map_applied(self):
        # Data map that flips all bits should turn bit-sampling collisions
        # at distance 0 into guaranteed non-collisions.
        base = BitSampling(D)
        fam = TransformedFamily(base, data_map=lambda p: 1 - p)
        pair = fam.sample(rng=10)
        x = hamming.random_points(20, D, rng=11)
        assert not np.any(pair.collides(x, x))
