"""Tests for the Theorem 5.2 polynomial Hamming construction."""

import numpy as np
import pytest

from repro.booleancube.noise import exact_probabilistic_cpf
from repro.booleancube.walsh import enumerate_cube
from repro.core.estimate import estimate_collision_probability
from repro.families.polynomial_hamming import (
    build_polynomial_family,
    mixture_polynomial_family,
    paper_delta,
)
from repro.spaces import hamming

D = 48


def _sampler(r):
    def sampler(n, rng):
        return hamming.pairs_at_distance(n, D, r, rng)

    return sampler


def _assert_family_matches_cpf(scheme, rs, rng_base=0):
    for r in rs:
        est = estimate_collision_probability(
            scheme.family,
            _sampler(r),
            n_functions=250,
            pairs_per_function=60,
            rng=rng_base + r,
        )
        expected = float(scheme.cpf(r / D))
        assert est.contains(expected), f"r={r}: {est} vs expected {expected}"


class TestRealRootPolynomials:
    def test_single_negative_root(self):
        # P(t) = t + 0.5, root -0.5: Delta = 2, CPF (t + 0.5)/2.
        scheme = build_polynomial_family([0.5, 1.0], D)
        assert scheme.delta == pytest.approx(2.0)
        _assert_family_matches_cpf(scheme, [0, 12, 24, 48])

    def test_single_positive_root(self):
        # P(t) = 2 - t, root 2: Delta = 2, CPF 1 - t/2.
        scheme = build_polynomial_family([2.0, -1.0], D)
        assert scheme.delta == pytest.approx(2.0)
        _assert_family_matches_cpf(scheme, [0, 24, 48], rng_base=100)

    def test_zero_root_gives_anti_bit_sampling(self):
        # P(t) = t.
        scheme = build_polynomial_family([0.0, 1.0], D)
        assert scheme.delta == pytest.approx(1.0)
        _assert_family_matches_cpf(scheme, [0, 12, 36], rng_base=200)

    def test_quadratic_mixed_roots(self):
        # P(t) = (t + 0.5)(2 - t): roots -0.5 and 2.
        scheme = build_polynomial_family([1.0, 1.5, -1.0], D)
        assert scheme.delta == pytest.approx(4.0)
        _assert_family_matches_cpf(scheme, [0, 24, 48], rng_base=300)

    def test_large_negative_root_scaling(self):
        # P(t) = t + 3: |z| = 3 > 1 so Delta = 2 * 3 = 6.
        scheme = build_polynomial_family([3.0, 1.0], D)
        assert scheme.delta == pytest.approx(6.0)
        _assert_family_matches_cpf(scheme, [0, 24, 48], rng_base=400)


class TestComplexRootPolynomials:
    def test_negative_real_part_pair(self):
        # P(t) = t^2 + t + 0.5, roots -0.5 +- 0.5i.
        scheme = build_polynomial_family([0.5, 1.0, 1.0], D)
        assert scheme.delta == pytest.approx(1 + 1 + 0.5)
        _assert_family_matches_cpf(scheme, [0, 24, 48], rng_base=500)

    def test_positive_real_part_pair(self):
        # P(t) = (t - 1.5)^2 + 1 = t^2 - 3t + 3.25, roots 1.5 +- i.
        scheme = build_polynomial_family([3.25, -3.0, 1.0], D)
        assert scheme.delta == pytest.approx(1.5**2 + 1.0)
        _assert_family_matches_cpf(scheme, [0, 24, 48], rng_base=600)

    def test_construction_delta_never_worse_than_paper(self):
        cases = [
            [0.5, 1.0, 1.0],        # complex pair, negative real part
            [3.25, -3.0, 1.0],      # complex pair, real part >= 1
            [1.0, 1.5, -1.0],       # mixed real roots
            [3.0, 1.0],             # real root < -1
            [0.0, 0.5, 0.5],        # zero root + negative real root
        ]
        for coeffs in cases:
            scheme = build_polynomial_family(coeffs, D)
            assert scheme.delta <= scheme.theorem_delta + 1e-9, coeffs


class TestExactVerification:
    def test_exact_cpf_on_small_cube(self):
        """Noise-operator-exact collision probabilities match P(t)/Delta.

        On the full cube the probabilistic CPF at correlation alpha is the
        binomial average of f(k/d); we instead verify pointwise by fixing
        function pairs and comparing against exact distance-conditional
        collision rates computed by brute force.
        """
        d = 6
        scheme = build_polynomial_family([0.5, 1.0], d)  # CPF (t + 1/2)/2
        cube = enumerate_cube(d)
        pairs = scheme.family.sample_pairs(800, rng=7)
        # Exact per-distance collision rate averaged over sampled pairs.
        x = cube[0:1]  # the origin; by symmetry any point works
        rates = np.zeros(d + 1)
        counts = np.zeros(d + 1)
        dist_from_origin = cube.sum(axis=1)
        for pair in pairs:
            hx = pair.hash_data(x)
            gy = pair.hash_query(cube)
            hit = np.all(gy == hx, axis=1)
            for r in range(d + 1):
                mask = dist_from_origin == r
                rates[r] += hit[mask].mean()
                counts[r] += 1
        rates /= counts
        expected = scheme.cpf(np.arange(d + 1) / d)
        np.testing.assert_allclose(rates, expected, atol=0.05)


class TestValidation:
    def test_root_in_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="real part"):
            build_polynomial_family([-0.5, 1.0], D)  # root 0.5

    def test_complex_root_with_real_part_in_interval_rejected(self):
        # roots 0.5 +- 0.5i: P(t) = t^2 - t + 0.5.
        with pytest.raises(ValueError, match="real part"):
            build_polynomial_family([0.5, -1.0, 1.0], D)

    def test_negative_polynomial_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            build_polynomial_family([-1.0, -1.0], D)

    def test_constant_rejected(self):
        with pytest.raises(ValueError, match="degree"):
            build_polynomial_family([0.5], D)

    def test_zero_leading_coefficient_rejected(self):
        with pytest.raises(ValueError, match="leading"):
            build_polynomial_family([0.5, 1.0, 0.0], D)


class TestPaperDelta:
    def test_matches_theorem_formula_by_hand(self):
        # P(t) = t + 3: psi = 1 root with negative real part, |z| = 3 > 1.
        assert paper_delta([3.0, 1.0]) == pytest.approx(1.0 * 2 * 3)
        # P(t) = 2 - t -> a_k = -1, root 2, psi = 0: |a_k| * 2 = 2.
        assert paper_delta([2.0, -1.0]) == pytest.approx(2.0)


class TestMixtureRoute:
    def test_exact_cpf_no_scaling(self):
        fam, cpf = mixture_polynomial_family([0.1, 0.2, 0.3, 0.4], D)
        for r in [0, 24, 48]:
            est = estimate_collision_probability(
                fam, _sampler(r), n_functions=400, pairs_per_function=50, rng=800 + r
            )
            assert est.contains(float(cpf(r / D))), f"r={r}"

    def test_slack_handled(self):
        fam, cpf = mixture_polynomial_family([0.2, 0.3], D)  # sums to 0.5
        est = estimate_collision_probability(
            fam, _sampler(24), n_functions=1200, pairs_per_function=50, rng=901
        )
        assert est.contains(0.2 + 0.3 * 0.5)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            mixture_polynomial_family([0.5, -0.2], D)

    def test_sum_above_one_rejected(self):
        with pytest.raises(ValueError, match="<= 1"):
            mixture_polynomial_family([0.8, 0.5], D)
