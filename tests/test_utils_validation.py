"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_closed_interval,
    check_in_open_interval,
    check_positive,
    check_probability,
    check_unit_vectors,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="p"):
            check_probability(bad, "p")


class TestIntervals:
    def test_closed_accepts_endpoints(self):
        assert check_in_closed_interval(-1.0, -1.0, 1.0, "a") == -1.0
        assert check_in_closed_interval(1.0, -1.0, 1.0, "a") == 1.0

    def test_open_rejects_endpoints(self):
        with pytest.raises(ValueError):
            check_in_open_interval(-1.0, -1.0, 1.0, "a")
        with pytest.raises(ValueError):
            check_in_open_interval(1.0, -1.0, 1.0, "a")

    def test_open_accepts_interior(self):
        assert check_in_open_interval(0.0, -1.0, 1.0, "a") == 0.0


class TestCheckFinite:
    def test_accepts_finite_array(self):
        arr = np.array([1.0, 2.0])
        np.testing.assert_array_equal(check_finite(arr, "arr"), arr)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="arr"):
            check_finite(np.array([1.0, np.nan]), "arr")


class TestCheckUnitVectors:
    def test_accepts_unit_rows(self):
        x = np.array([[1.0, 0.0], [0.0, -1.0]])
        out = check_unit_vectors(x)
        assert out.shape == (2, 2)

    def test_accepts_1d(self):
        out = check_unit_vectors(np.array([0.6, 0.8]))
        assert out.shape == (1, 2)

    def test_rejects_non_unit(self):
        with pytest.raises(ValueError, match="unit"):
            check_unit_vectors(np.array([[2.0, 0.0]]))
