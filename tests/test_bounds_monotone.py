"""Tests for the Theorem 1.3 / Lemma 3.5 / Lemma 3.10 machinery.

These are the paper's central lower bounds; we verify them *exactly* (no
Monte Carlo slack) for every concrete family in the library that lives on
the Hamming cube or embeds into the sphere.
"""

import numpy as np
import pytest

from repro.bounds.monotone import (
    collect_label_pairs,
    forward_bound_curve,
    reverse_bound_curve,
    theorem37_rho_lower_bound,
    theorem38_rho_lower_bound,
    verify_forward_bound,
    verify_reverse_bound,
)
from repro.core.combinators import ConcatenatedFamily, MixtureFamily, PoweredFamily
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.families.filters import GaussianFilterFamily
from repro.families.simhash import SimHash
from repro.spaces.embeddings import hamming_to_sphere

D = 8
ALPHAS = [0.0, 0.25, 0.5, 0.75]


class TestBoundCurves:
    def test_reverse_curve_at_zero_alpha(self):
        assert reverse_bound_curve(0.3, 0.0) == pytest.approx(0.3)

    def test_reverse_curve_decreasing_in_alpha(self):
        curve = reverse_bound_curve(0.3, np.array([0.0, 0.3, 0.6, 0.9]))
        assert np.all(np.diff(curve) < 0)

    def test_forward_curve_increasing_in_alpha(self):
        curve = forward_bound_curve(0.3, np.array([0.0, 0.3, 0.6, 0.9]))
        assert np.all(np.diff(curve) > 0)

    def test_curves_meet_at_zero(self):
        assert reverse_bound_curve(0.2, 0.0) == forward_bound_curve(0.2, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            reverse_bound_curve(0.0, 0.5)
        with pytest.raises(ValueError):
            reverse_bound_curve(0.5, 1.0)
        with pytest.raises(ValueError):
            forward_bound_curve(0.5, -0.1)


class TestAntiBitSamplingSaturatesNothing:
    def test_anti_bit_sampling_satisfies_reverse_bound(self):
        checks = verify_reverse_bound(AntiBitSampling(D), D, ALPHAS, n_pairs=16, rng=0)
        assert all(c.satisfied for c in checks)

    def test_anti_bit_sampling_f_hat_formula(self):
        """f_hat(alpha) = (1-alpha)/2 exactly, comfortably above the bound."""
        checks = verify_reverse_bound(AntiBitSampling(D), D, ALPHAS, n_pairs=16, rng=1)
        for c in checks:
            assert c.f_hat == pytest.approx((1 - c.alpha) / 2, abs=1e-9)
            assert c.f_hat >= c.bound - 1e-9


class TestReverseBoundAcrossFamilies:
    """Theorem 1.3 must hold for every family; exact verification."""

    @pytest.mark.parametrize(
        "name,family,point_map",
        [
            ("bit-sampling", BitSampling(D), None),
            ("anti-bit-sampling", AntiBitSampling(D), None),
            ("anti^2", PoweredFamily(AntiBitSampling(D), 2), None),
            (
                "mixture",
                MixtureFamily([BitSampling(D), AntiBitSampling(D)], [0.5, 0.5]),
                None,
            ),
            (
                "concat bit+anti",
                ConcatenatedFamily([BitSampling(D), AntiBitSampling(D)]),
                None,
            ),
            ("simhash-on-cube", SimHash(D), hamming_to_sphere),
            (
                "filter D- on cube",
                GaussianFilterFamily(D, t=1.0, m=64, negated=True),
                hamming_to_sphere,
            ),
            (
                "filter D+ on cube",
                GaussianFilterFamily(D, t=1.0, m=64, negated=False),
                hamming_to_sphere,
            ),
        ],
    )
    def test_reverse_bound_holds(self, name, family, point_map):
        checks = verify_reverse_bound(
            family, D, ALPHAS, n_pairs=12, rng=42, point_map=point_map
        )
        for c in checks:
            assert c.satisfied, f"{name} violates Lemma 3.5 at alpha={c.alpha}: " \
                f"f_hat={c.f_hat} < bound={c.bound}"


class TestForwardBoundAcrossFamilies:
    """Lemma 3.10: no family's CPF grows faster than f(0)^{(1-a)/(1+a)}."""

    @pytest.mark.parametrize(
        "name,family,point_map",
        [
            ("bit-sampling", BitSampling(D), None),
            ("anti-bit-sampling", AntiBitSampling(D), None),
            ("simhash-on-cube", SimHash(D), hamming_to_sphere),
            (
                "filter D+ on cube",
                GaussianFilterFamily(D, t=1.0, m=64, negated=False),
                hamming_to_sphere,
            ),
        ],
    )
    def test_forward_bound_holds(self, name, family, point_map):
        checks = verify_forward_bound(
            family, D, ALPHAS, n_pairs=12, rng=7, point_map=point_map
        )
        for c in checks:
            assert c.satisfied, f"{name} violates Lemma 3.10 at alpha={c.alpha}: " \
                f"f_hat={c.f_hat} > bound={c.bound}"


class TestNearTightness:
    def test_filter_dminus_close_to_reverse_bound(self):
        """Theorem 1.2's construction approaches the Lemma 3.5 floor: the
        log-ratio ln f_hat(a) / ln bound(a) is within a modest factor."""
        family = GaussianFilterFamily(D, t=1.5, m=256, negated=True)
        checks = verify_reverse_bound(
            family, D, [0.5], n_pairs=24, rng=11, point_map=hamming_to_sphere
        )
        c = checks[0]
        ratio = np.log(c.f_hat) / np.log(c.bound)
        assert 0.3 < ratio <= 1.0  # 1.0 would be exactly tight


class TestRhoBounds:
    def test_theorem38_shape(self):
        assert theorem38_rho_lower_bound(2.0) == pytest.approx(1 / 3)
        assert theorem38_rho_lower_bound(3.0) == pytest.approx(1 / 5)
        with pytest.raises(ValueError):
            theorem38_rho_lower_bound(1.0)

    def test_theorem37_leading_term(self):
        # At alpha_- = 0 the bound reduces to (1 - a_+)/(1 + a_+).
        got = theorem37_rho_lower_bound(0.0, 0.5)
        assert got == pytest.approx((1 - 0.5) / (1 + 0.5))

    def test_theorem37_correction_reduces_bound(self):
        base = theorem37_rho_lower_bound(0.1, 0.5)
        corrected = theorem37_rho_lower_bound(0.1, 0.5, f_plus=0.01, d=100)
        assert corrected < base

    def test_theorem37_validation(self):
        with pytest.raises(ValueError):
            theorem37_rho_lower_bound(0.5, 0.5)


class TestCollectLabelPairs:
    def test_shapes_and_types(self):
        pairs = collect_label_pairs(BitSampling(D), D, n_pairs=3, rng=0)
        assert len(pairs) == 3
        for h, g in pairs:
            assert h.shape == (2**D,) and g.shape == (2**D,)
            assert h.dtype == np.int64

    def test_multi_component_families_collapse_consistently(self):
        fam = ConcatenatedFamily([BitSampling(D), BitSampling(D)])
        pairs = collect_label_pairs(fam, D, n_pairs=2, rng=1)
        for h, g in pairs:
            # Symmetric family: labels must agree pointwise.
            np.testing.assert_array_equal(h, g)
