"""Property-based tests (hypothesis) for core invariants.

These complement the example-based tests with randomized laws: CPF algebra
(Lemma 1.4), the universal Theorem 1.3 inequality for arbitrary random
label functions, hash component conventions, and transform round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleancube.noise import correlated_collision_probability
from repro.booleancube.sets import correlated_pair_probability, volume
from repro.booleancube.walsh import enumerate_cube
from repro.bounds.sse import reverse_sse_lower_bound
from repro.core.cpf import ConstantCPF, MixtureCPF, PowerCPF, ProductCPF
from repro.core.family import as_components, rows_equal, rows_to_keys

probabilities = st.floats(min_value=0.0, max_value=1.0)
small_dims = st.integers(min_value=2, max_value=6)


class TestCpfAlgebraLaws:
    @given(st.lists(probabilities, min_size=1, max_size=5), probabilities)
    @settings(max_examples=60)
    def test_product_is_commutative_and_bounded(self, ps, t):
        f = ProductCPF([ConstantCPF(p) for p in ps])
        g = ProductCPF([ConstantCPF(p) for p in reversed(ps)])
        assert f(t) == pytest.approx(g(t))
        assert 0.0 <= f(t) <= min(ps) + 1e-12

    @given(st.lists(probabilities, min_size=2, max_size=5), probabilities)
    @settings(max_examples=60)
    def test_mixture_between_extremes(self, ps, t):
        weights = np.full(len(ps), 1.0 / len(ps))
        f = MixtureCPF([ConstantCPF(p) for p in ps], weights)
        assert min(ps) - 1e-12 <= f(t) <= max(ps) + 1e-12

    @given(probabilities, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_power_of_product_consistency(self, p, k):
        """(f^k) == product of k copies (Lemma 1.4(a) special case)."""
        f_pow = PowerCPF(ConstantCPF(p), k)
        f_prod = ProductCPF([ConstantCPF(p)] * k)
        assert f_pow(0.5) == pytest.approx(f_prod(0.5))

    @given(probabilities, probabilities, probabilities)
    @settings(max_examples=60)
    def test_mixture_distributes_over_product_bound(self, p, q, t):
        """mixture(fg, fh) <= f * mixture(g, h)-style monotonicity, here in
        the simplest constant form: mix of products <= product of maxes."""
        lhs = MixtureCPF(
            [ProductCPF([ConstantCPF(p), ConstantCPF(q)]), ConstantCPF(p)],
            [0.5, 0.5],
        )
        assert lhs(t) <= p + 1e-12


class TestUniversalLowerBound:
    """Theorem 1.3 holds for *arbitrary* pairs of label functions — we
    hammer it with random ones (the strongest property in the paper)."""

    @given(
        small_dims,
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_label_functions_obey_theorem13(self, d, n_labels, seed, alpha):
        rng = np.random.default_rng(seed)
        h = rng.integers(0, n_labels, size=2**d)
        g = rng.integers(0, n_labels, size=2**d)
        f0 = correlated_collision_probability(h, g, 0.0)
        fa = correlated_collision_probability(h, g, alpha)
        if f0 <= 0.0:
            return  # vacuous
        assert fa >= f0 ** ((1 + alpha) / (1 - alpha)) - 1e-9

    @given(
        small_dims,
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_sets_obey_reverse_sse(self, d, seed, alpha):
        rng = np.random.default_rng(seed)
        a = (rng.random(2**d) < rng.uniform(0.1, 0.9)).astype(float)
        b = (rng.random(2**d) < rng.uniform(0.1, 0.9)).astype(float)
        if volume(a) == 0 or volume(b) == 0:
            return
        exact = correlated_pair_probability(a, b, alpha)
        bound = reverse_sse_lower_bound(volume(a), volume(b), alpha)
        assert exact >= bound - 1e-9


class TestComponentConventions:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40)
    def test_keys_agree_with_rows_equal(self, n, c, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-5, 5, size=(n, c))
        b = rng.integers(-5, 5, size=(n, c))
        keys_a, keys_b = rows_to_keys(a), rows_to_keys(b)
        equal = rows_equal(a, b)
        for i in range(n):
            assert (keys_a[i] == keys_b[i]) == bool(equal[i])

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_as_components_idempotent(self, n, seed):
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, 100, size=n)
        once = as_components(raw)
        twice = as_components(once)
        np.testing.assert_array_equal(once, twice)


class TestNoiseOperatorLaws:
    @given(small_dims, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_symmetric_pair_collision_is_one_at_alpha_one(self, d, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=2**d)
        assert correlated_collision_probability(labels, labels, 1.0) == (
            pytest.approx(1.0)
        )

    @given(
        small_dims,
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_collision_probability_in_unit_interval(self, d, seed, alpha):
        rng = np.random.default_rng(seed)
        h = rng.integers(0, 4, size=2**d)
        g = rng.integers(0, 4, size=2**d)
        p = correlated_collision_probability(h, g, alpha)
        assert -1e-9 <= p <= 1.0 + 1e-9

    @given(small_dims, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_alpha_zero_factorizes(self, d, seed):
        """At independence the collision probability is sum of products of
        label marginals."""
        rng = np.random.default_rng(seed)
        h = rng.integers(0, 3, size=2**d)
        g = rng.integers(0, 3, size=2**d)
        got = correlated_collision_probability(h, g, 0.0)
        expected = sum(
            np.mean(h == label) * np.mean(g == label) for label in range(3)
        )
        assert got == pytest.approx(expected)
