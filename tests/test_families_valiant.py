"""Tests for the Theorem 5.1 polynomial sphere family (Figure 4)."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability
from repro.families.valiant import PolynomialSphereFamily, polynomial_sphere_cpf
from repro.spaces import sphere

D = 4


def _sampler(alpha):
    def sampler(n, rng):
        return sphere.pairs_at_inner_product(n, D, alpha, rng)

    return sampler


# Selected Figure 4 polynomials (normalized as in the paper).
T_SQUARED = [0.0, 0.0, 1.0]
NEG_T_SQUARED = [0.0, 0.0, -1.0]
CHEBYSHEV2 = [-1 / 3, 0.0, 2 / 3]         # (2t^2 - 1)/3
CUBIC_MIX = [0.0, -1 / 3, 1 / 3, -1 / 3]  # (-t^3 + t^2 - t)/3


class TestComposedCpf:
    def test_t_squared_symmetric_in_alpha(self):
        cpf = polynomial_sphere_cpf(T_SQUARED)
        assert cpf(0.5) == pytest.approx(cpf(-0.5))
        # sim(0.25) = 1 - arccos(0.25)/pi.
        assert cpf(0.5) == pytest.approx(1 - np.arccos(0.25) / np.pi)

    def test_negated_polynomial_flips_shape(self):
        plus = polynomial_sphere_cpf(T_SQUARED)
        minus = polynomial_sphere_cpf(NEG_T_SQUARED)
        # sim is antisymmetric around 1/2: sim(-x) = 1 - sim(x).
        assert plus(0.8) + minus(0.8) == pytest.approx(1.0)

    def test_requires_similarity_kind(self):
        from repro.core.cpf import BitSamplingCPF

        with pytest.raises(ValueError, match="similarity"):
            polynomial_sphere_cpf(T_SQUARED, BitSamplingCPF())


class TestPolynomialSphereFamily:
    @pytest.mark.parametrize(
        "coeffs,alpha",
        [
            (T_SQUARED, 0.6),
            (T_SQUARED, -0.6),
            (NEG_T_SQUARED, 0.5),
            (CHEBYSHEV2, 0.0),
            (CHEBYSHEV2, 0.8),
            (CUBIC_MIX, -0.7),
        ],
    )
    def test_measured_cpf_is_sim_of_polynomial(self, coeffs, alpha):
        fam = PolynomialSphereFamily(coeffs, D)
        est = estimate_collision_probability(
            fam, _sampler(alpha), n_functions=200, pairs_per_function=80, rng=3
        )
        expected = float(polynomial_sphere_cpf(coeffs)(alpha))
        assert est.contains(expected), f"{est} vs {expected}"

    def test_unimodal_cpf_from_negative_square(self):
        """-t^2 gives a CPF peaked at alpha = 0 — 'close but not too close'."""
        cpf = PolynomialSphereFamily(NEG_T_SQUARED, D).cpf
        alphas = np.linspace(-0.9, 0.9, 19)
        values = cpf(alphas)
        peak = int(np.argmax(values))
        assert abs(alphas[peak]) < 0.15
        assert values[peak] == pytest.approx(0.5, abs=0.01)

    def test_sketched_family_approximates_exact(self):
        exact_fam = PolynomialSphereFamily(CHEBYSHEV2, 6)
        sketch_fam = PolynomialSphereFamily(CHEBYSHEV2, 6, sketch_dim=2048, rng=5)
        alpha = 0.4
        exact_est = estimate_collision_probability(
            exact_fam, lambda n, rng: sphere.pairs_at_inner_product(n, 6, alpha, rng),
            n_functions=200, pairs_per_function=60, rng=6,
        )
        sketch_est = estimate_collision_probability(
            sketch_fam, lambda n, rng: sphere.pairs_at_inner_product(n, 6, alpha, rng),
            n_functions=200, pairs_per_function=60, rng=7,
        )
        assert sketch_est.p_hat == pytest.approx(exact_est.p_hat, abs=0.04)

    def test_rejects_unnormalized_polynomial(self):
        with pytest.raises(ValueError, match="sum"):
            PolynomialSphereFamily([0.9, 0.9], D)

    def test_cpf_exposed(self):
        fam = PolynomialSphereFamily(T_SQUARED, D)
        assert fam.cpf.arg_kind == "similarity"
