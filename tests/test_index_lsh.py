"""Tests for the generic asymmetric hashing index."""

import numpy as np
import pytest

from repro.core.combinators import PoweredFamily
from repro.families.bit_sampling import BitSampling
from repro.families.simhash import SimHash
from repro.index.lsh_index import DSHIndex
from repro.spaces import hamming, sphere


class TestBuildAndQuery:
    def test_exact_duplicate_always_retrieved_by_symmetric_family(self):
        pts = hamming.random_points(200, 16, rng=0)
        index = DSHIndex(BitSampling(16), n_tables=5, rng=1).build(pts)
        for i in [0, 57, 199]:
            candidates, stats = index.query(pts[i])
            assert i in candidates
            assert stats.tables_probed == 5

    def test_unbuilt_index_raises(self):
        index = DSHIndex(BitSampling(8), n_tables=2, rng=0)
        with pytest.raises(RuntimeError, match="build"):
            index.query(np.zeros(8, dtype=np.int8))

    def test_retrieval_rate_matches_cpf(self):
        """Per-table retrieval probability of a point at distance r is f(r)."""
        d, r, L = 32, 8, 400
        fam = BitSampling(d)
        x, y = hamming.pairs_at_distance(1, d, r, rng=2)
        index = DSHIndex(fam, n_tables=L, rng=3).build(x)
        _, stats = index.query(y[0])
        rate = stats.retrieved / L
        assert rate == pytest.approx(1 - r / d, abs=0.09)

    def test_powered_family_reduces_collisions(self):
        d, r, L = 32, 8, 300
        x, y = hamming.pairs_at_distance(1, d, r, rng=4)
        base_rate_index = DSHIndex(BitSampling(d), n_tables=L, rng=5).build(x)
        powered_index = DSHIndex(
            PoweredFamily(BitSampling(d), 4), n_tables=L, rng=6
        ).build(x)
        _, base_stats = base_rate_index.query(y[0])
        _, pow_stats = powered_index.query(y[0])
        assert pow_stats.retrieved < base_stats.retrieved

    def test_stats_duplicates(self):
        pts = np.zeros((3, 8), dtype=np.int8)  # identical points
        index = DSHIndex(BitSampling(8), n_tables=4, rng=7).build(pts)
        candidates, stats = index.query(pts[0])
        assert stats.retrieved == 12  # 3 points x 4 tables
        assert stats.unique_candidates == 3
        assert stats.duplicates == 9

    def test_max_retrieved_truncates(self):
        pts = np.zeros((50, 8), dtype=np.int8)
        index = DSHIndex(BitSampling(8), n_tables=10, rng=8).build(pts)
        _, stats = index.query(pts[0], max_retrieved=60)
        assert stats.truncated
        assert stats.tables_probed < 10

    def test_iter_candidates_streams_with_duplicates(self):
        pts = np.zeros((2, 8), dtype=np.int8)
        index = DSHIndex(BitSampling(8), n_tables=3, rng=9).build(pts)
        hits = list(index.iter_candidates(pts[0]))
        assert len(hits) == 6  # 2 points x 3 tables, duplicates preserved
        tables = {t for _, t in hits}
        assert tables == {0, 1, 2}

    def test_single_query_point_enforced(self):
        pts = sphere.random_points(10, 6, rng=10)
        index = DSHIndex(SimHash(6), n_tables=2, rng=11).build(pts)
        with pytest.raises(ValueError, match="single point"):
            index.query(pts[:2])

    def test_invalid_table_count(self):
        with pytest.raises(ValueError):
            DSHIndex(BitSampling(8), n_tables=0)

    def test_bucket_sizes_cover_all_points(self):
        pts = sphere.random_points(64, 6, rng=12)
        index = DSHIndex(SimHash(6), n_tables=3, rng=13).build(pts)
        assert sum(index.bucket_sizes()) == 64 * 3
        assert index.n_points == 64
