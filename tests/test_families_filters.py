"""Tests for the Gaussian filter families D+/D- (Section 2.2, Thm 1.2)."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability
from repro.families.filters import (
    GaussianFilterCPF,
    GaussianFilterFamily,
    cpf_lower_bound,
    cpf_upper_bound,
    default_num_projections,
    filter_collision_probability,
    joint_tail_probability,
    szarek_werner_lower_bound,
    theorem12_log_inv_cpf,
)
from repro.spaces import sphere
from scipy.stats import norm

D = 10


def _sampler(alpha):
    def sampler(n, rng):
        return sphere.pairs_at_inner_product(n, D, alpha, rng)

    return sampler


class TestTailMath:
    def test_szarek_werner_is_lower_bound(self):
        for t in [0.5, 1.0, 2.0, 3.0]:
            assert szarek_werner_lower_bound(t) <= norm.sf(t)

    def test_default_m_scaling(self):
        # m = O(t^4 e^{t^2/2}) grows steeply with t.
        assert default_num_projections(1.0) < default_num_projections(2.0)
        assert default_num_projections(2.0) < default_num_projections(3.0)

    def test_joint_tail_limits(self):
        t = 1.5
        assert joint_tail_probability(1.0, t) == pytest.approx(norm.sf(t))
        assert joint_tail_probability(-1.0, t) == 0.0
        # Independence at alpha = 0.
        assert joint_tail_probability(0.0, t) == pytest.approx(norm.sf(t) ** 2)

    def test_joint_tail_monotone_in_alpha(self):
        t = 2.0
        vals = [joint_tail_probability(a, t) for a in [-0.5, 0.0, 0.5, 0.9]]
        assert all(v1 < v2 for v1, v2 in zip(vals, vals[1:]))


class TestAnalyticCpf:
    def test_dplus_increasing_dminus_decreasing(self):
        t = 2.0
        alphas = np.linspace(-0.7, 0.7, 8)
        plus = GaussianFilterCPF(t, negated=False)(alphas)
        minus = GaussianFilterCPF(t, negated=True)(alphas)
        assert np.all(np.diff(plus) > 0)
        assert np.all(np.diff(minus) < 0)

    def test_lemma_a1_mirror(self):
        """f_+(alpha) = f_-(-alpha) exactly."""
        t = 1.8
        for alpha in [-0.5, 0.0, 0.3]:
            assert filter_collision_probability(alpha, t, negated=False) == (
                pytest.approx(filter_collision_probability(-alpha, t, negated=True))
            )

    def test_lemma_a5_bounds_bracket_cpf(self):
        t = 2.5
        m = default_num_projections(t)
        for alpha in [-0.4, 0.0, 0.4]:
            f = filter_collision_probability(alpha, t, m)
            assert f <= cpf_upper_bound(alpha, t) + 1e-12
            assert f >= cpf_lower_bound(alpha, t) - 1e-12

    def test_theorem12_leading_term_dominates(self):
        """ln(1/f) / (t^2/2) converges to (1+alpha)/(1-alpha) for D-."""
        alpha = 0.3
        target = (1 + alpha) / (1 - alpha)
        ratios = []
        for t in [2.0, 3.0, 4.0]:
            f = filter_collision_probability(alpha, t, negated=True)
            ratios.append(np.log(1 / f) / (t**2 / 2))
        errors = [abs(r - target) for r in ratios]
        assert errors[-1] < errors[0]  # Theta(log t)/t^2 correction shrinks
        assert theorem12_log_inv_cpf(alpha, 4.0) == pytest.approx(
            target * 16 / 2
        )


class TestFamilyMeasurement:
    @pytest.mark.parametrize("negated", [False, True])
    @pytest.mark.parametrize("alpha", [-0.4, 0.0, 0.5])
    def test_measured_cpf_matches_analytic(self, negated, alpha):
        t = 1.5
        fam = GaussianFilterFamily(D, t=t, negated=negated)
        est = estimate_collision_probability(
            fam, _sampler(alpha), n_functions=150, pairs_per_function=100, rng=1
        )
        expected = filter_collision_probability(alpha, t, fam.m, negated)
        assert est.contains(expected), f"{est} vs {expected}"

    def test_small_m_override(self):
        fam = GaussianFilterFamily(D, t=1.0, m=5)
        est = estimate_collision_probability(
            fam, _sampler(0.5), n_functions=200, pairs_per_function=80, rng=2
        )
        expected = filter_collision_probability(0.5, 1.0, 5)
        assert est.contains(expected)

    def test_uncaptured_points_never_collide(self):
        # With m=1 many points miss the single cap; sentinels must differ.
        fam = GaussianFilterFamily(D, t=3.0, m=1)
        pair = fam.sample(rng=3)
        x = sphere.random_points(300, D, rng=4)
        h = pair.hash_data(x)[:, 0]
        g = pair.hash_query(x)[:, 0]
        uncaptured = (h == fam.m + 1) & (g == fam.m + 2)
        assert np.count_nonzero(uncaptured) > 250  # most points miss the cap
        assert not np.any(h[h == fam.m + 1] == g[h == fam.m + 1])

    def test_chunked_evaluation_consistency(self):
        """First-hit indices are identical regardless of how many points are
        evaluated together (chunk regeneration must be deterministic)."""
        fam = GaussianFilterFamily(D, t=1.2)
        pair = fam.sample(rng=5)
        x = sphere.random_points(64, D, rng=6)
        together = pair.hash_data(x)
        one_by_one = np.vstack([pair.hash_data(x[i : i + 1]) for i in range(64)])
        np.testing.assert_array_equal(together, one_by_one)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianFilterFamily(0, t=1.0)
        with pytest.raises(ValueError):
            GaussianFilterFamily(D, t=-1.0)
        with pytest.raises(ValueError):
            GaussianFilterFamily(D, t=1.0, m=0)
