"""Integration tests: full stacks of family + combinator + index + workload.

Each test exercises a pipeline the paper composes implicitly — e.g. the
negation trick applied to SimHash, the Theorem 5.2 family satisfying the
Theorem 1.3 bound, or the annulus index built from the equation-(2) family.
"""

import numpy as np
import pytest

from repro.bounds.monotone import verify_forward_bound, verify_reverse_bound
from repro.core.combinators import PoweredFamily, negate_queries
from repro.core.cpf import LambdaCPF
from repro.core.estimate import estimate_collision_probability
from repro.core.rho import check_decreasingly_sensitive
from repro.families.bit_sampling import AntiBitSampling
from repro.families.polynomial_hamming import build_polynomial_family
from repro.families.simhash import SimHash
from repro.families.step import design_step_family
from repro.index.lsh_index import DSHIndex
from repro.index.range_reporting import RangeReportingIndex
from repro.data.synthetic import planted_euclidean_range
from repro.spaces import euclidean, hamming, sphere
from repro.spaces.embeddings import hamming_to_sphere


class TestNegationTrick:
    """Sections 2.1-2.2: negating the query point mirrors the CPF."""

    def test_negated_simhash_cpf(self):
        d = 10
        base = SimHash(d)
        anti = negate_queries(
            base,
            cpf=LambdaCPF(
                lambda a: 1 - np.arccos(np.clip(-a, -1, 1)) / np.pi, "similarity"
            ),
        )
        for alpha in [-0.6, 0.0, 0.6]:
            est = estimate_collision_probability(
                anti,
                lambda n, rng, a=alpha: sphere.pairs_at_inner_product(n, d, a, rng),
                n_functions=200,
                pairs_per_function=80,
                rng=1,
            )
            expected = 1 - np.arccos(-alpha) / np.pi
            assert est.contains(expected), f"alpha={alpha}"

    def test_negated_simhash_is_decreasingly_sensitive(self):
        cpf = LambdaCPF(
            lambda a: 1 - np.arccos(np.clip(-a, -1, 1)) / np.pi, "similarity"
        )
        # Definition 3.6 with thresholds +-0.5.
        f_minus = 1 - np.arccos(0.5) / np.pi
        f_plus = 1 - np.arccos(-0.5) / np.pi
        assert check_decreasingly_sensitive(cpf, -0.5, 0.5, f_minus, f_plus)


class TestTheorem52MeetsTheorem13:
    """The polynomial construction is itself a DSH on the cube, so it must
    obey the universal Lemma 3.5 / 3.10 bounds — a cross-theorem check."""

    def test_polynomial_family_respects_lower_bounds(self):
        d = 8
        scheme = build_polynomial_family([0.5, 1.0], d)  # CPF (t + 1/2)/2
        reverse = verify_reverse_bound(
            scheme.family, d, [0.0, 0.3, 0.6], n_pairs=10, rng=3
        )
        forward = verify_forward_bound(
            scheme.family, d, [0.0, 0.3, 0.6], n_pairs=10, rng=4
        )
        assert all(c.satisfied for c in reverse)
        assert all(c.satisfied for c in forward)


class TestPoweredAntiBitSamplingIndex:
    """Anti-LSH through the index: at distance 0 nothing is retrieved, at
    large distance almost everything — the inverse of a classical index."""

    def test_retrieval_monotone_in_distance(self):
        d, L = 32, 200
        fam = PoweredFamily(AntiBitSampling(d), 2)
        x = hamming.random_points(1, d, rng=5)
        index = DSHIndex(fam, n_tables=L, rng=6).build(x)
        rates = []
        for r in [0, 8, 16, 24, 32]:
            y = hamming.flip_bits(x, r, rng=7)
            _, stats = index.query(y[0])
            rates.append(stats.retrieved / L)
        assert rates[0] == 0.0
        assert all(a <= b + 0.05 for a, b in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(1.0)


class TestStepFamilyRecallPrediction:
    """Range reporting recall tracks 1 - (1 - f(dist))^L per point."""

    def test_per_point_recall_matches_cpf(self):
        d, radius, L = 8, 4.0, 40
        design = design_step_family(d, r_flat=radius, level=0.12, n_components=4)
        inst = planted_euclidean_range(200, d, radius, n_near=30, rng=8)
        index = RangeReportingIndex(
            inst.points,
            design.family,
            radius,
            lambda q, pts: np.linalg.norm(pts - q, axis=1),
            L,
            rng=9,
        )
        report = index.query(inst.query)
        recovered = set(report.indices)
        hits, predictions = [], []
        for i in inst.near_indices:
            dist = float(np.linalg.norm(inst.points[i] - inst.query))
            predictions.append(1 - (1 - float(design.cpf(dist))) ** L)
            hits.append(1.0 if i in recovered else 0.0)
        # Aggregate recall within a few points of the CPF prediction.
        assert np.mean(hits) == pytest.approx(np.mean(predictions), abs=0.12)


class TestSphereEmbeddedHammingPipeline:
    """Hamming data searched through a sphere family via the standard
    embedding — the transfer the lower-bound section relies on."""

    def test_embedded_simhash_collision_rate(self):
        d = 24
        fam = SimHash(d)
        x, y = hamming.pairs_at_distance(400, d, 6, rng=10)
        ex, ey = hamming_to_sphere(x), hamming_to_sphere(y)
        rate = np.mean(
            [pair.collides(ex, ey).mean() for pair in fam.sample_pairs(50, rng=11)]
        )
        alpha = 1 - 2 * 6 / d
        expected = 1 - np.arccos(alpha) / np.pi
        assert rate == pytest.approx(expected, abs=0.03)


class TestEuclideanAnnulusEndToEnd:
    """Equation-(2) family + generic annulus index on planted Euclidean
    instances: the Figure 1 CPF actually drives a working data structure."""

    def test_success_rate_over_instances(self):
        from repro.families.euclidean_lsh import ShiftedGaussianProjection
        from repro.index.annulus import AnnulusIndex

        d, n = 12, 300
        family = ShiftedGaussianProjection(d, w=1.0, k=3)
        found = 0
        trials = 6
        for i in range(trials):
            rng = np.random.default_rng(100 + i)
            query = euclidean.random_points(1, d, rng)[0]
            points = euclidean.translate_at_distance(
                np.repeat(query[None, :], n, axis=0), 15.0, rng
            )
            points[0] = euclidean.translate_at_distance(query[None, :], 3.0, rng)[0]
            index = AnnulusIndex(
                points,
                family,
                interval=(2.0, 4.5),
                proximity=lambda q, pts: np.linalg.norm(pts - q, axis=1),
                n_tables=100,
                rng=200 + i,
            )
            if index.query(query).found:
                found += 1
        assert found / trials >= 0.5
