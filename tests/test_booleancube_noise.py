"""Tests for the noise operator and exact probabilistic CPFs."""

import numpy as np
import pytest

from repro.booleancube.noise import (
    correlated_collision_probability,
    exact_probabilistic_cpf,
    noise_operator,
    noise_stability,
)
from repro.booleancube.walsh import enumerate_cube
from repro.spaces import hamming


class TestNoiseOperator:
    def test_alpha_one_is_identity(self):
        f = np.random.default_rng(0).standard_normal(16)
        np.testing.assert_allclose(noise_operator(f, 1.0), f, atol=1e-9)

    def test_alpha_zero_is_mean(self):
        f = np.random.default_rng(1).standard_normal(16)
        np.testing.assert_allclose(noise_operator(f, 0.0), np.mean(f), atol=1e-9)

    def test_matches_direct_channel_computation(self):
        # Direct O(4^d) computation of E_y[f(y) | x] for the BSC channel.
        d, alpha = 5, 0.6
        rng = np.random.default_rng(2)
        f = rng.standard_normal(2**d)
        cube = enumerate_cube(d).astype(np.int64)
        flip = (1 - alpha) / 2
        dists = np.count_nonzero(cube[:, None, :] != cube[None, :, :], axis=2)
        channel = (flip**dists) * ((1 - flip) ** (d - dists))
        np.testing.assert_allclose(noise_operator(f, alpha), channel @ f, atol=1e-9)

    def test_preserves_mean(self):
        f = np.random.default_rng(3).standard_normal(32)
        assert np.mean(noise_operator(f, 0.42)) == pytest.approx(np.mean(f))

    def test_negative_alpha(self):
        # T_{-1} f(x) = f(complement of x).
        d = 4
        f = np.random.default_rng(4).standard_normal(2**d)
        flipped = f[::-1]  # complement reverses the index order
        np.testing.assert_allclose(noise_operator(f, -1.0), flipped, atol=1e-9)


class TestNoiseStability:
    def test_stability_of_dictator(self):
        # f = g = x_0 as +-1 function: stability = alpha.
        cube = enumerate_cube(6)
        f = (-1.0) ** cube[:, 0]
        for alpha in [-0.5, 0.0, 0.3, 0.9]:
            assert noise_stability(f, f, alpha) == pytest.approx(alpha)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            noise_stability(np.zeros(4), np.zeros(8), 0.5)


class TestCorrelatedCollisionProbability:
    def test_bit_sampling_pair_matches_formula(self):
        # h(x) = g(x) = x_0: collision prob at correlation alpha is (1+alpha)/2.
        cube = enumerate_cube(5)
        labels = cube[:, 0].astype(np.int64)
        for alpha in [0.0, 0.25, 0.8]:
            got = correlated_collision_probability(labels, labels, alpha)
            assert got == pytest.approx((1 + alpha) / 2)

    def test_anti_bit_sampling_pair_matches_formula(self):
        # h(x) = x_0, g(y) = 1 - y_0: collision prob is (1-alpha)/2.
        cube = enumerate_cube(5)
        h = cube[:, 0].astype(np.int64)
        g = 1 - h
        for alpha in [0.0, 0.25, 0.8]:
            got = correlated_collision_probability(h, g, alpha)
            assert got == pytest.approx((1 - alpha) / 2)

    def test_monte_carlo_agreement(self):
        # Random label functions: exact result matches a big MC estimate.
        d = 6
        rng = np.random.default_rng(7)
        h = rng.integers(0, 3, size=2**d)
        g = rng.integers(0, 3, size=2**d)
        alpha = 0.4
        exact = correlated_collision_probability(h, g, alpha)
        x, y = hamming.alpha_correlated_pairs(200_000, d, alpha, rng=8)
        powers = 1 << np.arange(d, dtype=np.int64)
        hx = h[x.astype(np.int64) @ powers]
        gy = g[y.astype(np.int64) @ powers]
        mc = np.mean(hx == gy)
        assert exact == pytest.approx(mc, abs=0.005)

    def test_disjoint_ranges_give_zero(self):
        h = np.zeros(8, dtype=np.int64)
        g = np.ones(8, dtype=np.int64)
        assert correlated_collision_probability(h, g, 0.5) == 0.0


class TestExactProbabilisticCpf:
    def test_averages_over_pairs(self):
        cube = enumerate_cube(4)
        h = cube[:, 0].astype(np.int64)
        pairs = [(h, h), (h, 1 - h)]  # collision probs (1+a)/2 and (1-a)/2
        assert exact_probabilistic_cpf(pairs, 0.6) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_probabilistic_cpf([], 0.5)
