"""Unit tests for repro.spaces.euclidean."""

import numpy as np
import pytest

from repro.spaces import euclidean


class TestDistance:
    def test_basic(self):
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(euclidean.euclidean_distance(x, y), [5.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            euclidean.euclidean_distance(np.zeros((1, 2)), np.zeros((1, 3)))


class TestSampling:
    def test_random_points_shape(self):
        pts = euclidean.random_points(10, 4, rng=0)
        assert pts.shape == (10, 4)

    def test_random_points_scale(self):
        pts = euclidean.random_points(50000, 1, rng=1, scale=3.0)
        assert np.std(pts) == pytest.approx(3.0, rel=0.05)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            euclidean.random_points(1, 1, scale=0.0)

    @pytest.mark.parametrize("delta", [0.0, 0.5, 2.0, 10.0])
    def test_pairs_at_distance_exact(self, delta):
        x, y = euclidean.pairs_at_distance(100, 8, delta, rng=2)
        np.testing.assert_allclose(
            euclidean.euclidean_distance(x, y), delta, atol=1e-9
        )

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            euclidean.pairs_at_distance(1, 2, -1.0)

    def test_translate_preserves_shape(self):
        x = euclidean.random_points(5, 3, rng=3)
        y = euclidean.translate_at_distance(x, 1.5, rng=4)
        assert y.shape == x.shape
        np.testing.assert_allclose(euclidean.euclidean_distance(x, y), 1.5, atol=1e-9)
