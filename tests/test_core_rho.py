"""Tests for rho-values and Definition 3.6 sensitivity checks."""

import numpy as np
import pytest

from repro.core.cpf import (
    AntiBitSamplingCPF,
    BitSamplingCPF,
    LambdaCPF,
    PowerCPF,
)
from repro.core.rho import (
    check_decreasingly_sensitive,
    check_increasingly_sensitive,
    rho_from_probabilities,
    rho_minus,
    rho_plus,
    rho_star,
)


class TestRhoFromProbabilities:
    def test_basic(self):
        # ln(1/0.25)/ln(1/0.5) = 2.
        assert rho_from_probabilities(0.25, 0.5) == pytest.approx(2.0)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary(self, bad):
        with pytest.raises(ValueError):
            rho_from_probabilities(bad, 0.5)
        with pytest.raises(ValueError):
            rho_from_probabilities(0.5, bad)


class TestRhoPlusMinus:
    def test_bit_sampling_rho_plus_close_to_inverse_c(self):
        # For small r, bit-sampling has rho_+ ~ 1/c (optimal per [40]).
        cpf = BitSamplingCPF()
        got = rho_plus(cpf, r=0.01, c=2.0)
        assert got == pytest.approx(1 / 2, rel=0.02)

    def test_anti_bit_sampling_rho_minus_formula(self):
        # rho_- = ln f(r)/ln f(r/c) = ln r / ln(r/c).
        cpf = AntiBitSamplingCPF()
        r, c = 0.1, 2.0
        assert rho_minus(cpf, r, c) == pytest.approx(np.log(r) / np.log(r / c))

    def test_requires_c_above_one(self):
        with pytest.raises(ValueError):
            rho_plus(BitSamplingCPF(), 0.1, 1.0)
        with pytest.raises(ValueError):
            rho_minus(AntiBitSamplingCPF(), 0.1, 0.5)


class TestRhoStar:
    def test_formula(self):
        assert rho_star(0.01, 10000) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            rho_star(0.5, 1)
        with pytest.raises(ValueError):
            rho_star(0.0, 100)


class TestSensitivity:
    def _decreasing_cpf(self):
        # Decreasing in similarity: f(alpha) = (1 - alpha)/2.
        return LambdaCPF(lambda a: (1 - a) / 2, "similarity")

    def test_decreasing_family_passes(self):
        cpf = self._decreasing_cpf()
        # f(alpha) >= f(-0.5) = 0.75 for alpha <= -0.5; f(alpha) <= 0.25
        # for alpha >= 0.5.
        assert check_decreasingly_sensitive(cpf, -0.5, 0.5, 0.75, 0.25)

    def test_decreasing_family_fails_wrong_thresholds(self):
        cpf = self._decreasing_cpf()
        assert not check_decreasingly_sensitive(cpf, -0.5, 0.5, 0.9, 0.25)

    def test_increasing_family(self):
        cpf = LambdaCPF(lambda a: (1 + a) / 2, "similarity")
        assert check_increasingly_sensitive(cpf, -0.5, 0.5, 0.25, 0.75)
        assert not check_increasingly_sensitive(cpf, -0.5, 0.5, 0.1, 0.75)

    def test_threshold_order_validated(self):
        with pytest.raises(ValueError):
            check_decreasingly_sensitive(self._decreasing_cpf(), 0.5, -0.5, 0.1, 0.9)

    def test_powered_cpf_still_sensitive(self):
        cpf = PowerCPF(self._decreasing_cpf(), 3)
        assert check_decreasingly_sensitive(cpf, -0.5, 0.5, 0.75**3, 0.25**3)
