"""Save→load round-trip parity suite.

A persisted index must be *observably identical* to the in-memory original:
same candidates, same candidate order, same :class:`QueryStats`, on both
storage backends, for every application kind — whether the arrays come back
as zero-copy memory maps (``mmap=True``) or eager copies.  The loaded hash
pairs are regenerated from the recorded bit-generator state, so the suite
also covers indexes built *without* a fixed seed.
"""

import json
import pickle

import numpy as np
import pytest

from repro.api import (
    IndexSpec,
    build_index,
    index_paths,
    load_index,
    save_index,
    verify_saved_index,
)
from repro.index import DictBackend, DSHIndex, IndexBackend, PackedBackend
from repro.index.persistence import (
    FORMAT_VERSION,
    IndexIntegrityError,
    read_arrays,
    write_arrays,
)
from repro.serving import ServingOptions, ShardedIndex, faults
from repro.families.bit_sampling import BitSampling
from repro.spaces import euclidean, hamming, sphere
from repro.utils.rng import rng_from_state, rng_state

BACKENDS = ["dict", "packed"]

# Three raw-kind families over three spaces: multi-component Hamming rows,
# genuinely asymmetric Euclidean rows, and the Section 6.2 sphere family.
RAW_CASES = [
    (
        "bit-sampling",
        dict(family="bit_sampling", power=4),
        lambda n, rng: hamming.random_points(n, 24, rng=rng),
    ),
    (
        "euclidean-lsh",
        dict(family="euclidean_lsh", w=2.0, k=2),
        lambda n, rng: euclidean.random_points(n, 8, rng=rng),
    ),
    (
        "annulus-sphere",
        dict(family="annulus_sphere", alpha_max=0.3, t=1.5),
        lambda n, rng: sphere.random_points(n, 12, rng=rng),
    ),
]
CASE_IDS = [case[0] for case in RAW_CASES]

N_POINTS = 220
N_TABLES = 8


def _queries(points, sampler, seed):
    fresh = sampler(6, 500 + seed)
    return np.concatenate([points[:6], fresh])


def _assert_candidates_equal(original, loaded):
    assert len(original) == len(loaded)
    for a, b in zip(original, loaded):
        assert a.indices == b.indices
        assert a.stats == b.stats


def _assert_annulus_equal(a, b):
    assert a.index == b.index
    assert a.stats == b.stats
    if a.found:
        assert a.proximity == b.proximity
    else:
        assert np.isnan(a.proximity) and np.isnan(b.proximity)


class TestRawRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("case", RAW_CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "eager"])
    def test_batch_and_single_queries_identical(
        self, tmp_path, backend, case, mmap
    ):
        _, params, sampler = case
        points = sampler(N_POINTS, 7)
        queries = _queries(points, sampler, 7)
        index = build_index(
            points, kind="raw", n_tables=N_TABLES, rng=42, backend=backend,
            **params,
        )
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx", options=ServingOptions(mmap=mmap))
        assert loaded.spec == index.spec
        assert loaded.n_points == index.n_points
        assert loaded.dim == index.dim
        for budget in (None, 0, 5, 8 * N_TABLES):
            _assert_candidates_equal(
                index.batch_query(queries, max_retrieved=budget),
                loaded.batch_query(queries, max_retrieved=budget),
            )
        assert index.query(queries[0]) == loaded.query(queries[0])
        assert index.bucket_sizes() == loaded.bucket_sizes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roundtrip_without_fixed_seed(self, tmp_path, backend):
        """rng=None draws OS entropy; the recorded bit-generator state must
        still revive identical hash pairs."""
        points = hamming.random_points(N_POINTS, 24, rng=3)
        queries = _queries(
            points, lambda n, rng: hamming.random_points(n, 24, rng=rng), 3
        )
        index = build_index(
            points, kind="raw", family="bit_sampling", power=4,
            n_tables=N_TABLES, rng=None, backend=backend,
        )
        assert index.spec.seed is None
        save_index(index, tmp_path / "noseed")
        loaded = load_index(tmp_path / "noseed")
        _assert_candidates_equal(
            index.batch_query(queries), loaded.batch_query(queries)
        )

    def test_resave_of_loaded_index_over_itself(self, tmp_path):
        """Re-saving a memmap-loaded index to its own path must not read
        back a truncated file: writes go to a temp file and os.replace over
        the target, so the live views keep the old inode."""
        points = hamming.random_points(N_POINTS, 24, rng=2)
        queries = _queries(
            points, lambda n, rng: hamming.random_points(n, 24, rng=rng), 2
        )
        index = build_index(
            points, kind="raw", family="bit_sampling", power=4,
            n_tables=N_TABLES, rng=6, backend="packed",
        )
        reference = index.batch_query(queries)
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx", options=ServingOptions(mmap=True))
        save_index(loaded, tmp_path / "idx")  # in-place re-save
        _assert_candidates_equal(reference, loaded.batch_query(queries))
        reloaded = load_index(tmp_path / "idx")
        _assert_candidates_equal(reference, reloaded.batch_query(queries))

    def test_loaded_packed_arrays_are_memory_mapped(self, tmp_path):
        points = hamming.random_points(N_POINTS, 24, rng=0)
        index = build_index(
            points, kind="raw", family="bit_sampling", power=4,
            n_tables=N_TABLES, rng=1, backend="packed",
        )
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx", options=ServingOptions(mmap=True))
        assert isinstance(loaded._backend._ids, np.memmap)
        eager = load_index(tmp_path / "idx", options=ServingOptions(mmap=False))
        assert not isinstance(eager._backend._ids, np.memmap)


class TestApplicationKindsRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_annulus(self, tmp_path, backend):
        points = sphere.random_points(N_POINTS, 12, rng=5)
        index = build_index(
            points, kind="annulus", family="annulus_sphere", t=1.6,
            interval=(0.3, 0.8), n_tables=40, rng=9, backend=backend,
        )
        save_index(index, tmp_path / "ann")
        loaded = load_index(tmp_path / "ann")
        for a, b in zip(
            index.batch_query(points[:12]), loaded.batch_query(points[:12])
        ):
            _assert_annulus_equal(a, b)
        _assert_annulus_equal(index.query(points[0]), loaded.query(points[0]))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hyperplane(self, tmp_path, backend):
        points = sphere.random_points(N_POINTS, 12, rng=6)
        index = build_index(
            points, kind="hyperplane", alpha=0.25, t=1.5, n_tables=30,
            rng=4, backend=backend,
        )
        save_index(index, tmp_path / "hyp")
        loaded = load_index(tmp_path / "hyp")
        assert loaded.alpha == index.alpha
        for a, b in zip(
            index.batch_query(points[:12]), loaded.batch_query(points[:12])
        ):
            _assert_annulus_equal(a, b)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_range_reporting(self, tmp_path, backend):
        points = sphere.random_points(N_POINTS, 12, rng=8)
        index = build_index(
            points, kind="range_reporting", family="simhash", power=3,
            r_report=0.9, distance="euclidean_distance", n_tables=25,
            rng=2, backend=backend,
        )
        save_index(index, tmp_path / "rr")
        loaded = load_index(tmp_path / "rr")
        assert loaded.r_report == index.r_report
        for a, b in zip(
            index.batch_query(points[:12]), loaded.batch_query(points[:12])
        ):
            assert a.indices == b.indices
            assert a.stats == b.stats
            assert a.in_range_retrievals == b.in_range_retrievals


class TestBackendSaveLoadContract:
    def _built_backends(self):
        points = hamming.random_points(120, 16, rng=0)
        out = []
        for name in BACKENDS:
            index = DSHIndex(
                BitSampling(16), n_tables=4, rng=1, backend=name
            ).build(points)
            out.append(index._backend)
        return out

    def test_standalone_roundtrip(self, tmp_path):
        for backend in self._built_backends():
            path = tmp_path / f"{backend.name}.npz"
            backend.save(path)
            loaded = IndexBackend.load(path)
            assert type(loaded) is type(backend)
            assert loaded.bucket_sizes() == backend.bucket_sizes()
            assert not loaded.attached
            loaded.attach()
            with pytest.raises(ValueError, match="already attached"):
                loaded.attach()

    def test_typed_load_rejects_other_backend(self, tmp_path):
        dict_backend = self._built_backends()[0]
        assert isinstance(dict_backend, DictBackend)
        path = tmp_path / "dict.npz"
        dict_backend.save(path)
        with pytest.raises(ValueError, match="DictBackend bundle"):
            PackedBackend.load(path)

    def test_load_rejects_plain_npz(self, tmp_path):
        path = write_arrays(tmp_path / "plain.npz", {"a": np.arange(3)})
        with pytest.raises(ValueError, match="not a backend bundle"):
            IndexBackend.load(path)

    def test_suffixless_save_path_round_trips(self, tmp_path):
        """np.savez appends .npz silently; save must return the real file
        and load must accept the path the caller used for save."""
        backend = self._built_backends()[1]
        returned = backend.save(tmp_path / "tables")
        assert returned.exists() and returned.suffix == ".npz"
        loaded = IndexBackend.load(returned)
        assert loaded.bucket_sizes() == backend.bucket_sizes()


class TestPersistenceErrors:
    def _saved(self, tmp_path):
        points = hamming.random_points(60, 16, rng=0)
        index = build_index(
            points, kind="raw", family="bit_sampling", n_tables=2, rng=0
        )
        save_index(index, tmp_path / "idx")
        return index

    def test_save_requires_spec(self, tmp_path):
        index = DSHIndex(BitSampling(16), n_tables=2, rng=0).build(
            hamming.random_points(60, 16, rng=0)
        )
        with pytest.raises(ValueError, match="no spec"):
            save_index(index, tmp_path / "raw")

    def test_load_rejects_future_format(self, tmp_path):
        self._saved(tmp_path)
        _, json_path = index_paths(tmp_path / "idx")
        sidecar = json.loads(json_path.read_text())
        sidecar["format"] = FORMAT_VERSION + 1
        json_path.write_text(json.dumps(sidecar))
        with pytest.raises(ValueError, match="unsupported index format"):
            load_index(tmp_path / "idx")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nothing")

    def test_workers_invalid_for_single_index(self, tmp_path):
        self._saved(tmp_path)
        with pytest.raises(ValueError, match="sharded indexes only"):
            load_index(tmp_path / "idx", options=ServingOptions(workers=2))

    def test_index_paths_appends_suffixes(self):
        for given in ("base", "base.npz", "base.json"):
            npz, sidecar = index_paths(given)
            assert npz.name == "base.npz" and sidecar.name == "base.json"
        npz, sidecar = index_paths("run.shard0")
        assert npz.name == "run.shard0.npz"
        assert sidecar.name == "run.shard0.json"


class TestArrayBundles:
    def test_mmap_members_match_eager(self, tmp_path):
        arrays = {
            "ids32": np.arange(1000, dtype=np.int32),
            "fps": np.random.default_rng(0).integers(
                0, 2**63, size=500
            ).astype(np.uint64),
            "points": np.random.default_rng(1).normal(size=(40, 7)),
            "empty": np.empty(0, dtype=np.int64),
        }
        path = write_arrays(tmp_path / "bundle.npz", arrays)
        mapped = read_arrays(path, mmap=True)
        eager = read_arrays(path, mmap=False)
        assert set(mapped) == set(arrays)
        for name, original in arrays.items():
            np.testing.assert_array_equal(mapped[name], original)
            np.testing.assert_array_equal(eager[name], original)
            assert mapped[name].dtype == original.dtype
        assert isinstance(mapped["points"], np.memmap)
        assert not isinstance(eager["points"], np.memmap)

    def test_write_arrays_suffix_handling(self, tmp_path):
        """``write_arrays`` appends ``.npz`` via a proper suffix check —
        historically a ``name[-4:]`` slice that misfired on names shorter
        than four characters and on uppercase suffixes."""
        arrays = {"ids": np.arange(5, dtype=np.int64)}
        # Short / odd names must gain the suffix, never crash or double it.
        for given, expected in [
            ("a", "a.npz"),
            ("npz", "npz.npz"),
            ("x.np", "x.np.npz"),
            ("bundle.npz", "bundle.npz"),
        ]:
            path = write_arrays(tmp_path / given, arrays)
            assert path.name == expected
            np.testing.assert_array_equal(read_arrays(path)["ids"], arrays["ids"])
        # An uppercase suffix already names an npz: keep it as-is.
        path = write_arrays(tmp_path / "bundle.NPZ", arrays)
        assert path.name == "bundle.NPZ"
        np.testing.assert_array_equal(read_arrays(path)["ids"], arrays["ids"])


class TestIntegrityVerification:
    """Corrupted-persistence coverage: every damage class a bundle can
    suffer on disk maps to the right :class:`IndexIntegrityError` kind at
    the right verify level — and checksum-less legacy bundles keep
    loading."""

    def _saved(self, tmp_path):
        points = hamming.random_points(60, 16, rng=0)
        queries = points[:10]
        index = build_index(
            points, kind="raw", family="bit_sampling", n_tables=2, rng=0
        )
        save_index(index, tmp_path / "idx")
        return index, tmp_path / "idx", queries

    def _edit_sidecar(self, base, mutate):
        _, json_path = index_paths(base)
        sidecar = json.loads(json_path.read_text())
        mutate(sidecar)
        json_path.write_text(json.dumps(sidecar))

    def test_truncation_caught_at_every_level(self, tmp_path):
        _, base, _ = self._saved(tmp_path)
        faults.truncate_bundle(base, 0.5)
        for verify in ("lazy", "eager"):
            with pytest.raises(IndexIntegrityError) as excinfo:
                load_index(base, options=ServingOptions(verify=verify))
            assert excinfo.value.kind == "truncated"
        with pytest.raises(IndexIntegrityError):
            verify_saved_index(base, verify="lazy")

    def test_bit_flip_caught_by_eager_only(self, tmp_path):
        """In-place corruption keeps the size: lazy (O(1)) admits it —
        the documented trade-off — while eager re-checksums and rejects."""
        _, base, queries = self._saved(tmp_path)
        faults.corrupt_bundle(base)
        with pytest.raises(IndexIntegrityError) as excinfo:
            load_index(base, options=ServingOptions(verify="eager"))
        assert excinfo.value.kind == "checksum"
        # Lazy load itself succeeds — the corrupted bytes are admitted
        # (queries over them may then fail arbitrarily; that is the
        # documented price of the O(1) check).
        loaded = load_index(base, options=ServingOptions(verify="lazy"))
        assert loaded.n_points == 60

    def test_size_skew_modes(self, tmp_path):
        """The recorded archive size is the lazy check; ``verify="off"``
        skips it and serves the (readable) bundle regardless."""
        index, base, queries = self._saved(tmp_path)
        reference = index.batch_query(queries)
        self._edit_sidecar(
            base, lambda s: s["integrity"].__setitem__(
                "npz_nbytes", s["integrity"]["npz_nbytes"] + 1
            )
        )
        for verify in ("lazy", "eager"):
            with pytest.raises(IndexIntegrityError) as excinfo:
                load_index(base, options=ServingOptions(verify=verify))
            assert excinfo.value.kind == "truncated"
        loaded = load_index(base, options=ServingOptions(verify="off"))
        for a, b in zip(reference, loaded.batch_query(queries)):
            assert a.indices == b.indices and a.stats == b.stats

    def test_member_skew_is_a_manifest_error(self, tmp_path):
        _, base, _ = self._saved(tmp_path)

        def flip_dtype(sidecar):
            members = sidecar["integrity"]["members"]
            record = members[sorted(members)[0]]
            record["dtype"] = "<i2"

        self._edit_sidecar(base, flip_dtype)
        with pytest.raises(IndexIntegrityError) as excinfo:
            load_index(base, options=ServingOptions(verify="eager"))
        assert excinfo.value.kind == "manifest"

    def test_legacy_sidecar_without_checksums_still_loads(self, tmp_path):
        """Bundles saved before integrity records existed have no
        ``"integrity"`` block; every verify level must accept them."""
        index, base, queries = self._saved(tmp_path)
        reference = index.batch_query(queries)
        self._edit_sidecar(base, lambda s: s.pop("integrity"))
        verify_saved_index(base, verify="eager")  # no record: no raise
        for verify in ("lazy", "eager", "off"):
            loaded = load_index(base, options=ServingOptions(verify=verify))
            for a, b in zip(reference, loaded.batch_query(queries)):
                assert a.indices == b.indices and a.stats == b.stats

    def test_unknown_verify_mode_rejected(self, tmp_path):
        _, base, _ = self._saved(tmp_path)
        with pytest.raises(ValueError, match="verify mode"):
            load_index(base, options=ServingOptions(verify="paranoid"))
        with pytest.raises(ValueError, match="verify mode"):
            verify_saved_index(base, verify="sometimes")

    def test_sharded_manifest_coherence(self, tmp_path):
        points = hamming.random_points(60, 16, rng=0)
        spec = IndexSpec(
            kind="raw", family="bit_sampling", family_params={"d": 16},
            n_tables=2, backend="packed", seed=0, shards=2,
        )
        ShardedIndex(points, spec).save(tmp_path / "srv")
        verify_saved_index(tmp_path / "srv")  # pristine: healthy

        def drop_shard(sidecar):
            sidecar["shards"] = sidecar["shards"][:1]

        self._edit_sidecar(tmp_path / "srv", drop_shard)
        with pytest.raises(IndexIntegrityError) as excinfo:
            load_index(tmp_path / "srv")
        assert excinfo.value.kind == "manifest"

    def test_integrity_error_contract(self):
        """It is a ValueError (callers catching the historic type keep
        working) and survives the executor's pickle pipe intact."""
        error = IndexIntegrityError("bundle went bad", kind="checksum")
        assert isinstance(error, ValueError)
        revived = pickle.loads(pickle.dumps(error))
        assert type(revived) is IndexIntegrityError
        assert revived.kind == "checksum"
        assert str(revived) == "bundle went bad"


class TestRngState:
    def test_state_roundtrip_reproduces_stream(self):
        rng = np.random.default_rng(123)
        rng.integers(0, 10, size=5)  # advance past the seed point
        state = rng_state(rng)
        replay = rng_from_state(state)
        expected = rng.integers(0, 2**62, size=16)
        np.testing.assert_array_equal(
            replay.integers(0, 2**62, size=16), expected
        )

    def test_state_is_json_roundtrippable(self):
        state = rng_state(np.random.default_rng(0))
        revived = rng_from_state(json.loads(json.dumps(state)))
        assert isinstance(revived, np.random.Generator)

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown bit generator"):
            rng_from_state({"bit_generator": "nope", "state": {}})
