"""Chaos-style suite for the async micro-batching serving tier.

Covers coalescing edges (batch caps, zero windows, overflow), the
result-exactness invariant (every coalesced response bit-identical to a
direct ``batch_query`` of the same queries, including budget clipping
and ``stats.degraded`` propagation), bounded-queue overload shedding,
health-based replica routing under injected pool crashes, and
zero-downtime hot swaps under concurrent load with zero dropped or
wrong-snapshot-mixed responses.

No ``pytest-asyncio`` in the pinned environment: each test drives its
own event loop via ``asyncio.run``.
"""

import asyncio
import os
import shutil

import numpy as np
import pytest

from repro.api import IndexSpec, load_index, save_index
from repro.index.persistence import IndexIntegrityError
from repro.serving import (
    AsyncIndexServer,
    ServerOverloadedError,
    ServingOptions,
    ShardedIndex,
    serve_in_thread,
    shard_bounds,
)
from repro.serving import faults
from repro.spaces import hamming

D = 24
N_TABLES = 8
N_POINTS = 257


def _spec(shards=1, seed=11):
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": 4},
        n_tables=N_TABLES,
        seed=seed,
        shards=shards,
    )


def _clustered_points(n, rng):
    prototypes = hamming.random_points(10, D, rng=rng)
    rows = prototypes[rng.integers(0, prototypes.shape[0], size=n)]
    return rows ^ (rng.random(size=rows.shape) < 0.02).astype(np.int8)


def _assert_exact(served, reference):
    assert served.indices == reference.indices
    assert served.stats == reference.stats


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(77)
    points = _clustered_points(N_POINTS, rng)
    queries = np.concatenate([points[:8], _clustered_points(40, rng)])
    return points, queries


@pytest.fixture(scope="module")
def flat(data):
    points, _ = data
    return _spec().build(points)


@pytest.fixture(scope="module")
def saved_single(data, tmp_path_factory):
    points, _ = data
    path = tmp_path_factory.mktemp("async-single") / "idx"
    save_index(_spec().build(points), path)
    return path


@pytest.fixture(scope="module")
def saved_sharded(data, tmp_path_factory):
    """Pristine 2-shard save; damaging tests work on copies."""
    points, _ = data
    root = tmp_path_factory.mktemp("async-sharded")
    ShardedIndex(points, _spec(shards=2)).save(root / "srv")
    return root


@pytest.fixture
def served_dir(saved_sharded, tmp_path):
    for name in os.listdir(saved_sharded):
        shutil.copy2(saved_sharded / name, tmp_path / name)
    return tmp_path


@pytest.fixture
def fault_dir(tmp_path, monkeypatch):
    directory = tmp_path / "fault-tokens"
    monkeypatch.setenv(faults.ENV_FAULT_DIR, str(directory))
    yield directory
    faults.disarm_all(directory)


# ---------------------------------------------------------------------------
# coalescing mechanics and exactness
# ---------------------------------------------------------------------------


class TestCoalescing:
    def test_concurrent_queries_coalesce_and_stay_exact(
        self, saved_single, flat, data
    ):
        _, queries = data
        reference = flat.batch_query(queries)

        async def scenario():
            async with AsyncIndexServer(
                str(saved_single), max_batch=16, max_wait_us=20_000
            ) as server:
                results = await asyncio.gather(
                    *(server.query(q) for q in queries)
                )
                return results, server.metrics()

        results, metrics = asyncio.run(scenario())
        for served, ref in zip(results, reference):
            _assert_exact(served, ref)
        assert metrics["served"] == len(queries)
        assert metrics["failed"] == 0
        # Concurrent submission must actually coalesce: fewer batches
        # than requests, and some batch saw more than one member.
        assert metrics["batches"] < len(queries)
        assert metrics["max_batch_size"] > 1
        sizes = {r.serve.batch_size for r in results}
        assert max(sizes) <= 16

    def test_max_batch_one_serves_singletons(self, saved_single, flat, data):
        _, queries = data
        reference = flat.batch_query(queries[:10])

        async def scenario():
            async with AsyncIndexServer(
                str(saved_single), max_batch=1, max_wait_us=20_000
            ) as server:
                results = await asyncio.gather(
                    *(server.query(q) for q in queries[:10])
                )
                return results, server.metrics()

        results, metrics = asyncio.run(scenario())
        for served, ref in zip(results, reference):
            _assert_exact(served, ref)
            assert served.serve.batch_size == 1
        assert metrics["batches"] == 10

    def test_zero_wait_window_dispatches_immediately(
        self, saved_single, flat, data
    ):
        _, queries = data
        reference = flat.batch_query(queries[:8])

        async def scenario():
            async with AsyncIndexServer(
                str(saved_single), max_batch=64, max_wait_us=0
            ) as server:
                results = [await server.query(q) for q in queries[:8]]
                return results

        results = asyncio.run(scenario())
        for served, ref in zip(results, reference):
            _assert_exact(served, ref)

    def test_overflow_splits_into_multiple_exact_batches(
        self, saved_single, flat, data
    ):
        _, queries = data
        reference = flat.batch_query(queries)

        async def scenario():
            async with AsyncIndexServer(
                str(saved_single), max_batch=4, max_wait_us=20_000
            ) as server:
                results = await asyncio.gather(
                    *(server.query(q) for q in queries)
                )
                return results, server.metrics()

        results, metrics = asyncio.run(scenario())
        for served, ref in zip(results, reference):
            _assert_exact(served, ref)
            assert served.serve.batch_size <= 4
        assert metrics["batches"] >= len(queries) / 4

    def test_mixed_budgets_grouped_and_exact(self, saved_single, flat, data):
        _, queries = data
        budgets = [None, 0, 1, 5, 8 * N_TABLES]
        reference = {
            budget: flat.batch_query(queries, max_retrieved=budget)
            for budget in budgets
        }

        async def scenario():
            async with AsyncIndexServer(
                str(saved_single), max_batch=64, max_wait_us=20_000
            ) as server:
                jobs = [
                    server.query(q, max_retrieved=budgets[i % len(budgets)])
                    for i, q in enumerate(queries)
                ]
                return await asyncio.gather(*jobs)

        results = asyncio.run(scenario())
        for i, served in enumerate(results):
            budget = budgets[i % len(budgets)]
            _assert_exact(served, reference[budget][i])
            # Budget groups share one coalesced batch but execute as
            # separate exact sub-batches.
            assert served.serve.group_size <= served.serve.batch_size

    def test_serve_stats_are_sane(self, saved_single, data):
        _, queries = data

        async def scenario():
            async with AsyncIndexServer(
                str(saved_single), max_batch=8, max_wait_us=5_000
            ) as server:
                return await asyncio.gather(
                    *(server.query(q) for q in queries[:8])
                )

        for served in asyncio.run(scenario()):
            stats = served.serve
            assert stats.queue_wait_s >= 0.0
            assert stats.coalesce_wait_s >= 0.0
            assert stats.execute_s >= 0.0
            assert 1 <= stats.group_size <= stats.batch_size <= 8
            assert stats.snapshot == 0
            assert stats.replica == 0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_overload_sheds_with_typed_error(self, saved_single, data):
        _, queries = data
        total = 60

        async def scenario():
            # A long coalescing window with a huge batch cap keeps the
            # queue occupied, so a burst larger than max_pending must
            # shed the excess immediately.
            async with AsyncIndexServer(
                str(saved_single),
                max_batch=64,
                max_wait_us=200_000,
                max_pending=4,
            ) as server:
                jobs = [
                    server.query(queries[i % queries.shape[0]])
                    for i in range(total)
                ]
                results = await asyncio.gather(*jobs, return_exceptions=True)
                return results, server.metrics()

        results, metrics = asyncio.run(scenario())
        served = [r for r in results if not isinstance(r, BaseException)]
        shed = [r for r in results if isinstance(r, ServerOverloadedError)]
        unexpected = [
            r
            for r in results
            if isinstance(r, BaseException)
            and not isinstance(r, ServerOverloadedError)
        ]
        assert unexpected == []
        assert len(served) + len(shed) == total
        assert len(shed) > 0
        assert metrics["served"] == len(served)
        assert metrics["shed"] == len(shed)
        assert metrics["admitted"] == len(served)
        error = shed[0]
        assert error.max_pending == 4
        assert "overloaded" in str(error)

    def test_rejects_bad_queries_at_admission(self, saved_single, data):
        _, queries = data

        async def scenario():
            async with AsyncIndexServer(str(saved_single)) as server:
                with pytest.raises(ValueError, match="dimension"):
                    await server.query(np.zeros(D + 3, dtype=np.int8))
                with pytest.raises(ValueError, match="single point"):
                    await server.query(
                        np.zeros((2, D), dtype=np.int8)
                    )
                with pytest.raises(ValueError, match="max_retrieved"):
                    await server.query(queries[0], max_retrieved=-1)
                # ... and a good query still works afterwards.
                return await server.query(queries[0])

        served = asyncio.run(scenario())
        assert served.stats.retrieved >= 0

    def test_query_requires_started_server(self, saved_single, data):
        _, queries = data

        async def scenario():
            server = AsyncIndexServer(str(saved_single))
            with pytest.raises(RuntimeError, match="not started"):
                await server.query(queries[0])
            await server.start()
            await server.close()
            with pytest.raises(RuntimeError, match="closed"):
                await server.query(queries[0])

        asyncio.run(scenario())

    def test_close_drains_in_flight_requests(self, saved_single, flat, data):
        _, queries = data
        reference = flat.batch_query(queries[:12])

        async def scenario():
            server = await AsyncIndexServer(
                str(saved_single), max_batch=4, max_wait_us=50_000
            ).start()
            jobs = [
                asyncio.ensure_future(server.query(q)) for q in queries[:12]
            ]
            await asyncio.sleep(0)  # let admissions land
            await server.close()
            return await asyncio.gather(*jobs)

        results = asyncio.run(scenario())
        for served, ref in zip(results, reference):
            _assert_exact(served, ref)


# ---------------------------------------------------------------------------
# degraded results through the server
# ---------------------------------------------------------------------------


class TestDegradedPropagation:
    def test_degraded_stats_propagate_through_server(
        self, data, served_dir
    ):
        points, queries = data
        split = int(shard_bounds(N_POINTS, 2)[1])
        # The exact oracle: an unsharded index over shard 0's points.
        survivor = _spec().build(points[:split])

        async def scenario():
            options = ServingOptions(
                workers=1, on_shard_failure="degrade", verify="lazy"
            )
            async with AsyncIndexServer(
                str(served_dir / "srv"),
                max_batch=16,
                max_wait_us=10_000,
                options=options,
            ) as server:
                healthy = await server.query(queries[0])  # warm the pool
                faults.delete_bundle(served_dir / "srv.shard1")
                degraded = await asyncio.gather(
                    *(server.query(q) for q in queries[:8])
                )
                return healthy, degraded

        healthy, results = asyncio.run(scenario())
        assert healthy.stats.degraded is False
        reference = survivor.batch_query(queries[:8])
        for served, ref in zip(results, reference):
            assert served.indices == ref.indices
            assert served.stats.degraded is True
            assert served.stats.retrieved == ref.stats.retrieved
            assert (
                served.stats.unique_candidates == ref.stats.unique_candidates
            )
            assert served.stats.truncated == ref.stats.truncated


# ---------------------------------------------------------------------------
# health routing
# ---------------------------------------------------------------------------


class TestHealthRouting:
    def test_pool_crash_marks_replica_unhealthy_and_reroutes(
        self, data, served_dir, flat, fault_dir
    ):
        _, queries = data
        reference = flat.batch_query(queries[:6])

        async def scenario():
            options = ServingOptions(workers=1, max_retries=0)
            async with AsyncIndexServer(
                str(served_dir / "srv"),
                replicas=2,
                max_batch=8,
                max_wait_us=5_000,
                options=options,
            ) as server:
                # Warm both replicas' pools so the kill token lands in a
                # live worker, then arm exactly one worker kill: the
                # first batch after arming crashes its replica's pool,
                # retries are exhausted (max_retries=0), the server
                # marks that replica unhealthy and reroutes the batch.
                await asyncio.gather(*(server.query(q) for q in queries[:2]))
                faults.arm(fault_dir, "pool_worker", "kill", count=1)
                results = await asyncio.gather(
                    *(server.query(q) for q in queries[:6])
                )
                metrics = server.metrics()
                health = await server.check_health()
                return results, metrics, health

        results, metrics, health = asyncio.run(scenario())
        for served, ref in zip(results, reference):
            _assert_exact(served, ref)
        assert metrics["failed"] == 0
        assert metrics["rerouted"] >= 1
        # check_health re-probes: the crashed pool has respawned and the
        # shard files are intact, so the replica returns to rotation.
        assert health["ok"] is True
        assert health["unhealthy"] == []

    def test_check_health_reports_unhealthy_replicas(
        self, data, served_dir
    ):
        async def scenario():
            options = ServingOptions(workers=1)
            async with AsyncIndexServer(
                str(served_dir / "srv"), options=options
            ) as server:
                before = await server.check_health()
                faults.delete_bundle(served_dir / "srv.shard0")
                after = await server.check_health()
                return before, after

        before, after = asyncio.run(scenario())
        assert before["ok"] is True
        assert after["ok"] is False
        assert after["unhealthy"] == [0]
        assert after["replicas"][0]["ok"] is False


# ---------------------------------------------------------------------------
# hot swap
# ---------------------------------------------------------------------------


class TestHotSwap:
    @pytest.fixture(scope="class")
    def snapshots(self, tmp_path_factory):
        rng = np.random.default_rng(5)
        points_a = _clustered_points(N_POINTS, rng)
        points_b = _clustered_points(N_POINTS, rng)
        queries = np.concatenate(
            [points_a[:6], points_b[:6], _clustered_points(28, rng)]
        )
        root = tmp_path_factory.mktemp("swap")
        index_a = _spec(seed=21).build(points_a)
        index_b = _spec(seed=22).build(points_b)
        save_index(index_a, root / "a")
        save_index(index_b, root / "b")
        return root, index_a, index_b, queries

    def test_hot_swap_under_load_never_drops_or_mixes(self, snapshots):
        root, index_a, index_b, queries = snapshots
        oracle = {
            0: index_a.batch_query(queries),
            1: index_b.batch_query(queries),
        }
        waves = 12

        async def scenario():
            async with AsyncIndexServer(
                str(root / "a"),
                replicas=2,
                max_batch=16,
                max_wait_us=2_000,
            ) as server:
                # Pre-swap traffic must be generation 0.
                pre = await asyncio.gather(
                    *(server.query(q) for q in queries)
                )
                # Continuous load with the swap racing mid-stream.
                jobs = []

                async def wave(i):
                    await asyncio.sleep(0.002 * i)
                    return await asyncio.gather(
                        *(server.query(q) for q in queries)
                    )

                jobs = [asyncio.ensure_future(wave(i)) for i in range(waves)]
                await asyncio.sleep(0.010)
                swap_info = await server.swap(str(root / "b"))
                streamed = await asyncio.gather(*jobs)
                # Post-swap traffic must be generation 1.
                post = await asyncio.gather(
                    *(server.query(q) for q in queries)
                )
                return pre, streamed, post, swap_info, server.metrics()

        pre, streamed, post, swap_info, metrics = asyncio.run(scenario())
        assert swap_info["generation"] == 1
        for i, served in enumerate(pre):
            assert served.serve.snapshot == 0
            _assert_exact(served, oracle[0][i])
        for served in post:
            assert served.serve.snapshot == 1
        for i, served in enumerate(post):
            _assert_exact(served, oracle[1][i])
        # The racing waves: zero drops, and every response matches the
        # oracle of the snapshot generation that served it — never a mix.
        seen_generations = set()
        for results in streamed:
            assert len(results) == queries.shape[0]
            for i, served in enumerate(results):
                generation = served.serve.snapshot
                seen_generations.add(generation)
                _assert_exact(served, oracle[generation][i])
        assert metrics["failed"] == 0
        assert metrics["swaps"] == 1
        assert metrics["served"] == (waves + 2) * queries.shape[0]

    def test_batches_never_mix_generations(self, snapshots):
        root, index_a, index_b, queries = snapshots

        async def scenario():
            async with AsyncIndexServer(
                str(root / "a"), max_batch=64, max_wait_us=5_000
            ) as server:
                jobs = [
                    asyncio.ensure_future(server.query(q)) for q in queries
                ]
                await server.swap(str(root / "b"))
                return await asyncio.gather(*jobs)

        results = asyncio.run(scenario())
        # Requests sharing a coalesced batch must report one generation:
        # a batch resolves its snapshot exactly once, at dispatch.
        by_batch = {}
        for served in results:
            by_batch.setdefault(served.serve.batch_id, set()).add(
                served.serve.snapshot
            )
        for batch_id, generations in by_batch.items():
            assert len(generations) == 1, (batch_id, generations)

    def test_failed_swap_keeps_old_snapshot_serving(
        self, snapshots, tmp_path
    ):
        root, index_a, _, queries = snapshots
        broken = tmp_path / "broken"
        for suffix in (".npz", ".json"):
            shutil.copy2(
                str(root / "b") + suffix, str(broken) + suffix
            )
        faults.truncate_bundle(broken)
        reference = index_a.batch_query(queries[:4])

        async def scenario():
            async with AsyncIndexServer(str(root / "a")) as server:
                with pytest.raises(IndexIntegrityError):
                    await server.swap(str(broken))
                results = await asyncio.gather(
                    *(server.query(q) for q in queries[:4])
                )
                return results, server.metrics()

        results, metrics = asyncio.run(scenario())
        for served, ref in zip(results, reference):
            assert served.serve.snapshot == 0
            _assert_exact(served, ref)
        assert metrics["swaps"] == 0


# ---------------------------------------------------------------------------
# synchronous facade
# ---------------------------------------------------------------------------


class TestServerHandle:
    def test_handle_batch_query_coalesces_and_matches(
        self, saved_single, flat, data
    ):
        _, queries = data
        reference = flat.batch_query(queries)
        with serve_in_thread(
            str(saved_single), max_batch=16, max_wait_us=10_000
        ) as handle:
            results = handle.batch_query(queries)
            metrics = handle.metrics()
        for served, ref in zip(results, reference):
            _assert_exact(served, ref)
        assert metrics["mean_batch"] > 1.0

    def test_handle_swap_and_health(self, saved_single, data):
        _, queries = data
        with serve_in_thread(str(saved_single)) as handle:
            first = handle.query(queries[0])
            assert first.serve.snapshot == 0
            health = handle.check_health()
            assert health["ok"] is True
            info = handle.swap(str(saved_single))
            assert info["generation"] == 1
            assert handle.query(queries[0]).serve.snapshot == 1

    def test_handle_close_is_idempotent(self, saved_single):
        handle = serve_in_thread(str(saved_single))
        handle.close()
        handle.close()
