"""Tests for cube subsets and exact correlated-pair probabilities."""

import numpy as np
import pytest
from scipy.stats import binom

from repro.booleancube.sets import (
    correlated_pair_probability,
    hamming_ball,
    indicator_from_points,
    subcube,
    volume,
    volume_parameter,
)


class TestVolumes:
    def test_full_cube(self):
        assert volume(np.ones(16)) == 1.0
        assert volume_parameter(np.ones(16)) == 0.0

    def test_half_cube(self):
        ind = subcube(4, {0: 0})
        assert volume(ind) == 0.5
        assert volume_parameter(ind) == pytest.approx(np.sqrt(2 * np.log(2)))

    def test_empty_set_parameter_raises(self):
        with pytest.raises(ValueError):
            volume_parameter(np.zeros(8))


class TestHammingBall:
    def test_radius_zero(self):
        ind = hamming_ball(4, 0)
        assert volume(ind) == 1 / 16
        assert ind[0] == 1.0

    def test_radius_d_is_everything(self):
        assert volume(hamming_ball(5, 5)) == 1.0

    def test_ball_size_formula(self):
        d, r = 8, 3
        expected = sum(
            int(binom.pmf(k, d, 0.5) * 2**d) for k in range(r + 1)
        )
        # Compare against the exact binomial sum computed combinatorially.
        from math import comb

        expected = sum(comb(d, k) for k in range(r + 1))
        assert int(np.sum(hamming_ball(d, r))) == expected

    def test_custom_center(self):
        center = np.array([1, 1, 0])
        ind = hamming_ball(3, 0, center=center)
        idx = 1 * 1 + 1 * 2 + 0 * 4
        assert ind[idx] == 1.0 and np.sum(ind) == 1

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            hamming_ball(3, 4)


class TestSubcube:
    def test_two_pinned_coordinates(self):
        ind = subcube(5, {1: 1, 3: 0})
        assert volume(ind) == 0.25

    def test_bad_coordinate(self):
        with pytest.raises(ValueError):
            subcube(3, {5: 0})

    def test_bad_bit(self):
        with pytest.raises(ValueError):
            subcube(3, {0: 2})


class TestIndicatorFromPoints:
    def test_roundtrip(self):
        pts = np.array([[0, 0, 0], [1, 1, 1]])
        ind = indicator_from_points(3, pts)
        assert ind[0] == 1.0 and ind[7] == 1.0 and np.sum(ind) == 2


class TestCorrelatedPairProbability:
    def test_independent_case_factorizes(self):
        a = subcube(6, {0: 0})
        b = hamming_ball(6, 2)
        got = correlated_pair_probability(a, b, 0.0)
        assert got == pytest.approx(volume(a) * volume(b))

    def test_alpha_one_is_intersection(self):
        a = subcube(5, {0: 0})
        b = subcube(5, {0: 0, 1: 1})
        got = correlated_pair_probability(a, b, 1.0)
        assert got == pytest.approx(volume(a * b))

    def test_symmetric_in_arguments(self):
        a = hamming_ball(6, 1)
        b = subcube(6, {2: 1})
        assert correlated_pair_probability(a, b, 0.37) == pytest.approx(
            correlated_pair_probability(b, a, 0.37)
        )

    def test_matches_direct_summation(self):
        # Tiny d: direct double sum over the channel.
        d, alpha = 4, 0.5
        rng = np.random.default_rng(0)
        a = (rng.random(2**d) < 0.4).astype(float)
        b = (rng.random(2**d) < 0.6).astype(float)
        from repro.booleancube.walsh import enumerate_cube

        cube = enumerate_cube(d).astype(np.int64)
        flip = (1 - alpha) / 2
        dists = np.count_nonzero(cube[:, None, :] != cube[None, :, :], axis=2)
        channel = (flip**dists) * ((1 - flip) ** (d - dists))
        direct = float(a @ channel @ b) / 2**d
        assert correlated_pair_probability(a, b, alpha) == pytest.approx(direct)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            correlated_pair_probability(np.ones(4), np.ones(8), 0.2)
