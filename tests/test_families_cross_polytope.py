"""Tests for cross-polytope LSH / DSH (Section 2.1)."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability
from repro.families.cross_polytope import (
    CrossPolytope,
    FastCrossPolytope,
    asymptotic_log_inv_cpf,
    collision_probability,
    negated_cross_polytope,
)
from repro.spaces import sphere

D = 16


def _sampler(alpha, d=D):
    def sampler(n, rng):
        return sphere.pairs_at_inner_product(n, d, alpha, rng)

    return sampler


class TestCrossPolytope:
    def test_identical_points_always_collide(self):
        fam = CrossPolytope(D)
        x = sphere.random_points(40, D, rng=0)
        for pair in fam.sample_pairs(5, rng=1):
            assert np.all(pair.collides(x, x))

    def test_antipodal_points_never_collide(self):
        fam = CrossPolytope(D)
        x = sphere.random_points(40, D, rng=2)
        for pair in fam.sample_pairs(5, rng=3):
            assert not np.any(pair.collides(x, -x))

    def test_hash_range(self):
        pair = CrossPolytope(D).sample(rng=4)
        values = pair.hash_data(sphere.random_points(200, D, rng=5))
        assert values.min() >= 0 and values.max() < 2 * D

    def test_cpf_increasing_in_inner_product(self):
        fam = CrossPolytope(D)
        ps = [
            estimate_collision_probability(
                fam, _sampler(a), n_functions=120, pairs_per_function=60, rng=6
            ).p_hat
            for a in [-0.5, 0.0, 0.7]
        ]
        assert ps[0] < ps[1] < ps[2]

    def test_measured_matches_projected_space_estimator(self):
        """Full hashing and the cheap projected-space estimator agree."""
        alpha = 0.5
        est = estimate_collision_probability(
            CrossPolytope(D),
            _sampler(alpha),
            n_functions=250,
            pairs_per_function=100,
            rng=7,
        )
        fast = collision_probability(alpha, D, n_samples=400_000, rng=8)
        assert est.contains(fast)


class TestNegatedCrossPolytope:
    def test_cpf_decreasing_in_inner_product(self):
        fam = negated_cross_polytope(D)
        ps = [
            estimate_collision_probability(
                fam, _sampler(a), n_functions=120, pairs_per_function=60, rng=9
            ).p_hat
            for a in [-0.7, 0.0, 0.5]
        ]
        assert ps[0] > ps[1] > ps[2]

    def test_corollary22_mirror_identity(self):
        """f_-(alpha) = f_+(-alpha) via the projected-space estimator."""
        plus = collision_probability(0.4, D, negated=False, n_samples=300_000, rng=10)
        minus = collision_probability(-0.4, D, negated=True, n_samples=300_000, rng=11)
        assert plus == pytest.approx(minus, rel=0.08)

    def test_identical_points_rarely_collide(self):
        """The anti-LSH property: close points avoid collisions."""
        fam = negated_cross_polytope(D)
        x = sphere.random_points(60, D, rng=12)
        rate = np.mean(
            [pair.collides(x, x).mean() for pair in fam.sample_pairs(20, rng=13)]
        )
        sym_rate = np.mean(
            [
                pair.collides(x, x).mean()
                for pair in CrossPolytope(D).sample_pairs(20, rng=14)
            ]
        )
        assert rate < 0.05 and sym_rate == 1.0


class TestFastCrossPolytope:
    def test_identical_points_always_collide(self):
        fam = FastCrossPolytope(24)  # exercises padding to 32
        x = sphere.random_points(30, 24, rng=15)
        for pair in fam.sample_pairs(5, rng=16):
            assert np.all(pair.collides(x, x))

    def test_cpf_shape_comparable_to_dense(self):
        alpha = 0.6
        dense = estimate_collision_probability(
            CrossPolytope(D), _sampler(alpha), n_functions=150, pairs_per_function=80, rng=17
        )
        fast = estimate_collision_probability(
            FastCrossPolytope(D), _sampler(alpha), n_functions=150, pairs_per_function=80, rng=18
        )
        # Pseudo-rotations approximate the dense behaviour.
        assert fast.p_hat == pytest.approx(dense.p_hat, abs=0.05)


class TestAsymptotics:
    def test_theorem21_slope_in_d(self):
        """ln(1/f(alpha)) grows like ((1-alpha)/(1+alpha)) ln d."""
        alpha = 0.5
        ratio_small = -np.log(
            collision_probability(alpha, 8, n_samples=400_000, rng=19)
        ) / np.log(8)
        ratio_large = -np.log(
            collision_probability(alpha, 128, n_samples=400_000, rng=20)
        ) / np.log(128)
        target = (1 - alpha) / (1 + alpha)
        # The O(ln ln d / ln d) correction shrinks with d: larger d is closer.
        assert abs(ratio_large - target) < abs(ratio_small - target) + 0.05
        assert ratio_large == pytest.approx(target, abs=0.25)

    def test_asymptotic_helper_values(self):
        assert asymptotic_log_inv_cpf(0.0, 10) == pytest.approx(np.log(10))
        assert asymptotic_log_inv_cpf(0.5, 10, negated=True) == pytest.approx(
            3.0 * np.log(10)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_probability(1.0, 8)
        with pytest.raises(ValueError):
            asymptotic_log_inv_cpf(0.0, 1)
