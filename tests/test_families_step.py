"""Tests for step-function CPF design (Figure 2)."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability
from repro.families.step import design_step_family, step_quality
from repro.spaces import euclidean

D = 6


class TestDesign:
    def test_flatness_on_target_region(self):
        design = design_step_family(D, r_flat=5.0, level=0.1, n_components=5)
        assert design.f_max / design.f_min < 1.25
        assert design.f_min > 0.05

    def test_tail_below_flat_region(self):
        design = design_step_family(D, r_flat=4.0, level=0.1, n_components=5)
        assert design.tail < design.f_min

    def test_weights_form_probability_vector(self):
        design = design_step_family(D, r_flat=5.0, level=0.08, n_components=6)
        assert design.weights.min() >= 0
        assert design.weights.sum() == pytest.approx(1.0)

    def test_measured_collision_rates_match_design(self):
        design = design_step_family(D, r_flat=5.0, level=0.1, n_components=5)
        for delta in [0.5, 2.5, 5.0, 12.0]:
            est = estimate_collision_probability(
                design.family,
                lambda n, rng, dd=delta: euclidean.pairs_at_distance(n, D, dd, rng),
                n_functions=400,
                pairs_per_function=50,
                rng=int(delta * 10),
            )
            assert est.contains(float(design.cpf(delta))), f"delta={delta}"

    def test_level_validation(self):
        with pytest.raises(ValueError):
            design_step_family(D, r_flat=5.0, level=0.9)
        with pytest.raises(ValueError):
            design_step_family(D, r_flat=5.0, level=0.1, n_components=1)
        with pytest.raises(ValueError):
            design_step_family(D, r_flat=-1.0, level=0.1)


class TestStepQuality:
    def test_reports_extremes(self):
        design = design_step_family(D, r_flat=5.0, level=0.1, n_components=5)
        f_min, f_max, tail = step_quality(design.cpf, 5.0, 10.0)
        assert f_min <= f_max
        assert tail <= f_max

    def test_r_cut_must_exceed_r_flat(self):
        design = design_step_family(D, r_flat=5.0, level=0.1, n_components=4)
        with pytest.raises(ValueError):
            step_quality(design.cpf, 5.0, 4.0)
