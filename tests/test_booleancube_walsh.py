"""Tests for the Walsh-Hadamard transform substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleancube.walsh import (
    enumerate_cube,
    fourier_coefficients,
    inverse_fourier,
    popcounts,
    walsh_hadamard_transform,
)


class TestEnumerateCube:
    def test_d2(self):
        cube = enumerate_cube(2)
        np.testing.assert_array_equal(cube, [[0, 0], [1, 0], [0, 1], [1, 1]])

    def test_d0(self):
        assert enumerate_cube(0).shape == (1, 0)

    def test_large_d_rejected(self):
        with pytest.raises(ValueError):
            enumerate_cube(30)


class TestPopcounts:
    def test_d3(self):
        np.testing.assert_array_equal(popcounts(3), [0, 1, 1, 2, 1, 2, 2, 3])


class TestTransform:
    def test_matches_dense_matrix(self):
        d = 4
        rng = np.random.default_rng(0)
        f = rng.standard_normal(2**d)
        cube = enumerate_cube(d).astype(np.int64)
        # Dense character matrix H[S, x] = (-1)^{<S,x>}.
        dots = cube @ cube.T
        dense = ((-1.0) ** dots) @ f
        np.testing.assert_allclose(walsh_hadamard_transform(f), dense, atol=1e-9)

    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=99))
    @settings(max_examples=25)
    def test_involution_up_to_scale(self, d, seed):
        f = np.random.default_rng(seed).standard_normal(2**d)
        twice = walsh_hadamard_transform(walsh_hadamard_transform(f))
        np.testing.assert_allclose(twice, (2**d) * f, atol=1e-8)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            walsh_hadamard_transform(np.zeros(6))

    def test_does_not_mutate_input(self):
        f = np.ones(8)
        walsh_hadamard_transform(f)
        np.testing.assert_array_equal(f, np.ones(8))


class TestFourier:
    def test_constant_function(self):
        coeffs = fourier_coefficients(np.full(8, 3.0))
        assert coeffs[0] == pytest.approx(3.0)
        np.testing.assert_allclose(coeffs[1:], 0.0, atol=1e-12)

    def test_single_character(self):
        # f = chi_{S} for S = {0} on d=3: f(x) = (-1)^{x_0}.
        cube = enumerate_cube(3)
        f = (-1.0) ** cube[:, 0]
        coeffs = fourier_coefficients(f)
        expected = np.zeros(8)
        expected[1] = 1.0  # index of S = {0} is binary 001
        np.testing.assert_allclose(coeffs, expected, atol=1e-12)

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=99))
    @settings(max_examples=25)
    def test_roundtrip(self, d, seed):
        f = np.random.default_rng(seed).standard_normal(2**d)
        np.testing.assert_allclose(
            inverse_fourier(fourier_coefficients(f)), f, atol=1e-9
        )

    def test_parseval(self):
        f = np.random.default_rng(5).standard_normal(16)
        coeffs = fourier_coefficients(f)
        assert np.sum(coeffs**2) == pytest.approx(np.mean(f**2))
