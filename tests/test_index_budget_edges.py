"""Budget edge cases for the Theorem 6.1 early-termination device.

Covers, on both storage backends: a zero budget (degenerate truncation at
the first table), a budget landing exactly on a table boundary, exact-hit
truncation in the batched hits path, and the laziness contract — tables
past the stopping point must never even be *hashed*.
"""

import numpy as np
import pytest

from repro.core.family import DSHFamily, HashPair
from repro.families.bit_sampling import BitSampling
from repro.index import DSHIndex, clip_batch_hits
from repro.spaces import hamming

BACKENDS = ["dict", "packed"]


class CountingFamily(DSHFamily):
    """Wraps a family, counting query-side hash evaluations."""

    def __init__(self, base):
        self.base = base
        self.query_hashes = 0

    def sample(self, rng=None):
        inner = self.base.sample(rng)
        outer = self

        def g(points):
            outer.query_hashes += 1
            return inner.g(points)

        return HashPair(h=inner.h, g=g, meta=inner.meta)


def _full_bucket_index(n_points, n_tables, backend, d=8, rng=0):
    """All-identical points: every table has one bucket of size n_points,
    so retrieval counts per table are exact and predictable."""
    points = np.zeros((n_points, d), dtype=np.int8)
    index = DSHIndex(
        BitSampling(d), n_tables=n_tables, rng=rng, backend=backend
    ).build(points)
    return index, points


class TestZeroBudget:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_query(self, backend):
        index, points = _full_bucket_index(10, 5, backend)
        candidates, stats = index.query(points[0], max_retrieved=0)
        # The reference scan consumes the first table, then notices the
        # budget is already spent: one table probed, marked truncated.
        assert stats.truncated
        assert stats.tables_probed == 1
        assert stats.retrieved == 10
        assert candidates == list(range(10))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_query(self, backend):
        index, points = _full_bucket_index(10, 5, backend)
        for candidates, stats in index.batch_query(points[:3], max_retrieved=0):
            assert stats.truncated and stats.tables_probed == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_hits_zero_budget(self, backend):
        index, points = _full_bucket_index(10, 5, backend)
        block = index.batch_query_hits(points[:3], max_hits=0)
        assert block.hits.size == 0
        assert block.truncated.all()
        np.testing.assert_array_equal(block.offsets, [0, 0, 0, 0])


class TestTableBoundaryBudget:
    """Budgets that land exactly on a table boundary: the scan must stop
    *at* the boundary table (it is the truncating table), not after one
    more."""

    N, L = 12, 6

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k_tables", [1, 2, 5, 6])
    def test_exact_boundary(self, backend, k_tables):
        index, points = _full_bucket_index(self.N, self.L, backend)
        budget = self.N * k_tables  # exactly k full tables
        _, stats = index.query(points[0], max_retrieved=budget)
        assert stats.retrieved == budget
        assert stats.tables_probed == k_tables
        # Reaching the budget exactly counts as truncation even at the
        # last table (the scan cannot know no more hits would follow).
        assert stats.truncated

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_past_boundary(self, backend):
        index, points = _full_bucket_index(self.N, self.L, backend)
        _, stats = index.query(points[0], max_retrieved=self.N + 1)
        # One hit beyond a full table forces the whole next table in.
        assert stats.tables_probed == 2
        assert stats.retrieved == 2 * self.N

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_matches_single_at_boundaries(self, backend):
        index, points = _full_bucket_index(self.N, self.L, backend)
        queries = points[:4]
        for budget in [self.N - 1, self.N, self.N + 1, self.N * self.L,
                       self.N * self.L + 1]:
            batched = index.batch_query(queries, max_retrieved=budget)
            for i in range(queries.shape[0]):
                assert index.query(queries[i], max_retrieved=budget) == batched[i]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_hits_exact_clip(self, backend):
        """batch_query_hits truncates at *hit* granularity: a budget of
        one-and-a-half tables yields exactly that many hits."""
        index, points = _full_bucket_index(self.N, self.L, backend)
        max_hits = self.N + self.N // 2
        block = index.batch_query_hits(points[:2], max_hits=max_hits)
        for i in range(2):
            assert block.segment(i).size == max_hits
            assert block.truncated[i]
            np.testing.assert_array_equal(
                block.table_counts[i], [self.N, self.N // 2, 0, 0, 0, 0]
            )
            assert block.table_of(i, max_hits - 1) == 1


class TestOneBudget:
    """``max_retrieved=1``: the smallest budget that still demands a hit.
    Any non-empty first table overshoots it, so the scan must stop at
    whichever table first yields anything."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_query(self, backend):
        index, points = _full_bucket_index(10, 5, backend)
        candidates, stats = index.query(points[0], max_retrieved=1)
        assert stats.truncated
        assert stats.tables_probed == 1
        assert stats.retrieved == 10  # the whole truncating table counts
        assert candidates == list(range(10))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_matches_single(self, backend):
        index, points = _full_bucket_index(10, 5, backend)
        batched = index.batch_query(points[:4], max_retrieved=1)
        for i in range(4):
            assert index.query(points[i], max_retrieved=1) == batched[i]

    def test_backends_agree_on_mixed_buckets(self):
        points = hamming.random_points(60, 10, rng=4)
        queries = hamming.random_points(8, 10, rng=5)
        results = {}
        for backend in BACKENDS:
            index = DSHIndex(
                BitSampling(10), n_tables=6, rng=2, backend=backend
            ).build(points)
            results[backend] = index.batch_query(queries, max_retrieved=1)
        assert results["dict"] == results["packed"]


class TestFullTableCountsContract:
    """``BatchHits.full_table_counts`` carries the *pre-clip* per-table
    counts whenever ``max_hits`` clipped the stream — the sharded merge
    relies on it to reconstruct exact merged truncation."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_none_without_max_hits(self, backend):
        index, points = _full_bucket_index(10, 4, backend)
        block = index.batch_query_hits(points[:3])
        assert block.full_table_counts is None
        # The property falls back to the (identical) clipped counts.
        np.testing.assert_array_equal(
            block.pre_clip_table_counts, block.table_counts
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_counts_are_the_unclipped_counts(self, backend):
        index, points = _full_bucket_index(10, 4, backend)
        unclipped = index.batch_query_hits(points[:3])
        clipped = index.batch_query_hits(points[:3], max_hits=15)
        assert clipped.full_table_counts is not None
        np.testing.assert_array_equal(
            clipped.full_table_counts, unclipped.table_counts
        )
        np.testing.assert_array_equal(
            clipped.pre_clip_table_counts, unclipped.table_counts
        )
        # The clipped counts sum to exactly the cap for every query.
        np.testing.assert_array_equal(
            clipped.table_counts.sum(axis=1), [15, 15, 15]
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_hits_on_exact_table_boundary(self, backend):
        index, points = _full_bucket_index(10, 4, backend)
        block = index.batch_query_hits(points[:2], max_hits=20)  # = 2 tables
        for i in range(2):
            assert block.segment(i).size == 20
            np.testing.assert_array_equal(
                block.table_counts[i], [10, 10, 0, 0]
            )
            np.testing.assert_array_equal(
                block.full_table_counts[i], [10, 10, 10, 10]
            )

    def test_backends_agree_on_both_fields(self):
        points = hamming.random_points(80, 10, rng=7)
        queries = hamming.random_points(6, 10, rng=8)
        blocks = {}
        for backend in BACKENDS:
            index = DSHIndex(
                BitSampling(10), n_tables=5, rng=3, backend=backend
            ).build(points)
            blocks[backend] = index.batch_query_hits(queries, max_hits=7)
        np.testing.assert_array_equal(
            blocks["dict"].table_counts, blocks["packed"].table_counts
        )
        np.testing.assert_array_equal(
            blocks["dict"].full_table_counts,
            blocks["packed"].full_table_counts,
        )
        np.testing.assert_array_equal(
            blocks["dict"].hits, blocks["packed"].hits
        )


class TestClipBatchHits:
    """Unit tests for the worker-side table-granularity clip applied by
    pool workers before shipping results to the parent."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_direct_budget_scan(self, backend):
        points = hamming.random_points(70, 10, rng=9)
        queries = hamming.random_points(6, 10, rng=10)
        index = DSHIndex(
            BitSampling(10), n_tables=6, rng=1, backend=backend
        ).build(points)
        full = index.batch_query_hits(queries)
        for budget in [0, 1, 5, 30, 10_000]:
            clipped = clip_batch_hits(full, index.n_tables, budget)
            np.testing.assert_array_equal(
                clipped.pre_clip_table_counts, full.table_counts
            )
            # Every kept hit sits in a table at or before the stopping
            # table the un-sharded budget scan would have probed.
            for i in range(queries.shape[0]):
                _, stats = index.query(queries[i], max_retrieved=budget)
                kept = clipped.table_counts[i]
                assert (kept[stats.tables_probed:] == 0).all()
                assert kept.sum() == stats.retrieved

    def test_budget_zero_keeps_first_table(self):
        index, points = _full_bucket_index(10, 4, "packed")
        clipped = clip_batch_hits(
            index.batch_query_hits(points[:2]), index.n_tables, 0
        )
        np.testing.assert_array_equal(clipped.table_counts[0], [10, 0, 0, 0])
        assert clipped.truncated.all()
        np.testing.assert_array_equal(clipped.segment(0), np.arange(10))

    def test_budget_on_table_boundary(self):
        index, points = _full_bucket_index(10, 4, "packed")
        clipped = clip_batch_hits(
            index.batch_query_hits(points[:1]), index.n_tables, 20
        )
        np.testing.assert_array_equal(clipped.table_counts[0], [10, 10, 0, 0])
        assert clipped.truncated[0]  # exactly-met budget counts as truncation

    def test_none_budget_is_identity(self):
        index, points = _full_bucket_index(10, 4, "packed")
        block = index.batch_query_hits(points[:2])
        assert clip_batch_hits(block, index.n_tables, None) is block

    def test_double_clip_rejected(self):
        index, points = _full_bucket_index(10, 4, "packed")
        clipped = clip_batch_hits(
            index.batch_query_hits(points[:2]), index.n_tables, 5
        )
        with pytest.raises(ValueError, match="unclipped"):
            clip_batch_hits(clipped, index.n_tables, 5)


class TestHashLaziness:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_truncated_single_query_stops_hashing(self, backend):
        family = CountingFamily(BitSampling(8))
        points = np.zeros((20, 8), dtype=np.int8)
        index = DSHIndex(family, n_tables=8, rng=0, backend=backend).build(points)
        family.query_hashes = 0
        _, stats = index.query(points[0], max_retrieved=1)
        assert stats.truncated and stats.tables_probed == 1
        assert family.query_hashes == 1  # tables 2..8 never hashed

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_iter_candidates_is_lazy(self, backend):
        """Consuming a prefix of the candidate stream must hash only the
        tables actually reached — the annulus search contract."""
        family = CountingFamily(BitSampling(8))
        points = np.zeros((20, 8), dtype=np.int8)
        index = DSHIndex(family, n_tables=8, rng=0, backend=backend).build(points)
        family.query_hashes = 0
        stream = index.iter_candidates(points[0])
        for _ in range(5):  # 5 hits < 20 per table: still inside table 1
            next(stream)
        assert family.query_hashes == 1
        # Draining into table 2 hashes exactly one more table.
        for _ in range(20):
            next(stream)
        assert family.query_hashes == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_untruncated_query_hashes_every_table(self, backend):
        family = CountingFamily(BitSampling(8))
        points = hamming.random_points(30, 8, rng=1)
        index = DSHIndex(family, n_tables=6, rng=0, backend=backend).build(points)
        family.query_hashes = 0
        index.query(points[0])
        assert family.query_hashes == 6
