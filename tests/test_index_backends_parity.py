"""Differential parity suite: dict vs packed index backends.

The ``"dict"`` backend buckets exact serialized component rows — it is the
injective reference.  The ``"packed"`` backend buckets 64-bit fingerprints
in CSR arrays with fully vectorized probing.  These tests assert the two
are *observably identical* — same candidate sets, same candidate order,
same ``QueryStats`` fields — for every family with an index application
(bit-sampling, simhash, Euclidean LSH, the sphere annulus family, and
cross-polytope), across seeds and across the ``max_retrieved`` truncation
paths, and that ``batch_query`` matches per-query ``query`` on
both backends.
"""

import numpy as np
import pytest

from repro.core.combinators import PoweredFamily
from repro.families.annulus_sphere import AnnulusFamily
from repro.families.bit_sampling import BitSampling
from repro.families.cross_polytope import CrossPolytope, negated_cross_polytope
from repro.families.euclidean_lsh import ShiftedGaussianProjection
from repro.families.simhash import SimHash
from repro.index import DSHIndex
from repro.spaces import euclidean, hamming, sphere

N_POINTS = 250
N_QUERIES = 12
N_TABLES = 8

# (case id, family factory, point sampler (n, rng) -> (n, d)).  Every family
# that backs an index example in the repo appears here; several produce
# multi-component rows (powered / annulus families), several are genuinely
# asymmetric (shifted Euclidean, annulus, negated cross-polytope).
FAMILY_CASES = [
    (
        "bit-sampling",
        lambda: PoweredFamily(BitSampling(24), 4),
        lambda n, rng: hamming.random_points(n, 24, rng=rng),
    ),
    (
        "simhash",
        lambda: PoweredFamily(SimHash(10), 5),
        lambda n, rng: sphere.random_points(n, 10, rng=rng),
    ),
    (
        "euclidean-lsh",
        lambda: ShiftedGaussianProjection(8, w=2.0, k=2),
        lambda n, rng: euclidean.random_points(n, 8, rng=rng),
    ),
    (
        "annulus",
        lambda: AnnulusFamily(12, alpha_max=0.3, t=1.5),
        lambda n, rng: sphere.random_points(n, 12, rng=rng),
    ),
    (
        "cross-polytope",
        lambda: PoweredFamily(CrossPolytope(6), 2),
        lambda n, rng: sphere.random_points(n, 6, rng=rng),
    ),
    (
        "negated-cross-polytope",
        lambda: negated_cross_polytope(6),
        lambda n, rng: sphere.random_points(n, 6, rng=rng),
    ),
]
CASE_IDS = [case[0] for case in FAMILY_CASES]
SEEDS = [0, 1, 2]


def _build_both(family_factory, sampler, seed):
    """Build dict and packed indexes over identical points with identical
    hash pairs (same rng seed), plus a query batch mixing data points
    (guaranteed hits for symmetric families) and fresh points."""
    points = sampler(N_POINTS, 100 + seed)
    fresh = sampler(N_QUERIES // 2, 200 + seed)
    queries = np.concatenate([points[: N_QUERIES - fresh.shape[0]], fresh])
    dict_index = DSHIndex(
        family_factory(), N_TABLES, rng=seed, backend="dict"
    ).build(points)
    packed_index = DSHIndex(
        family_factory(), N_TABLES, rng=seed, backend="packed"
    ).build(points)
    return dict_index, packed_index, queries


@pytest.fixture(
    scope="module",
    params=[(case, seed) for case in FAMILY_CASES for seed in SEEDS],
    ids=[f"{case_id}-seed{seed}" for case_id in CASE_IDS for seed in SEEDS],
)
def backend_pair(request):
    (_, family_factory, sampler), seed = request.param
    return _build_both(family_factory, sampler, seed)


class TestBackendParity:
    def test_backend_names(self, backend_pair):
        dict_index, packed_index, _ = backend_pair
        assert dict_index.backend == "dict"
        assert packed_index.backend == "packed"

    def test_single_query_identical(self, backend_pair):
        dict_index, packed_index, queries = backend_pair
        for q in queries:
            d_cands, d_stats = dict_index.query(q)
            p_cands, p_stats = packed_index.query(q)
            assert d_cands == p_cands  # set AND first-seen order
            assert d_stats == p_stats  # every QueryStats field
            assert d_stats.duplicates == p_stats.duplicates

    def test_batch_query_identical(self, backend_pair):
        dict_index, packed_index, queries = backend_pair
        dict_results = dict_index.batch_query(queries)
        packed_results = packed_index.batch_query(queries)
        assert len(dict_results) == len(packed_results) == queries.shape[0]
        for (d_cands, d_stats), (p_cands, p_stats) in zip(
            dict_results, packed_results
        ):
            assert d_cands == p_cands
            assert d_stats == p_stats

    def test_truncation_paths_identical(self, backend_pair):
        """max_retrieved budgets (including degenerate ones) stop both
        backends at the same table with the same partial results."""
        dict_index, packed_index, queries = backend_pair
        for budget in [0, 1, 3, 10, 10_000]:
            dict_results = dict_index.batch_query(queries, max_retrieved=budget)
            packed_results = packed_index.batch_query(queries, max_retrieved=budget)
            for q, (d_res, p_res) in enumerate(zip(dict_results, packed_results)):
                assert d_res == p_res
                single_d = dict_index.query(
                    queries[q], max_retrieved=budget
                )
                assert single_d == d_res
            # Tight budgets must actually truncate on both sides whenever
            # anything was retrieved at all.
            if budget == 0:
                for (_, d_stats), (_, p_stats) in zip(dict_results, packed_results):
                    assert d_stats.truncated and p_stats.truncated
                    assert d_stats.tables_probed == p_stats.tables_probed == 1

    def test_iter_candidates_identical(self, backend_pair):
        dict_index, packed_index, queries = backend_pair
        for q in queries[:4]:
            assert list(dict_index.iter_candidates(q)) == list(
                packed_index.iter_candidates(q)
            )

    def test_query_hits_identical(self, backend_pair):
        dict_index, packed_index, queries = backend_pair
        for q in queries[:4]:
            np.testing.assert_array_equal(
                dict_index.query_hits(q), packed_index.query_hits(q)
            )

    def test_bucket_size_distribution_identical(self, backend_pair):
        dict_index, packed_index, _ = backend_pair
        d_sizes = sorted(dict_index.bucket_sizes())
        p_sizes = sorted(packed_index.bucket_sizes())
        assert d_sizes == p_sizes
        assert sum(d_sizes) == N_POINTS * N_TABLES

    def test_bucket_dtype_is_int64_on_both_backends(self, backend_pair):
        """The ``bucket()`` contract promises int64 regardless of backend:
        the packed backend narrows stored ids to int32 when they fit, and
        must widen at this surface instead of leaking dtype drift to
        callers that mix backends.  Covers both populated and empty
        buckets plus the batched hits surface."""
        dict_index, packed_index, queries = backend_pair
        for index in (dict_index, packed_index):
            saw_hit = False
            for q in queries:
                for t, pair in enumerate(index._pairs):
                    bucket = index._backend.bucket(
                        t, pair.hash_query(np.atleast_2d(q))
                    )
                    assert bucket.dtype == np.int64, index.backend
                    saw_hit |= bucket.size > 0
            assert index.batch_query_hits(queries).hits.dtype == np.int64
            assert saw_hit  # data points guarantee at least one hit


class TestBatchMatchesSingle:
    """Property/regression: ``batch_query`` must agree with per-query
    ``query`` on *each* backend (historically two separate code
    paths that could drift)."""

    @pytest.mark.parametrize("backend", ["dict", "packed"])
    @pytest.mark.parametrize("max_retrieved", [None, 0, 2, 25])
    def test_batch_equals_singles(self, backend, max_retrieved):
        rng = np.random.default_rng(7)
        points = hamming.random_points(300, 16, rng=rng)
        queries = hamming.random_points(15, 16, rng=rng)
        index = DSHIndex(
            PoweredFamily(BitSampling(16), 3), n_tables=10, rng=3, backend=backend
        ).build(points)
        batched = index.batch_query(queries, max_retrieved=max_retrieved)
        for i in range(queries.shape[0]):
            single = index.query(queries[i], max_retrieved=max_retrieved)
            assert single == batched[i]

    @pytest.mark.parametrize("backend", ["dict", "packed"])
    def test_duplicate_heavy_batch(self, backend):
        """Identical points force maximal duplicates; dedup and stats must
        still agree between the two entry points."""
        points = np.zeros((30, 8), dtype=np.int8)
        index = DSHIndex(
            BitSampling(8), n_tables=6, rng=5, backend=backend
        ).build(points)
        queries = np.zeros((4, 8), dtype=np.int8)
        for (cands, stats), i in zip(index.batch_query(queries), range(4)):
            single_cands, single_stats = index.query(queries[i])
            assert cands == single_cands == list(range(30))
            assert stats == single_stats
            assert stats.retrieved == 30 * 6


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown index backend"):
            DSHIndex(BitSampling(8), n_tables=2, rng=0, backend="b-tree")

    def test_backend_instance_cannot_be_shared(self):
        """A storage instance holds one index's tables; re-attaching it to
        a second DSHIndex would let the second build clobber the first."""
        from repro.index import PackedBackend

        shared = PackedBackend()
        DSHIndex(BitSampling(8), n_tables=2, rng=0, backend=shared)
        with pytest.raises(ValueError, match="already attached"):
            DSHIndex(BitSampling(8), n_tables=2, rng=1, backend=shared)

    @pytest.mark.parametrize("backend", ["dict", "packed"])
    def test_truncated_single_query_hashes_lazily(self, backend):
        """A truncating budget must stop per-table hash evaluation, not
        just bucket walks: only the probed tables' g's may run."""
        from repro.core.family import DSHFamily, HashPair

        class CountingFamily(DSHFamily):
            def __init__(self, base):
                self.base = base
                self.query_hashes = 0

            def sample(self, rng=None):
                inner = self.base.sample(rng)
                outer = self

                def g(points):
                    outer.query_hashes += 1
                    return inner.g(points)

                return HashPair(h=inner.h, g=g, meta=inner.meta)

        family = CountingFamily(BitSampling(8))
        points = np.zeros((20, 8), dtype=np.int8)  # every bucket is full
        index = DSHIndex(family, n_tables=8, rng=0, backend=backend).build(points)
        family.query_hashes = 0
        _, stats = index.query(points[0], max_retrieved=1)
        assert stats.truncated and stats.tables_probed == 1
        assert family.query_hashes == 1  # tables 2..8 never hashed

    def test_instance_and_class_specs(self):
        from repro.index import DictBackend, PackedBackend

        points = hamming.random_points(50, 8, rng=0)
        by_class = DSHIndex(
            BitSampling(8), n_tables=2, rng=1, backend=PackedBackend
        ).build(points)
        by_instance = DSHIndex(
            BitSampling(8), n_tables=2, rng=1, backend=DictBackend()
        ).build(points)
        assert by_class.backend == "packed"
        assert by_instance.backend == "dict"
        q = points[0]
        assert by_class.query(q) == by_instance.query(q)

    def test_applications_accept_backend(self):
        """The Section 6 applications route the backend choice through."""
        from repro.data.synthetic import planted_sphere_annulus
        from repro.index import sphere_annulus_index

        inst = planted_sphere_annulus(120, 16, (0.4, 0.5), rng=11)
        results = {}
        for backend in ["dict", "packed"]:
            index = sphere_annulus_index(
                inst.points, (0.3, 0.6), t=1.5, n_tables=40, rng=12, backend=backend
            )
            result = index.query(inst.query)
            results[backend] = result
        assert results["dict"].index == results["packed"].index
        assert (
            results["dict"].candidates_examined
            == results["packed"].candidates_examined
        )
        np.testing.assert_equal(
            results["dict"].proximity, results["packed"].proximity
        )
