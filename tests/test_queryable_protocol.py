"""Protocol conformance: every query surface is a drop-in Queryable.

Local application indexes (raw, annulus, hyperplane, range reporting),
sharded serving (in-process and process-pool), and the async serving
tier's synchronous handle must all satisfy the
:class:`repro.index.queryable.Queryable` protocol with the same
semantics: ``query`` returns a ``.stats``-carrying result and
``batch_query`` returns one such result per row, element-for-element
identical to a ``query`` loop.
"""

import numpy as np
import pytest

from repro.api import IndexSpec, build_index, save_index
from repro.data.synthetic import planted_euclidean_range
from repro.index.queryable import Queryable
from repro.serving import ServingOptions, ShardedIndex, serve_in_thread
from repro.spaces import hamming, sphere

D = 16
N_TABLES = 6


def _raw_spec(shards=1):
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": 3},
        n_tables=N_TABLES,
        seed=13,
        shards=shards,
    )


@pytest.fixture(scope="module")
def hamming_data():
    rng = np.random.default_rng(42)
    points = hamming.random_points(150, D, rng=rng)
    queries = np.concatenate(
        [points[:4], hamming.random_points(4, D, rng=rng)]
    )
    return points, queries


@pytest.fixture(scope="module")
def sphere_data():
    points = sphere.random_points(150, 8, rng=0)
    return points, points[:6]


@pytest.fixture(scope="module")
def range_data():
    inst = planted_euclidean_range(150, 8, 4.0, n_near=8, rng=3)
    return inst.points, np.atleast_2d(inst.query)


@pytest.fixture(scope="module")
def sharded_path(tmp_path_factory, hamming_data):
    points, _ = hamming_data
    path = tmp_path_factory.mktemp("queryable") / "srv"
    save_index(_raw_spec(shards=2).build(points), path)
    return path


def _surfaces(hamming_data, sphere_data, range_data, sharded_path):
    """(name, make, queries) for every queryable surface; ``make``
    returns (index, close_callable)."""
    h_points, h_queries = hamming_data
    s_points, s_queries = sphere_data
    r_points, r_queries = range_data

    def plain(index):
        return lambda: (index, lambda: None)

    return [
        ("raw", plain(_raw_spec().build(h_points)), h_queries),
        (
            "annulus",
            plain(
                build_index(
                    s_points, kind="annulus", family="annulus_sphere",
                    t=1.5, interval=(0.2, 0.6), n_tables=8, rng=1,
                )
            ),
            s_queries,
        ),
        (
            "hyperplane",
            plain(
                build_index(
                    s_points, kind="hyperplane", alpha=0.3, t=1.4,
                    n_tables=8, rng=2,
                )
            ),
            s_queries,
        ),
        (
            "range_reporting",
            plain(
                build_index(
                    r_points, kind="range_reporting", family="step_euclidean",
                    r_flat=4.0, level=0.12, n_components=3, r_report=4.0,
                    distance="euclidean_distance", n_tables=8, rng=4,
                )
            ),
            r_queries,
        ),
        (
            "sharded_inprocess",
            lambda: ((idx := ShardedIndex.load(sharded_path)), idx.close),
            h_queries,
        ),
        (
            "sharded_pool",
            lambda: (
                (
                    idx := ShardedIndex.load(
                        sharded_path, options=ServingOptions(workers=1)
                    )
                ),
                idx.close,
            ),
            h_queries,
        ),
        (
            "served",
            lambda: (
                (
                    handle := serve_in_thread(
                        str(sharded_path), max_batch=8, max_wait_us=1000
                    )
                ),
                handle.close,
            ),
            h_queries,
        ),
    ]


@pytest.fixture(
    scope="module",
    params=[
        "raw",
        "annulus",
        "hyperplane",
        "range_reporting",
        "sharded_inprocess",
        "sharded_pool",
        "served",
    ],
)
def surface(request, hamming_data, sphere_data, range_data, sharded_path):
    table = {
        name: (make, queries)
        for name, make, queries in _surfaces(
            hamming_data, sphere_data, range_data, sharded_path
        )
    }
    make, queries = table[request.param]
    index, close = make()
    yield request.param, index, queries
    close()


class TestQueryableConformance:
    def test_isinstance_queryable(self, surface):
        _, index, _ = surface
        assert isinstance(index, Queryable)

    def test_query_result_carries_stats(self, surface):
        _, index, queries = surface
        result = index.query(queries[0])
        stats = result.stats
        assert stats.retrieved >= stats.unique_candidates >= 0
        assert stats.tables_probed >= 0

    def test_batch_query_matches_query_loop(self, surface):
        _, index, queries = surface
        batched = list(index.batch_query(queries))
        assert len(batched) == queries.shape[0]
        for row, from_batch in zip(queries, batched):
            assert index.query(row).stats == from_batch.stats

    def test_raw_surfaces_agree_exactly(
        self, surface, hamming_data
    ):
        name, index, queries = surface
        if name not in {"raw", "sharded_inprocess", "sharded_pool", "served"}:
            pytest.skip("candidate-retrieval surfaces only")
        points, _ = hamming_data
        reference = _raw_spec().build(points).batch_query(queries)
        observed = list(index.batch_query(queries))
        for ref, obs in zip(reference, observed):
            assert obs.indices == ref.indices
            assert obs.stats == ref.stats
