"""Differential parity suite: sharded vs unsharded serving.

A :class:`~repro.serving.sharded.ShardedIndex` must be *observably
identical* to the unsharded index over the same points and spec — global
candidate ids, first-seen dedup order, and summed :class:`QueryStats`,
including the Theorem 6.1 ``max_retrieved`` budget applied to the merged
per-table counts.  The unsharded index is the reference; the suite sweeps
shard counts (with uneven splits), both storage backends, budget edges,
save→load revivals, and process-pool serving.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import IndexSpec, build_index, load_index, save_index
from repro.serving import ServingOptions, ShardedIndex, shard_bounds
from repro.spaces import hamming

N_POINTS = 257  # deliberately not divisible by the shard counts
N_TABLES = 8
D = 24
SHARD_COUNTS = [1, 2, 3, 5]
BUDGETS = [None, 0, 1, 5, 40, 8 * N_TABLES]


def _clustered_points(n, rng):
    """Noisy copies of shared prototypes, so buckets span shard boundaries
    and dedup order genuinely crosses shards."""
    prototypes = hamming.random_points(10, D, rng=rng)
    rows = prototypes[rng.integers(0, prototypes.shape[0], size=n)]
    return rows ^ (rng.random(size=rows.shape) < 0.02).astype(np.int8)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(77)
    points = _clustered_points(N_POINTS, rng)
    queries = np.concatenate([points[:8], _clustered_points(8, rng)])
    return points, queries


def _spec(backend="packed", shards=1):
    return IndexSpec(
        kind="raw",
        family="bit_sampling",
        family_params={"d": D, "power": 4},
        n_tables=N_TABLES,
        backend=backend,
        seed=11,
        shards=shards,
    )


def _assert_results_equal(reference, sharded):
    assert len(reference) == len(sharded)
    for a, b in zip(reference, sharded):
        assert a.indices == b.indices
        assert a.stats == b.stats


class TestShardedVsUnsharded:
    @pytest.mark.parametrize("backend", ["dict", "packed"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_batch_query_parity(self, data, backend, shards):
        points, queries = data
        flat = _spec(backend).build(points)
        sharded = ShardedIndex(points, _spec(backend, shards))
        assert sharded.n_points == flat.n_points
        for budget in BUDGETS:
            _assert_results_equal(
                flat.batch_query(queries, max_retrieved=budget),
                sharded.batch_query(queries, max_retrieved=budget),
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_single_query_parity(self, data, shards):
        points, queries = data
        flat = _spec().build(points)
        sharded = ShardedIndex(points, _spec(shards=shards))
        for q in queries[:4]:
            assert flat.query(q) == sharded.query(q)
            assert flat.query(q, max_retrieved=10) == sharded.query(
                q, max_retrieved=10
            )

    def test_spec_build_returns_sharded_index(self, data):
        points, queries = data
        sharded = _spec(shards=3).build(points)
        assert isinstance(sharded, ShardedIndex)
        assert sharded.n_shards == 3
        _assert_results_equal(
            _spec().build(points).batch_query(queries),
            sharded.batch_query(queries),
        )

    def test_build_index_entry_point(self, data):
        points, queries = data
        sharded = build_index(
            points, kind="raw", family="bit_sampling", power=4,
            n_tables=N_TABLES, rng=11, shards=2, workers=2,
        )
        assert isinstance(sharded, ShardedIndex)
        flat = build_index(
            points, kind="raw", family="bit_sampling", power=4,
            n_tables=N_TABLES, rng=11,
        )
        _assert_results_equal(
            flat.batch_query(queries), sharded.batch_query(queries)
        )

    def test_threaded_build_matches_serial(self, data):
        points, queries = data
        serial = ShardedIndex(points, _spec(shards=3))
        threaded = ShardedIndex(points, _spec(shards=3), build_workers=3)
        _assert_results_equal(
            serial.batch_query(queries), threaded.batch_query(queries)
        )

    def test_dsh_build_workers_matches_serial(self, data):
        points, queries = data
        serial = _spec().build(points)
        threaded = _spec().build(points, workers=4)
        _assert_results_equal(
            serial.batch_query(queries), threaded.batch_query(queries)
        )


class TestShardedPersistence:
    @pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "eager"])
    def test_save_load_in_process_parity(self, data, tmp_path, mmap):
        points, queries = data
        flat = _spec().build(points)
        sharded = ShardedIndex(points, _spec(shards=3))
        manifest = save_index(sharded, tmp_path / "srv")
        assert manifest.name == "srv.json"
        loaded = load_index(tmp_path / "srv", options=ServingOptions(mmap=mmap))
        assert isinstance(loaded, ShardedIndex)
        assert loaded.n_shards == 3
        assert loaded.spec == sharded.spec
        for budget in (None, 17):
            _assert_results_equal(
                flat.batch_query(queries, max_retrieved=budget),
                loaded.batch_query(queries, max_retrieved=budget),
            )

    def test_pool_serving_parity(self, data, tmp_path):
        points, queries = data
        flat = _spec().build(points)
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=2)) as pool_index:
            # Twice: the second call exercises the worker-side shard cache.
            for _ in range(2):
                _assert_results_equal(
                    flat.batch_query(queries, max_retrieved=23),
                    pool_index.batch_query(queries, max_retrieved=23),
                )
            assert flat.query(queries[0]) == pool_index.query(queries[0])

    def test_pool_mode_cannot_resave(self, data, tmp_path):
        points, _ = data
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=1)) as pool_index:
            with pytest.raises(ValueError, match="already-saved"):
                pool_index.save(tmp_path / "other")

    def test_closed_pool_index_raises_clearly(self, data, tmp_path):
        points, queries = data
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        pool_index = load_index(tmp_path / "srv", options=ServingOptions(workers=1))
        pool_index.close()
        with pytest.raises(ValueError, match="closed"):
            pool_index.batch_query(queries)

    def test_pool_honours_eager_loading(self, data, tmp_path):
        """mmap=False must reach the workers, so serving survives the shard
        files being rewritten underneath it."""
        points, queries = data
        flat = _spec().build(points)
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=1, mmap=False)) as served:
            _assert_results_equal(
                flat.batch_query(queries), served.batch_query(queries)
            )


class TestPoolTransport:
    """The shared-memory + worker-clipping transport must be invisible to
    correctness: identical results whether hits travel through shm
    segments or the pickle fallback, with or without chunking, with or
    without a worker-side budget clip."""

    def test_shm_forced_parity_across_budgets(self, data, tmp_path):
        points, queries = data
        flat = _spec().build(points)
        ShardedIndex(points, _spec(shards=3)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=2)) as served:
            served._shm_min_bytes = 0  # every result through shared memory
            for budget in BUDGETS:
                _assert_results_equal(
                    flat.batch_query(queries, max_retrieved=budget),
                    served.batch_query(queries, max_retrieved=budget),
                )
                assert served.last_transport["shm_bytes"] > 0

    def test_pickle_fallback_parity(self, data, tmp_path):
        points, queries = data
        flat = _spec().build(points)
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=1)) as served:
            served._shm_min_bytes = None  # never use shared memory
            for budget in (None, 1, 23):
                _assert_results_equal(
                    flat.batch_query(queries, max_retrieved=budget),
                    served.batch_query(queries, max_retrieved=budget),
                )
                assert served.last_transport["shm_bytes"] == 0
                assert served.last_transport["pipe_bytes"] > 0

    def test_query_chunking_parity(self, data, tmp_path):
        """A block large enough to chunk must split into multiple
        (shard, chunk) tasks and still merge exactly."""
        points, _ = data
        rng = np.random.default_rng(5)
        queries = _clustered_points(80, rng)
        flat = _spec().build(points)
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=2)) as served:
            _assert_results_equal(
                flat.batch_query(queries, max_retrieved=40),
                served.batch_query(queries, max_retrieved=40),
            )
            assert served.last_transport["chunks"] >= 2
            assert served.last_transport["tasks"] == (
                served.last_transport["chunks"] * served.n_shards
            )

    def test_worker_clip_shrinks_payload(self, data, tmp_path):
        """A tight budget must reduce what workers ship, not just what the
        merge keeps."""
        points, queries = data
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=1)) as served:
            served._shm_min_bytes = None  # everything over the pipe
            served.batch_query(queries)
            unclipped = served.last_transport["pipe_bytes"]
            served.batch_query(queries, max_retrieved=1)
            clipped = served.last_transport["pipe_bytes"]
        assert clipped < unclipped

    def test_stale_shard_cache_evicted_on_resave(self, data, tmp_path):
        """Hot swap: re-saving shard files under a live pool must evict the
        per-worker mmap cache, not keep answering from the old bytes."""
        points, queries = data
        rng = np.random.default_rng(99)
        replacement = _clustered_points(N_POINTS, rng)
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=1)) as served:
            _assert_results_equal(
                _spec().build(points).batch_query(queries),
                served.batch_query(queries),  # warms the worker cache
            )
            ShardedIndex(replacement, _spec(shards=2)).save(tmp_path / "srv")
            _assert_results_equal(
                _spec().build(replacement).batch_query(queries),
                served.batch_query(queries),
            )


class TestPoolLifecycle:
    def test_close_is_idempotent(self, data, tmp_path):
        points, _ = data
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        served = load_index(tmp_path / "srv", options=ServingOptions(workers=1))
        pool = served._pool
        served.close()
        served.close()  # second close must be a clean no-op
        assert pool._shutdown_thread

    def test_dropped_handle_shuts_pool_down(self, data, tmp_path):
        """Forgetting close() must not leak worker processes: the finalize
        hook shuts the pool down when the index is collected."""
        import gc

        points, _ = data
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        served = load_index(tmp_path / "srv", options=ServingOptions(workers=1))
        pool = served._pool
        del served
        gc.collect()
        assert pool._shutdown_thread

    def test_repr_tracks_serving_mode(self, data, tmp_path):
        points, _ = data
        in_memory = ShardedIndex(points, _spec(shards=2))
        assert "in-process" in repr(in_memory)
        in_memory.save(tmp_path / "srv")
        served = load_index(tmp_path / "srv", options=ServingOptions(workers=2))
        assert "pool=2" in repr(served)
        served.close()
        assert "closed" in repr(served)


class TestEmptyShardContribution:
    """A shard whose buckets never match the query (zero counts in every
    table) must vanish from the merge without perturbing order, stats, or
    budgets — checked differentially against the dict backend's reference
    ``_scan`` in both sharded modes."""

    @pytest.fixture(scope="class")
    def split_data(self):
        # First half all-zeros, second half all-ones: with 2 contiguous
        # shards, an all-zeros query only ever hits shard 0's buckets.
        points = np.concatenate([
            np.zeros((40, D), dtype=np.int8),
            np.ones((40, D), dtype=np.int8),
        ])
        queries = np.concatenate([
            np.zeros((2, D), dtype=np.int8),
            np.ones((2, D), dtype=np.int8),
        ])
        return points, queries

    @pytest.mark.parametrize("budget", [None, 0, 1, 15, 40])
    def test_in_process(self, split_data, budget):
        points, queries = split_data
        reference = _spec("dict").build(points)  # funnels through _scan
        sharded = ShardedIndex(points, _spec(shards=2))
        _assert_results_equal(
            reference.batch_query(queries, max_retrieved=budget),
            sharded.batch_query(queries, max_retrieved=budget),
        )

    def test_pool(self, split_data, tmp_path):
        points, queries = split_data
        reference = _spec("dict").build(points)
        ShardedIndex(points, _spec(shards=2)).save(tmp_path / "srv")
        with load_index(tmp_path / "srv", options=ServingOptions(workers=1)) as served:
            for budget in (None, 0, 1, 15, 40):
                _assert_results_equal(
                    reference.batch_query(queries, max_retrieved=budget),
                    served.batch_query(queries, max_retrieved=budget),
                )


class TestSpecValidation:
    def test_shards_roundtrip_through_dict(self):
        spec = _spec(shards=4)
        assert IndexSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["shards"] == 4

    def test_shards_default_is_one(self):
        data = _spec().to_dict()
        data.pop("shards")
        assert IndexSpec.from_dict(data).shards == 1

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            _spec(shards=0)

    def test_rejects_sharding_without_seed(self):
        with pytest.raises(ValueError, match="fixed integer seed"):
            dataclasses.replace(_spec(shards=2), seed=None)

    def test_rejects_sharding_non_raw_kinds(self):
        with pytest.raises(ValueError, match="kind='raw'"):
            IndexSpec(
                kind="annulus",
                family="annulus_sphere",
                family_params={"d": 8, "alpha_max": 0.3, "t": 1.5},
                n_tables=4,
                seed=0,
                shards=2,
                options={"interval": (0.2, 0.6)},
            )


class TestShardBounds:
    def test_contiguous_and_balanced(self):
        bounds = shard_bounds(257, 5)
        sizes = np.diff(bounds)
        assert bounds[0] == 0 and bounds[-1] == 257
        assert sizes.min() >= 1
        assert sizes.max() - sizes.min() <= 1

    def test_rejects_more_shards_than_points(self):
        with pytest.raises(ValueError, match="non-empty"):
            shard_bounds(3, 4)

    def test_query_dimensionality_validated(self, data):
        points, _ = data
        sharded = ShardedIndex(points, _spec(shards=2))
        with pytest.raises(ValueError, match="dimensionality"):
            sharded.batch_query(np.zeros((2, D + 1), dtype=np.int8))
