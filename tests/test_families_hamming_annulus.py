"""Tests for the Section 6.1 Hamming annulus recipe."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability
from repro.families.hamming_annulus import (
    HammingAnnulusFamily,
    balanced_exponents,
    hamming_annulus_cpf,
)
from repro.index.annulus import AnnulusIndex
from repro.spaces import hamming

D = 64


class TestCpf:
    def test_peak_location(self):
        cpf = hamming_annulus_cpf(6, 2)  # peak at 2/8 = 0.25
        ts = np.linspace(0.01, 0.99, 197)
        values = cpf(ts)
        assert ts[int(np.argmax(values))] == pytest.approx(0.25, abs=0.02)

    def test_unimodal(self):
        cpf = hamming_annulus_cpf(4, 4)
        ts = np.linspace(0, 1, 101)
        values = cpf(ts)
        peak = int(np.argmax(values))
        assert np.all(np.diff(values[: peak + 1]) >= -1e-12)
        assert np.all(np.diff(values[peak:]) <= 1e-12)

    def test_edge_cases_vanish(self):
        cpf = hamming_annulus_cpf(3, 2)
        assert cpf(0.0) == 0.0
        assert cpf(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hamming_annulus_cpf(0, 0)
        with pytest.raises(ValueError):
            hamming_annulus_cpf(-1, 2)


class TestBalancedExponents:
    def test_rule(self):
        k1, k2 = balanced_exponents(0.25, 2)
        assert (k1, k2) == (6, 2)

    def test_peak_half(self):
        k1, k2 = balanced_exponents(0.5, 3)
        assert k1 == k2 == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_exponents(0.0, 2)
        with pytest.raises(ValueError):
            balanced_exponents(0.5, 0)


class TestFamily:
    def test_measured_cpf_matches_analytic(self):
        fam = HammingAnnulusFamily(D, peak=0.25, k2=2)
        for r in [4, 16, 32, 48]:
            est = estimate_collision_probability(
                fam,
                lambda n, rng, rr=r: hamming.pairs_at_distance(n, D, rr, rng),
                n_functions=250,
                pairs_per_function=80,
                rng=r,
            )
            expected = float(fam.cpf(r / D))
            assert est.contains(expected), f"r={r}"

    def test_peak_attribute(self):
        fam = HammingAnnulusFamily(D, peak=0.3, k2=3)
        assert fam.peak == pytest.approx(0.3, abs=0.05)

    def test_drives_hamming_annulus_search(self):
        """End to end: binary annulus queries via Theorem 6.1's structure.

        With k2=2 the planted point's per-table collision probability is
        f(0.25) = 0.75^6 * 0.25^2 ~ 0.011, so L=400 tables give ~4.4
        expected hits; we build three independent indexes and require most
        to succeed.
        """
        rng = np.random.default_rng(0)
        n, r_target = 300, 16  # relative 0.25
        query = hamming.random_points(1, D, rng)[0]
        points = hamming.flip_bits(np.repeat(query[None, :], n, axis=0), 40, rng)
        points[5] = hamming.flip_bits(query[None, :], r_target, rng)[0]
        fam = HammingAnnulusFamily(D, peak=0.25, k2=2)
        found = 0
        for seed in range(3):
            index = AnnulusIndex(
                points,
                fam,
                interval=(10, 22),  # absolute Hamming distances
                proximity=lambda q, pts: np.count_nonzero(
                    pts != q[None, :], axis=1
                ).astype(float),
                n_tables=400,
                rng=seed,
            )
            found += index.query(query).found
        assert found >= 2
