"""Tests for the annulus family and Theorem 6.2 / 6.4 helpers."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability
from repro.families.annulus_sphere import (
    AnnulusFamily,
    a_to_similarity,
    annulus_interval,
    similarity_to_a,
    theorem64_rho,
)
from repro.spaces import sphere

D = 12


class TestReparameterization:
    @pytest.mark.parametrize("alpha", [-0.9, -0.3, 0.0, 0.5, 0.95])
    def test_roundtrip(self, alpha):
        assert a_to_similarity(similarity_to_a(alpha)) == pytest.approx(alpha)

    def test_known_values(self):
        assert similarity_to_a(0.0) == 1.0
        assert a_to_similarity(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            similarity_to_a(1.0)
        with pytest.raises(ValueError):
            a_to_similarity(0.0)


class TestAnnulusInterval:
    def test_contains_alpha_max(self):
        for alpha_max in [-0.5, 0.0, 0.4]:
            lo, hi = annulus_interval(alpha_max, 2.0)
            assert lo < alpha_max < hi

    def test_wider_with_larger_s(self):
        lo2, hi2 = annulus_interval(0.2, 2.0)
        lo4, hi4 = annulus_interval(0.2, 4.0)
        assert lo4 < lo2 and hi4 > hi2

    def test_figure3_zero_alpha_max_symmetric(self):
        """At alpha_max = 0 the annulus is symmetric (Figure 3 midline)."""
        lo, hi = annulus_interval(0.0, 3.0)
        assert lo == pytest.approx(-hi)

    def test_validation(self):
        with pytest.raises(ValueError):
            annulus_interval(0.0, 1.0)


class TestAnnulusFamily:
    def test_cpf_peaks_at_alpha_max(self):
        fam = AnnulusFamily(D, alpha_max=0.3, t=2.0)
        alphas = np.linspace(-0.8, 0.9, 35)
        values = fam.cpf(alphas)
        peak_alpha = alphas[int(np.argmax(values))]
        assert peak_alpha == pytest.approx(0.3, abs=0.1)

    def test_cpf_unimodal(self):
        fam = AnnulusFamily(D, alpha_max=0.0, t=1.8)
        alphas = np.linspace(-0.9, 0.9, 41)
        values = fam.cpf(alphas)
        peak = int(np.argmax(values))
        assert np.all(np.diff(values[: peak + 1]) >= -1e-12)
        assert np.all(np.diff(values[peak:]) <= 1e-12)

    def test_theoretical_log_inv_cpf_minimized_at_alpha_max(self):
        fam = AnnulusFamily(D, alpha_max=0.25, t=2.5)
        alphas = np.linspace(-0.6, 0.8, 57)
        curve = fam.theoretical_log_inv_cpf(alphas)
        assert alphas[int(np.argmin(curve))] == pytest.approx(0.25, abs=0.05)

    def test_measured_cpf_matches_analytic(self):
        fam = AnnulusFamily(D, alpha_max=0.0, t=1.3)
        for alpha in [-0.5, 0.0, 0.5]:
            est = estimate_collision_probability(
                fam,
                lambda n, rng, a=alpha: sphere.pairs_at_inner_product(n, D, a, rng),
                n_functions=250,
                pairs_per_function=80,
                rng=1,
            )
            expected = float(fam.cpf(alpha))
            assert est.contains(expected), f"alpha={alpha}: {est} vs {expected}"

    def test_interval_delegates(self):
        fam = AnnulusFamily(D, alpha_max=0.2, t=2.0)
        assert fam.interval(2.0) == annulus_interval(0.2, 2.0)

    def test_t_minus_parameterization(self):
        """t_- = a(alpha_max) t_+ per Section 6.2."""
        fam = AnnulusFamily(D, alpha_max=0.5, t=3.0)
        assert fam.t_minus == pytest.approx(similarity_to_a(0.5) * 3.0)


class TestTheorem64Rho:
    def test_rho_below_one(self):
        rho = theorem64_rho(-0.1, 0.1, -0.6, 0.6)
        assert 0.0 < rho < 1.0

    def test_wider_outer_annulus_smaller_rho(self):
        rho_narrow = theorem64_rho(-0.1, 0.1, -0.4, 0.4)
        rho_wide = theorem64_rho(-0.1, 0.1, -0.8, 0.8)
        assert rho_wide < rho_narrow

    def test_bound_two_over_c_plus_inverse(self):
        """rho <= 2 / (c + 1/c) with c = c_beta / c_alpha (Theorem 6.4)."""
        a_m, a_p, b_m, b_p = -0.2, 0.2, -0.7, 0.7
        rho = theorem64_rho(a_m, a_p, b_m, b_p)
        c_alpha = np.sqrt(similarity_to_a(a_m) / similarity_to_a(a_p))
        c_beta = np.sqrt(similarity_to_a(b_m) / similarity_to_a(b_p))
        c = c_beta / c_alpha
        assert rho <= 2 / (c + 1 / c) + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem64_rho(-0.5, 0.5, -0.2, 0.8)  # beta_- not below alpha_-
        with pytest.raises(ValueError):
            theorem64_rho(0.1, -0.1, -0.6, 0.6)  # alpha interval inverted
