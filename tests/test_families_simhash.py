"""Tests for SimHash and its angular CPF."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability, estimate_cpf_curve
from repro.families.simhash import SimHash
from repro.spaces import sphere

D = 12


def _sampler(alpha):
    def sampler(n, rng):
        return sphere.pairs_at_inner_product(n, D, alpha, rng)

    return sampler


class TestSimHash:
    @pytest.mark.parametrize("alpha", [-0.8, -0.3, 0.0, 0.5, 0.9])
    def test_cpf_matches_measurement(self, alpha):
        fam = SimHash(D)
        est = estimate_collision_probability(
            fam, _sampler(alpha), n_functions=250, pairs_per_function=80, rng=0
        )
        expected = 1 - np.arccos(alpha) / np.pi
        assert est.contains(expected), f"alpha={alpha}: {est} vs {expected}"

    def test_symmetric(self):
        assert SimHash(D).is_symmetric
        pair = SimHash(D).sample(rng=1)
        x = sphere.random_points(20, D, rng=2)
        np.testing.assert_array_equal(pair.hash_data(x), pair.hash_query(x))

    def test_output_is_binary(self):
        pair = SimHash(D).sample(rng=3)
        values = pair.hash_data(sphere.random_points(100, D, rng=4))
        assert set(np.unique(values)) <= {0, 1}

    def test_scale_invariance(self):
        """SimHash sees only directions; norms are irrelevant."""
        pair = SimHash(D).sample(rng=5)
        x = sphere.random_points(50, D, rng=6)
        np.testing.assert_array_equal(pair.hash_data(x), pair.hash_data(3.7 * x))

    def test_curve_is_monotone_increasing(self):
        ests = estimate_cpf_curve(
            SimHash(D),
            _sampler,
            [-0.6, 0.0, 0.6],
            n_functions=200,
            pairs_per_function=60,
            rng=7,
        )
        ps = [e.p_hat for e in ests]
        assert ps[0] < ps[1] < ps[2]

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            SimHash(0)
        pair = SimHash(4).sample(rng=8)
        with pytest.raises(ValueError, match="dimension"):
            pair.hash_data(np.ones((1, 5)))
