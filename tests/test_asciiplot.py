"""Tests for the ASCII plotting utility."""

import numpy as np
import pytest

from repro.utils.asciiplot import ascii_plot


class TestAsciiPlot:
    def test_renders_single_series(self):
        xs = np.linspace(0, 1, 20)
        out = ascii_plot(xs, {"line": xs**2}, title="parabola")
        assert "parabola" in out
        assert "* line" in out
        assert out.count("\n") > 10

    def test_marker_at_extremes(self):
        xs = [0.0, 1.0]
        out = ascii_plot(xs, {"s": [0.0, 1.0]}, width=10, height=5)
        rows = [line for line in out.splitlines() if "|" in line]
        assert "*" in rows[0]      # max value in the top row
        assert "*" in rows[-1]     # min value in the bottom row

    def test_multiple_series_distinct_markers(self):
        xs = np.linspace(0, 1, 10)
        out = ascii_plot(xs, {"a": xs, "b": 1 - xs})
        assert "* a" in out and "o b" in out

    def test_constant_series_handled(self):
        xs = np.linspace(0, 1, 5)
        out = ascii_plot(xs, {"flat": np.full(5, 0.3)})
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([0.0], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {})
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {"a": [1.0]})  # length mismatch
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {"a": [np.nan, 1.0]})
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {"a": [0.0, 1.0]}, width=2)
