"""Tests for spec-driven construction: IndexSpec / build_index round-trips."""

import json

import numpy as np
import pytest

from repro.api import (
    PROXIMITIES,
    IndexSpec,
    build_index,
    register_proximity,
)
from repro.data.synthetic import planted_euclidean_range
from repro.index import (
    AnnulusIndex,
    DSHIndex,
    HyperplaneIndex,
    Queryable,
    RangeReportingIndex,
)
from repro.index.annulus import sphere_peak_placement
from repro.spaces import hamming, sphere


@pytest.fixture(scope="module")
def sphere_points():
    return sphere.random_points(300, 12, rng=0)


class TestBuildIndexKinds:
    def test_raw(self, sphere_points):
        index = build_index(
            sphere_points, kind="raw", family="simhash", power=4,
            n_tables=6, rng=1,
        )
        assert isinstance(index, DSHIndex)
        assert index.backend == "packed"
        assert index.n_points == 300
        candidates, stats = index.query(sphere_points[0])
        assert 0 in candidates
        assert stats.tables_probed == 6

    def test_annulus_sphere_with_auto_peak(self, sphere_points):
        index = build_index(
            sphere_points, kind="annulus", family="annulus_sphere",
            t=1.5, interval=(0.2, 0.6), n_tables=20, rng=2,
        )
        assert isinstance(index, AnnulusIndex)
        placed = index.spec.family_params["alpha_max"]
        assert placed == pytest.approx(sphere_peak_placement((0.2, 0.6)))
        results = index.batch_query(sphere_points[:4])
        assert len(results) == 4

    def test_annulus_non_sphere_family_requires_proximity(self, sphere_points):
        with pytest.raises(ValueError, match="proximity"):
            build_index(
                sphere_points, kind="annulus", family="euclidean_lsh",
                w=2.0, k=1, interval=(1.0, 3.0), n_tables=5, rng=3,
            )
        index = build_index(
            sphere_points, kind="annulus", family="euclidean_lsh",
            w=2.0, k=1, interval=(1.0, 3.0), proximity="euclidean_distance",
            n_tables=5, rng=3,
        )
        assert isinstance(index, AnnulusIndex)

    def test_hyperplane(self, sphere_points):
        index = build_index(
            sphere_points, kind="hyperplane", alpha=0.3, t=1.4,
            n_tables=15, rng=4,
        )
        assert isinstance(index, HyperplaneIndex)
        result = index.query(sphere_points[0])
        if result.found:
            assert abs(sphere_points[result.index] @ sphere_points[0]) <= 0.3

    def test_range_reporting(self):
        inst = planted_euclidean_range(200, 8, 4.0, n_near=10, rng=5)
        index = build_index(
            inst.points, kind="range_reporting", family="step_euclidean",
            r_flat=4.0, level=0.12, n_components=3,
            r_report=4.0, distance="euclidean_distance",
            n_tables=30, rng=6,
        )
        assert isinstance(index, RangeReportingIndex)
        report = index.query(inst.query)
        for idx in report.indices:
            assert np.linalg.norm(inst.points[idx] - inst.query) <= 4.0 + 1e-9

    def test_d_inferred_from_points(self, sphere_points):
        index = build_index(
            sphere_points, kind="raw", family="simhash", n_tables=2, rng=0
        )
        assert index.spec.family_params["d"] == 12

    def test_all_kinds_are_queryable(self, sphere_points):
        inst = planted_euclidean_range(100, 8, 4.0, n_near=5, rng=7)
        indexes = [
            build_index(sphere_points, kind="raw", family="simhash",
                        n_tables=2, rng=0),
            build_index(sphere_points, kind="annulus", family="annulus_sphere",
                        t=1.5, interval=(0.2, 0.6), n_tables=4, rng=0),
            build_index(sphere_points, kind="hyperplane", alpha=0.3, t=1.4,
                        n_tables=4, rng=0),
            build_index(inst.points, kind="range_reporting",
                        family="step_euclidean", r_flat=4.0, level=0.12,
                        n_components=3, r_report=4.0,
                        distance="euclidean_distance", n_tables=4, rng=0),
        ]
        for index in indexes:
            assert isinstance(index, Queryable)
            assert index.spec.kind in ("raw", "annulus", "hyperplane",
                                       "range_reporting")
            batch = index.batch_query(
                index.points[:2] if hasattr(index, "points") else sphere_points[:2]
            )
            assert len(batch) == 2
            for result in batch:
                assert result.stats.retrieved >= 0


class TestSpecRoundTrip:
    def _spec(self):
        return IndexSpec(
            kind="annulus",
            family="annulus_sphere",
            family_params={"d": 12, "alpha_max": 0.35, "t": 1.5},
            n_tables=15,
            backend="packed",
            seed=9,
            options={"interval": (0.2, 0.6), "budget_factor": 4.0},
        )

    def test_to_dict_from_dict_identity(self):
        spec = self._spec()
        clone = IndexSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_json_round_trip_rebuilds_identical_index(self, sphere_points):
        spec = self._spec()
        wire = json.dumps(spec.to_dict())          # the serving config
        clone_spec = IndexSpec.from_dict(json.loads(wire))
        original = spec.build(sphere_points)
        clone = clone_spec.build(sphere_points)
        queries = sphere_points[:6]
        for a, b in zip(original.batch_query(queries), clone.batch_query(queries)):
            assert a.index == b.index
            assert a.stats == b.stats

    def test_build_index_attaches_complete_spec(self, sphere_points):
        index = build_index(
            sphere_points, kind="annulus", family="annulus_sphere",
            t=1.5, interval=(0.2, 0.6), n_tables=10, rng=2,
        )
        rebuilt = IndexSpec.from_dict(index.spec.to_dict()).build(sphere_points)
        q = sphere_points[:5]
        for a, b in zip(index.batch_query(q), rebuilt.batch_query(q)):
            assert a.index == b.index and a.stats == b.stats

    def test_raw_round_trip(self, sphere_points):
        index = build_index(
            sphere_points, kind="raw", family="simhash", power=3,
            n_tables=5, rng=11, backend="dict",
        )
        clone = IndexSpec.from_dict(index.spec.to_dict()).build(sphere_points)
        assert clone.backend == "dict"
        assert index.batch_query(sphere_points[:4]) == clone.batch_query(
            sphere_points[:4]
        )

    def test_version_and_unknown_fields_rejected(self):
        spec = self._spec()
        data = spec.to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            IndexSpec.from_dict(data)
        data = spec.to_dict()
        data["sharding"] = 4
        with pytest.raises(ValueError, match="unknown spec field"):
            IndexSpec.from_dict(data)

    def test_callable_proximity_not_serializable(self, sphere_points):
        spec = IndexSpec(
            kind="annulus",
            family="annulus_sphere",
            family_params={"d": 12, "alpha_max": 0.35, "t": 1.5},
            n_tables=4,
            seed=0,
            options={"interval": (0.2, 0.6), "proximity": lambda q, p: p @ q},
        )
        spec.build(sphere_points)  # building works
        with pytest.raises(ValueError, match="register it"):
            spec.to_dict()

    def test_registered_proximity_serializes(self, sphere_points):
        register_proximity("neg_inner", lambda q, p: -(p @ q), overwrite=True)
        try:
            spec = IndexSpec(
                kind="annulus",
                family="annulus_sphere",
                family_params={"d": 12, "alpha_max": 0.35, "t": 1.5},
                n_tables=4,
                seed=0,
                options={"interval": (-0.6, -0.2), "proximity": "neg_inner"},
            )
            clone = IndexSpec.from_dict(spec.to_dict())
            assert clone.options["proximity"] == "neg_inner"
            clone.build(sphere_points)
        finally:
            PROXIMITIES.pop("neg_inner", None)


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            IndexSpec(kind="kd-tree", family="simhash", n_tables=2)

    def test_family_required_for_family_kinds(self):
        with pytest.raises(ValueError, match="needs a family"):
            IndexSpec(kind="raw", n_tables=2)

    def test_hyperplane_rejects_family(self):
        with pytest.raises(ValueError, match="builds its own family"):
            IndexSpec(
                kind="hyperplane", family="simhash", n_tables=2,
                options={"alpha": 0.3, "t": 1.4},
            )

    def test_family_params_validated_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            IndexSpec(
                kind="raw", family="simhash",
                family_params={"d": 8, "widgets": 1}, n_tables=2,
            )

    def test_unknown_option(self):
        with pytest.raises(ValueError, match="unknown option"):
            IndexSpec(
                kind="annulus", family="annulus_sphere",
                family_params={"d": 8, "alpha_max": 0.3, "t": 1.5},
                n_tables=2,
                options={"interval": (0.1, 0.5), "beam_width": 4},
            )

    def test_missing_required_option(self):
        with pytest.raises(ValueError, match="missing required option"):
            IndexSpec(
                kind="annulus", family="annulus_sphere",
                family_params={"d": 8, "alpha_max": 0.3, "t": 1.5},
                n_tables=2,
            )

    def test_bad_interval(self):
        with pytest.raises(ValueError, match="lo < hi"):
            IndexSpec(
                kind="annulus", family="annulus_sphere",
                family_params={"d": 8, "alpha_max": 0.3, "t": 1.5},
                n_tables=2,
                options={"interval": (0.6, 0.2)},
            )

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            IndexSpec(
                kind="raw", family="simhash", family_params={"d": 8},
                n_tables=2, backend="b-tree",
            )

    def test_generator_seed_rejected(self, sphere_points):
        with pytest.raises(TypeError, match="int seed"):
            build_index(
                sphere_points, kind="raw", family="simhash", n_tables=2,
                rng=np.random.default_rng(0),
            )

    def test_unknown_parameter_routed_nowhere(self, sphere_points):
        with pytest.raises(ValueError, match="unknown parameter"):
            build_index(
                sphere_points, kind="raw", family="simhash", n_tables=2,
                beam_width=7,
            )

    def test_numpy_scalar_params_serialize_to_json(self, sphere_points):
        index = build_index(
            sphere_points, kind="annulus", family="annulus_sphere",
            t=np.float32(1.5), interval=(np.float64(0.2), np.float64(0.6)),
            n_tables=np.int64(4), rng=np.int32(0),
        )
        wire = json.dumps(index.spec.to_dict())  # must not raise
        clone = IndexSpec.from_dict(json.loads(wire)).build(sphere_points)
        a, b = index.batch_query(sphere_points[:3]), clone.batch_query(
            sphere_points[:3]
        )
        assert [r.index for r in a] == [r.index for r in b]

    def test_fractional_power_rejected(self, sphere_points):
        with pytest.raises(ValueError, match="power"):
            build_index(
                sphere_points, kind="raw", family="simhash", power=2.5,
                n_tables=2, rng=0,
            )
        with pytest.raises(ValueError, match="power"):
            IndexSpec(
                kind="raw", family="simhash",
                family_params={"d": 8, "power": 2.5}, n_tables=2,
            )

    def test_hyperplane_budget_factor_is_honored(self, sphere_points):
        index = build_index(
            sphere_points, kind="hyperplane", alpha=0.3, t=1.4,
            n_tables=10, budget_factor=2.0, rng=0,
        )
        assert index._annulus.budget == 20  # 2.0 * L, not the default 8L

    def test_sphere_interval_outside_unit_range_rejected(self, sphere_points):
        for bad in [(1.2, 1.5), (0.35, 1.5), (-1.5, 0.2)]:
            with pytest.raises(ValueError, match="beta"):
                build_index(
                    sphere_points, kind="annulus", family="annulus_sphere",
                    t=1.5, interval=bad, n_tables=4, rng=0,
                )

    def test_unknown_proximity_name(self, sphere_points):
        with pytest.raises(ValueError, match="unknown proximity"):
            build_index(
                sphere_points, kind="annulus", family="annulus_sphere",
                t=1.5, interval=(0.2, 0.6), proximity="cosine!!",
                n_tables=2, rng=0,
            )
