"""Tests for Monte Carlo CPF estimation."""

import numpy as np
import pytest

from repro.core.estimate import (
    estimate_collision_probability,
    estimate_cpf_curve,
    wilson_interval,
)
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.spaces import hamming

D = 20


def _sampler_at(r: int):
    def sampler(n, rng):
        return hamming.pairs_at_distance(n, D, r, rng)

    return sampler


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_extremes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and high > 0.0
        low, high = wilson_interval(50, 50)
        assert high == 1.0 and low < 1.0

    def test_narrower_with_more_trials(self):
        w1 = wilson_interval(50, 100)
        w2 = wilson_interval(5000, 10000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)


class TestEstimateCollisionProbability:
    def test_bit_sampling_estimate_accurate(self):
        est = estimate_collision_probability(
            BitSampling(D), _sampler_at(5), n_functions=300, pairs_per_function=100, rng=0
        )
        assert est.contains(1 - 5 / D)
        assert est.trials == 300 * 100

    def test_anti_bit_sampling_estimate_accurate(self):
        est = estimate_collision_probability(
            AntiBitSampling(D), _sampler_at(5), n_functions=300, pairs_per_function=100, rng=1
        )
        assert est.contains(5 / D)

    def test_deterministic_given_seed(self):
        a = estimate_collision_probability(
            BitSampling(D), _sampler_at(4), n_functions=20, pairs_per_function=20, rng=9
        )
        b = estimate_collision_probability(
            BitSampling(D), _sampler_at(4), n_functions=20, pairs_per_function=20, rng=9
        )
        assert a.p_hat == b.p_hat

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            estimate_collision_probability(BitSampling(D), _sampler_at(1), n_functions=0)


class TestEstimateCpfCurve:
    def test_curve_tracks_analytic_cpf(self):
        rs = [0, 5, 10, 15, 20]
        ests = estimate_cpf_curve(
            BitSampling(D),
            lambda r: _sampler_at(int(r)),
            rs,
            n_functions=150,
            pairs_per_function=60,
            rng=2,
        )
        assert len(ests) == len(rs)
        for r, est in zip(rs, ests):
            assert est.contains(1 - r / D), f"failed at r={r}"

    def test_monotone_decrease_detected(self):
        ests = estimate_cpf_curve(
            BitSampling(D),
            lambda r: _sampler_at(int(r)),
            [2, 10, 18],
            n_functions=200,
            pairs_per_function=50,
            rng=3,
        )
        ps = [e.p_hat for e in ests]
        assert ps[0] > ps[1] > ps[2]
