"""Call-graph and project-model corner cases for :mod:`repro.analysis.project`.

Complements ``test_analysis_rules.py`` (which exercises the rules built on
top): here we pin down the conservative resolver itself — aliased import
chains, ``__init__`` re-exports, static/classmethod dispatch, executor
submissions that must stay *unresolved* rather than guessed, partial
unwrapping, raise-set filtering, and cycle/layer bookkeeping.
"""

from __future__ import annotations

from repro.analysis import SourceFile
from repro.analysis.project import (
    PACKAGE_LAYERS,
    Project,
    layer_of,
    module_name_for_path,
)


def build(*files: tuple[str, str]) -> Project:
    """Project from ``(path, text)`` pairs; names derived from paths."""
    sources = [SourceFile(path, text) for path, text in files]
    return Project.from_sources(sources)


# ---------------------------------------------------------------------------
# Module naming and layers
# ---------------------------------------------------------------------------


def test_module_name_for_path_strips_src_and_init():
    assert module_name_for_path("src/repro/core/cpf.py") == "repro.core.cpf"
    assert module_name_for_path("src/repro/index/__init__.py") == "repro.index"
    assert module_name_for_path("pkg/mod.py") == "pkg.mod"


def test_layer_of_covers_known_packages_and_exempts_analysis():
    assert layer_of("repro.core.cpf") == PACKAGE_LAYERS["core"]
    assert layer_of("repro.serving.sharded") == PACKAGE_LAYERS["serving"]
    assert layer_of("repro.core") < layer_of("repro.index.backends")
    # The linter itself and the package root are outside the layer order.
    assert layer_of("repro.analysis.project") is None
    assert layer_of("repro") is None
    assert layer_of("somewhere.else") is None


# ---------------------------------------------------------------------------
# Aliased imports and __init__ re-exports
# ---------------------------------------------------------------------------


def test_resolve_chases_aliased_import_chain():
    project = build(
        ("src/pkg/__init__.py", ""),
        ("src/pkg/moda.py", "def f():\n    '''Doc.'''\n    return 1\n"),
        ("src/pkg/modb.py", "from pkg.moda import f as g\n"),
        ("src/pkg/modc.py", "from pkg.modb import g as h\n"),
    )
    assert project.resolve("pkg.modb", "g") == ("pkg.moda", "f")
    # Two hops: modc.h -> modb.g -> moda.f.
    assert project.resolve("pkg.modc", "h") == ("pkg.moda", "f")


def test_resolve_through_package_init_reexport():
    project = build(
        ("src/pkg/__init__.py", "from pkg.impl import run\n"),
        ("src/pkg/impl.py", "def run():\n    '''Doc.'''\n    return 1\n"),
        ("src/app.py", "from pkg import run\n"),
    )
    assert project.resolve("app", "run") == ("pkg.impl", "run")


def test_resolve_module_alias_and_attribute_access():
    project = build(
        ("src/pkg/__init__.py", ""),
        ("src/pkg/moda.py", "def f():\n    '''Doc.'''\n    return 1\n"),
        ("src/use.py", "import pkg.moda as pm\n"),
    )
    assert project.resolve("use", "pm.f") == ("pkg.moda", "f")


def test_resolve_survives_reexport_cycles():
    project = build(
        ("src/a.py", "from b import thing\n"),
        ("src/b.py", "from a import thing\n"),
    )
    # A circular re-export must terminate, not recurse forever.
    assert project.resolve("a", "thing") is None


# ---------------------------------------------------------------------------
# Method dispatch: static/classmethods and var-typed locals
# ---------------------------------------------------------------------------


_CLS = (
    "class Builder:\n"
    "    '''Doc.'''\n"
    "    @staticmethod\n"
    "    def util(x):\n"
    "        '''Doc.'''\n"
    "        return x\n"
    "    @classmethod\n"
    "    def make(cls):\n"
    "        '''Doc.'''\n"
    "        return cls()\n"
    "    def go(self):\n"
    "        '''Doc.'''\n"
    "        return self.util(1)\n"
)


def test_static_and_classmethod_dispatch_through_class_name():
    project = build(
        ("src/lib.py", _CLS),
        (
            "src/use.py",
            "from lib import Builder\n"
            "def drive():\n"
            "    '''Doc.'''\n"
            "    Builder.util(0)\n"
            "    return Builder.make()\n",
        ),
    )
    callees = project.callees("use", "drive")
    assert ("lib", "Builder.util") in callees
    assert ("lib", "Builder.make") in callees


def test_var_typed_local_dispatches_to_method():
    project = build(
        ("src/lib.py", _CLS),
        (
            "src/use.py",
            "from lib import Builder\n"
            "def drive():\n"
            "    '''Doc.'''\n"
            "    b = Builder()\n"
            "    return b.go()\n",
        ),
    )
    callees = project.callees("use", "drive")
    assert ("lib", "Builder.go") in callees
    # Constructing the class also reaches __init__ territory via self
    # dispatch inside go().
    assert ("lib", "Builder.util") in project.reachable("use", "drive")


# ---------------------------------------------------------------------------
# Executor submissions: resolved, partial, and conservatively unresolved
# ---------------------------------------------------------------------------


_POOL_PRELUDE = (
    "from concurrent.futures import ProcessPoolExecutor\n"
    "from functools import partial\n"
    "def work(x, y=0):\n"
    "    '''Doc.'''\n"
    "    return x + y\n"
)


def test_submission_resolves_top_level_target():
    project = build(
        (
            "src/jobs.py",
            _POOL_PRELUDE
            + "def run():\n"
            "    '''Doc.'''\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(work, 1).result()\n",
        )
    )
    (sub,) = project.submissions("jobs")
    assert sub.pool_kind == "process"
    assert sub.target_kind == "resolved"
    assert sub.target == ("jobs", "work")
    assert not sub.via_partial


def test_submission_unwraps_functools_partial():
    project = build(
        (
            "src/jobs.py",
            _POOL_PRELUDE
            + "def run():\n"
            "    '''Doc.'''\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(partial(work, y=2), 1).result()\n",
        )
    )
    (sub,) = project.submissions("jobs")
    assert sub.target_kind == "resolved"
    assert sub.target == ("jobs", "work")
    assert sub.via_partial


def test_lambda_and_nested_function_submissions_stay_conservative():
    project = build(
        (
            "src/jobs.py",
            _POOL_PRELUDE
            + "def run():\n"
            "    '''Doc.'''\n"
            "    def inner(x):\n"
            "        '''Doc.'''\n"
            "        return x\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        a = pool.submit(lambda: 1)\n"
            "        b = pool.submit(inner, 1)\n"
            "        return a, b\n",
        )
    )
    kinds = sorted(s.target_kind for s in project.submissions("jobs"))
    # A lambda is identified as such; a nested function is *not* guessed
    # to be the top-level symbol of the same name — it stays unresolved.
    assert kinds == ["lambda", "unresolved"]
    assert all(s.target is None for s in project.submissions("jobs"))


def test_pool_attribute_assigned_from_executor_is_typed():
    project = build(
        (
            "src/serve.py",
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(x):\n"
            "    '''Doc.'''\n"
            "    return x\n"
            "class Server:\n"
            "    '''Doc.'''\n"
            "    def __init__(self):\n"
            "        '''Doc.'''\n"
            "        self._pool = ProcessPoolExecutor(2)\n"
            "    def handle(self):\n"
            "        '''Doc.'''\n"
            "        pool = self._pool\n"
            "        return pool.submit(work, 1).result()\n",
        )
    )
    (sub,) = project.submissions("serve")
    assert sub.pool_kind == "process"
    assert sub.target == ("serve", "work")


# ---------------------------------------------------------------------------
# Raise sets: propagation and catch filtering
# ---------------------------------------------------------------------------


_RAISES = (
    "class AlphaError(RuntimeError):\n"
    "    '''Doc.'''\n"
    "class BetaError(ValueError):\n"
    "    '''Doc.'''\n"
    "def low():\n"
    "    '''Doc.'''\n"
    "    raise AlphaError('a')\n"
    "def mid():\n"
    "    '''Doc.'''\n"
    "    low()\n"
    "    raise BetaError('b')\n"
)


def test_raise_set_propagates_through_call_graph():
    project = build(
        (
            "src/lib.py",
            _RAISES
            + "def high():\n"
            "    '''Doc.'''\n"
            "    return mid()\n",
        )
    )
    names = {name for _, name in project.raise_set("lib", "high")}
    assert {"AlphaError", "BetaError"} <= names


def test_raise_set_filters_caught_exceptions_but_keeps_reraise():
    project = build(
        (
            "src/lib.py",
            _RAISES
            + "def quiet():\n"
            "    '''Doc.'''\n"
            "    try:\n"
            "        return mid()\n"
            "    except AlphaError:\n"
            "        return None\n"
            "def loud():\n"
            "    '''Doc.'''\n"
            "    try:\n"
            "        return mid()\n"
            "    except AlphaError:\n"
            "        raise\n",
        )
    )
    quiet = {name for _, name in project.raise_set("lib", "quiet")}
    assert "AlphaError" not in quiet and "BetaError" in quiet
    # A handler that re-raises does not swallow.
    loud = {name for _, name in project.raise_set("lib", "loud")}
    assert "AlphaError" in loud


def test_catching_base_class_swallows_subclass():
    project = build(
        (
            "src/lib.py",
            _RAISES
            + "def base_caught():\n"
            "    '''Doc.'''\n"
            "    try:\n"
            "        return low()\n"
            "    except RuntimeError:\n"
            "        return None\n",
        )
    )
    # AlphaError subclasses RuntimeError: catching the base swallows it.
    assert project.raise_set("lib", "base_caught") == frozenset()


def test_is_exception_class_uses_project_and_builtin_ancestry():
    project = build(("src/lib.py", _RAISES))
    assert project.is_exception_class(("lib", "AlphaError"))
    assert not project.is_exception_class(("lib", "low"))


# ---------------------------------------------------------------------------
# Import graph: cycles, lazy edges, and dumps
# ---------------------------------------------------------------------------


def test_import_cycles_detects_eager_scc_and_ignores_lazy():
    cyclic = build(
        ("src/a.py", "import b\n"),
        ("src/b.py", "import c\n"),
        ("src/c.py", "import a\n"),
    )
    assert cyclic.import_cycles() == (("a", "b", "c"),)
    lazy = build(
        ("src/a.py", "import b\n"),
        (
            "src/b.py",
            "def back():\n"
            "    '''Doc.'''\n"
            "    import a\n"
            "    return a\n",
        ),
    )
    # A function-scoped back-edge is lazy and breaks no cycle.
    assert lazy.import_cycles() == ()


def test_graph_dumps_cover_modules_and_stats():
    project = build(
        ("src/repro/core/cpf.py", "x: int = 1\n"),
        ("src/repro/index/backends.py", "from repro.core.cpf import x\n"),
    )
    payload = project.to_json()
    assert payload["stats"]["files"] == 2
    edges = payload["edges"]
    assert any(
        e["importer"] == "repro.index.backends"
        and e["target"] == "repro.core.cpf"
        for e in edges
    )
    dot = project.to_dot()
    assert dot.startswith("digraph")
    assert "core" in dot and "index" in dot
