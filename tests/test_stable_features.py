"""Tests for the l_s random-feature transfer (Section 2 remark)."""

import numpy as np
import pytest

from repro.core.estimate import estimate_collision_probability
from repro.families.simhash import SimHash
from repro.spaces import euclidean
from repro.spaces.stable_features import StableRandomFeatures, lift_sphere_family


class TestFeatureMap:
    def test_output_shape(self):
        feats = StableRandomFeatures(d=6, m=128, rng=0)
        x = euclidean.random_points(10, 6, rng=1)
        assert feats(x).shape == (10, 128)

    def test_norms_concentrate_around_one(self):
        feats = StableRandomFeatures(d=6, m=2048, rng=2)
        x = euclidean.random_points(50, 6, rng=3)
        norms = np.linalg.norm(feats(x), axis=1)
        assert np.all(np.abs(norms - 1.0) < 0.1)

    @pytest.mark.parametrize("s,expected", [(2.0, "gauss"), (1.0, "laplace")])
    def test_inner_products_match_kernel(self, s, expected):
        d, m, scale = 4, 8192, 2.0
        feats = StableRandomFeatures(d=d, m=m, s=s, scale=scale, rng=4)
        for delta in [0.5, 1.5, 3.0]:
            x, y = euclidean.pairs_at_distance(40, d, delta, rng=5)
            # l1 distance differs from l2; build pairs with exact l1 distance
            # by moving along a single coordinate.
            if s == 1.0:
                y = x.copy()
                y[:, 0] += delta
            ips = np.einsum("ij,ij->i", feats(x), feats(y))
            assert np.mean(ips) == pytest.approx(
                float(feats.kernel(delta)), abs=0.03
            )

    def test_kernel_values(self):
        feats2 = StableRandomFeatures(d=3, m=8, s=2.0, scale=1.0, rng=6)
        assert feats2.kernel(0.0) == 1.0
        assert feats2.kernel(1.0) == pytest.approx(np.exp(-0.5))
        feats1 = StableRandomFeatures(d=3, m=8, s=1.0, scale=1.0, rng=7)
        assert feats1.kernel(1.0) == pytest.approx(np.exp(-1.0))

    def test_kernel_monotone_decreasing(self):
        feats = StableRandomFeatures(d=3, m=8, s=1.5, rng=8)
        deltas = np.linspace(0, 5, 20)
        values = feats.kernel(deltas)
        assert np.all(np.diff(values) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StableRandomFeatures(d=0, m=8)
        with pytest.raises(ValueError):
            StableRandomFeatures(d=3, m=8, s=2.5)
        with pytest.raises(ValueError):
            StableRandomFeatures(d=3, m=8, scale=0.0)
        feats = StableRandomFeatures(d=3, m=8, rng=9)
        with pytest.raises(ValueError):
            feats(np.ones((2, 4)))
        with pytest.raises(ValueError):
            feats.kernel(-1.0)


class TestLiftedFamilies:
    def test_lifted_simhash_cpf_shape(self):
        d, m = 5, 512
        feats = StableRandomFeatures(d=d, m=m, s=2.0, scale=1.5, rng=10)
        lifted = lift_sphere_family(SimHash(m), feats)
        cpf = lifted.cpf
        assert cpf is not None and cpf.arg_kind == "distance"
        # f(kappa(0)) = sim(1) = 1, decreasing in distance.
        assert cpf(0.0) == pytest.approx(1.0, abs=1e-9)
        values = cpf(np.linspace(0, 6, 15))
        assert np.all(np.diff(values) < 1e-12)

    def test_lifted_simhash_measured_matches_predicted(self):
        d, m = 4, 1024
        feats = StableRandomFeatures(d=d, m=m, s=2.0, scale=2.0, rng=11)
        lifted = lift_sphere_family(SimHash(m), feats)
        for delta in [1.0, 3.0]:
            est = estimate_collision_probability(
                lifted,
                lambda n, rng, dd=delta: euclidean.pairs_at_distance(n, d, dd, rng),
                n_functions=150,
                pairs_per_function=80,
                rng=12,
            )
            expected = float(lifted.cpf(delta))
            assert est.p_hat == pytest.approx(expected, abs=0.03), f"delta={delta}"

    def test_exponential_tail_beats_bucket_tail(self):
        """The lifted Gaussian-kernel similarity decays exponentially in
        distance^2, so the CPF's excess over its floor sim(0) = 1/2 does
        too — qualitatively faster than the 1/delta bucket tails."""
        d, m = 4, 256
        feats = StableRandomFeatures(d=d, m=m, s=2.0, scale=1.0, rng=13)
        lifted = lift_sphere_family(SimHash(m), feats)
        floor = 0.5  # sim(0) for SimHash
        e2 = float(lifted.cpf(2.0)) - floor
        e4 = float(lifted.cpf(4.0)) - floor
        assert e4 < e2 / 20  # a 1/delta tail would only halve the excess

    def test_requires_similarity_cpf(self):
        from repro.families.bit_sampling import BitSampling

        feats = StableRandomFeatures(d=4, m=16, rng=14)
        with pytest.raises(ValueError, match="similarity"):
            lift_sphere_family(BitSampling(16), feats)
