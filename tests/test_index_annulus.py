"""Tests for annulus search (Theorem 6.1 / 6.4) and hyperplane queries."""

import numpy as np
import pytest

from repro.data.synthetic import planted_sphere_annulus
from repro.index.annulus import AnnulusIndex, sphere_annulus_index
from repro.index.hyperplane import HyperplaneIndex, hyperplane_rho
from repro.families.euclidean_lsh import ShiftedGaussianProjection
from repro.spaces import euclidean, sphere

D = 24


class TestSphereAnnulusIndex:
    def test_planted_point_found_with_good_probability(self):
        """Theorem 6.1: success probability >= 1/2 per query."""
        hits = 0
        trials = 12
        for seed in range(trials):
            inst = planted_sphere_annulus(400, D, (0.35, 0.55), rng=seed)
            index = sphere_annulus_index(
                inst.points,
                alpha_interval=(0.25, 0.65),
                t=1.6,
                n_tables=120,
                rng=seed + 100,
            )
            result = index.query(inst.query)
            if result.found:
                assert 0.25 <= result.proximity <= 0.65
                hits += 1
        assert hits / trials >= 0.5

    def test_reported_point_is_inside_interval(self):
        inst = planted_sphere_annulus(300, D, (0.4, 0.5), rng=3)
        index = sphere_annulus_index(
            inst.points, (0.3, 0.6), t=1.6, n_tables=150, rng=4
        )
        result = index.query(inst.query)
        if result.found:
            alpha = float(inst.points[result.index] @ inst.query)
            assert 0.3 <= alpha <= 0.6

    def test_budget_bounds_examined_candidates(self):
        inst = planted_sphere_annulus(500, D, (0.4, 0.5), rng=5)
        index = sphere_annulus_index(
            inst.points, (0.3, 0.6), t=1.4, n_tables=50, rng=6, budget_factor=2.0
        )
        result = index.query(inst.query)
        assert result.candidates_examined <= max(1, 2 * 50) + 1

    def test_sublinear_candidate_work(self):
        """The index examines far fewer candidates than a linear scan."""
        n = 2000
        inst = planted_sphere_annulus(n, D, (0.4, 0.5), rng=7)
        index = sphere_annulus_index(
            inst.points, (0.3, 0.6), t=1.8, n_tables=200, rng=8
        )
        result = index.query(inst.query)
        assert result.candidates_examined < n / 2

    def test_interval_validation(self):
        pts = sphere.random_points(10, D, rng=9)
        with pytest.raises(ValueError):
            sphere_annulus_index(pts, (0.6, 0.3), t=1.5, n_tables=5)


class TestEuclideanAnnulus:
    def test_shifted_family_solves_euclidean_annulus(self):
        """A unimodal equation-(2) family peaking near r answers Euclidean
        annulus queries (the Figure 1 family used as Theorem 6.1 input)."""
        n, d = 400, 12
        r = 3.0
        rng = np.random.default_rng(10)
        query = euclidean.random_points(1, d, rng)[0]
        points = euclidean.translate_at_distance(
            np.repeat(query[None, :], n, axis=0), 12.0, rng
        )
        target_idx = 7
        points[target_idx] = euclidean.translate_at_distance(
            query[None, :], r, rng
        )[0]
        family = ShiftedGaussianProjection(d, w=1.0, k=3)  # peaks near 3
        index = AnnulusIndex(
            points,
            family,
            interval=(2.0, 4.5),
            proximity=lambda q, pts: np.linalg.norm(pts - q, axis=1),
            n_tables=120,
            rng=11,
        )
        found = sum(index.query(query).found for _ in range(3))
        assert found >= 1

    def test_no_valid_point_returns_none(self):
        d = 8
        rng = np.random.default_rng(12)
        query = euclidean.random_points(1, d, rng)[0]
        points = euclidean.translate_at_distance(
            np.repeat(query[None, :], 100, axis=0), 20.0, rng
        )
        index = AnnulusIndex(
            points,
            ShiftedGaussianProjection(d, w=1.0, k=3),
            interval=(2.0, 4.0),
            proximity=lambda q, pts: np.linalg.norm(pts - q, axis=1),
            n_tables=40,
            rng=13,
        )
        result = index.query(query)
        assert not result.found
        assert np.isnan(result.proximity)


class TestHyperplane:
    def test_rho_formula(self):
        assert hyperplane_rho(0.5) == pytest.approx((1 - 0.25) / (1 + 0.25))
        with pytest.raises(ValueError):
            hyperplane_rho(0.0)

    def test_finds_orthogonal_vector(self):
        rng = np.random.default_rng(14)
        n = 300
        points = sphere.random_points(n, D, rng)
        query = sphere.random_points(1, D, rng)[0]
        # Plant an exactly orthogonal vector.
        u = sphere.orthogonal_to(query[None, :], rng)[0]
        points[0] = u
        index = HyperplaneIndex(points, alpha=0.3, t=1.5, n_tables=100, rng=15)
        found = sum(index.query(query).found for _ in range(3))
        assert found >= 1
        result = index.query(query)
        if result.found:
            assert abs(points[result.index] @ query) <= 0.3

    def test_alpha_validation(self):
        pts = sphere.random_points(10, D, rng=16)
        with pytest.raises(ValueError):
            HyperplaneIndex(pts, alpha=1.5, t=1.5, n_tables=5)
