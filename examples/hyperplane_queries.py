"""Hyperplane queries for margin-based active learning (Section 6.1).

In pool-based active learning with a linear classifier ``w``, the most
informative unlabeled examples are those closest to the decision hyperplane
— i.e. unit vectors ``x`` with ``|<x, w>|`` smallest ([33, 52], cited by
the paper).  In the DSH framework this is an annulus query centered at
inner product 0 (Section 6.1), with query exponent
``rho = (1 - alpha^2)/(1 + alpha^2)`` for tolerance ``alpha``.

This script simulates active-learning rounds: a pool of unit vectors, a
changing classifier direction, and a HyperplaneIndex that must fetch a
near-hyperplane example far faster than scanning the pool.

Run:  python examples/hyperplane_queries.py
"""

import numpy as np

from repro.index import HyperplaneIndex
from repro.index.hyperplane import hyperplane_rho
from repro.spaces import sphere

SEED = 11
POOL = 4000
DIM = 32
ALPHA = 0.25  # report any x with |<x, w>| <= 0.25


def main():
    rng = np.random.default_rng(SEED)
    pool = sphere.random_points(POOL, DIM, rng)
    print(f"unlabeled pool: {POOL} unit vectors, d={DIM}")
    print(
        f"tolerance alpha={ALPHA}: theoretical exponent "
        f"rho = {hyperplane_rho(ALPHA):.3f} (Section 6.1)"
    )

    index = HyperplaneIndex(
        pool, alpha=ALPHA, t=1.6, n_tables=120, rng=SEED + 1, backend="packed"
    )

    rounds = 10
    successes = 0
    total_examined = 0
    for round_number in range(rounds):
        w = sphere.random_points(1, DIM, rng)[0]  # current classifier normal
        result = index.query(w)
        total_examined += result.candidates_examined
        margins = np.abs(pool @ w)
        best = float(margins.min())
        if result.found:
            successes += 1
            got = abs(float(pool[result.index] @ w))
            print(
                f"round {round_number}: found margin {got:.3f} "
                f"(pool optimum {best:.3f}) after "
                f"{result.candidates_examined} candidates"
            )
        else:
            print(
                f"round {round_number}: no example found within tolerance "
                f"(pool optimum {best:.3f})"
            )
    print(
        f"\nsuccess {successes}/{rounds}; mean candidates per round "
        f"{total_examined / rounds:.0f} vs {POOL} for a scan"
    )


if __name__ == "__main__":
    main()
