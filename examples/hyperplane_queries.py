"""Hyperplane queries for margin-based active learning (Section 6.1).

In pool-based active learning with a linear classifier ``w``, the most
informative unlabeled examples are those closest to the decision hyperplane
— i.e. unit vectors ``x`` with ``|<x, w>|`` smallest ([33, 52], cited by
the paper).  In the DSH framework this is an annulus query centered at
inner product 0 (Section 6.1), with query exponent
``rho = (1 - alpha^2)/(1 + alpha^2)`` for tolerance ``alpha``.

This script simulates active-learning rounds: a pool of unit vectors, a
bundle of candidate classifier directions per round (an ensemble /
committee), and a spec-built HyperplaneIndex that fetches near-hyperplane
examples for the *whole committee at once* with one vectorized
``batch_query`` — far faster than scanning the pool per member.

Run:  python examples/hyperplane_queries.py
"""

import numpy as np

from repro.api import build_index
from repro.index.hyperplane import hyperplane_rho
from repro.spaces import sphere

SEED = 11
POOL = 4000
DIM = 32
ALPHA = 0.25      # report any x with |<x, w>| <= 0.25
COMMITTEE = 10    # classifier directions queried per round


def main():
    rng = np.random.default_rng(SEED)
    pool = sphere.random_points(POOL, DIM, rng)
    print(f"unlabeled pool: {POOL} unit vectors, d={DIM}")
    print(
        f"tolerance alpha={ALPHA}: theoretical exponent "
        f"rho = {hyperplane_rho(ALPHA):.3f} (Section 6.1)"
    )

    index = build_index(
        pool, kind="hyperplane", alpha=ALPHA, t=1.6, n_tables=120,
        rng=SEED + 1,
    )
    print(f"index: {index!r}")

    # One committee of classifier normals, one batched call.
    committee = sphere.random_points(COMMITTEE, DIM, rng)
    results = index.batch_query(committee)

    successes = 0
    total_examined = 0
    for member, result in enumerate(results):
        w = committee[member]
        total_examined += result.candidates_examined
        margins = np.abs(pool @ w)
        best = float(margins.min())
        if result.found:
            successes += 1
            got = abs(float(pool[result.index] @ w))
            print(
                f"member {member}: found margin {got:.3f} "
                f"(pool optimum {best:.3f}) after "
                f"{result.candidates_examined} candidates"
            )
        else:
            print(
                f"member {member}: no example found within tolerance "
                f"(pool optimum {best:.3f})"
            )
    print(
        f"\nsuccess {successes}/{COMMITTEE}; mean candidates per member "
        f"{total_examined / COMMITTEE:.0f} vs {POOL} for a scan "
        f"(batch_query returns exactly what a query-per-member loop would)"
    )


if __name__ == "__main__":
    main()
