"""Privacy-preserving distance estimation (Section 6.4).

Two hospitals hold patient records encoded as binary feature vectors and
want to know whether two records are within (relative) Hamming distance r
— without revealing the vectors or even the exact distance.  Section 6.4's
protocol: both parties hash their vector with N pairs from a
*step-function* DSH family and run private set intersection (PSI) on the
key sets; "Yes" iff the intersection is non-empty.

The step CPF is the privacy mechanism: its collision probability stays at
the bounded flat level Theta(1/t) across [0, r], so even *identical*
records produce only ~N/t = O(log(1/eps)) intersecting keys.  A classical
LSH would match on all N keys for identical records, leaking that q = x
(the triangulation weakness of [45] the paper contrasts against).

The family is built purely from the paper's Hamming toolbox:
f(t) = p0 (1 - t)^J  =  ConstantCollision(p0) (x) BitSampling^J.

Run:  python examples/private_distance.py
"""

import numpy as np

from repro.privacy import PrivateDistanceEstimator, design_protocol
from repro.spaces import hamming

SEED = 23
DIM = 128
R = 0.08       # "similar records": relative Hamming distance <= 8%
C = 3.0        # distances in (r, c r) may answer either way
EPSILON = 0.1  # false negative target
DELTA = 0.1    # false positive target


def main():
    design = design_protocol(d=DIM, r=R, c=C, epsilon=EPSILON, delta=DELTA)
    print("protocol design (Section 6.4):")
    print(f"  bit-sampling power J    = {design.j}")
    print(f"  hash pairs N            = {design.n_hashes}")
    print(f"  flat level p0           = {design.flat_level:.3f}")
    print(f"  p_near = p0 (1-r)^J     = {design.p_near:.4f}")
    print(f"  p_far  = p0 (1-cr)^J    = {design.p_far:.6f}")
    print(f"  flat ratio (Theta cst)  = {design.flat_ratio:.2f}")
    print(f"  effective rho           = {design.rho:.3f}")
    print(f"  expected leak (items)   = {design.expected_leak_items:.1f}")

    estimator = PrivateDistanceEstimator(design, rng=SEED)
    rng = np.random.default_rng(SEED + 1)

    trials = 50
    for label, rel in [("near (t = r/2)", R / 2), ("boundary (t = r)", R),
                       ("gray zone (t = 2r)", 2 * R), ("far (t = 2 c r)", 2 * C * R)]:
        bits = int(round(rel * DIM))
        yes = 0
        for _ in range(trials):
            x, q = hamming.pairs_at_distance(1, DIM, bits, rng)
            yes += estimator.is_within(x, q)
        print(f"  {label:<20} -> Yes rate {yes / trials:.2f}")

    # Leakage for identical records: the step CPF's whole point.
    x = hamming.random_points(1, DIM, rng)
    _, psi = estimator.decide(estimator.sketch_data(x), estimator.sketch_query(x))
    print(
        f"\nidentical records: intersection size {len(psi.intersection)} of "
        f"{design.n_hashes} keys ({psi.leaked_bits:.0f} accounted leaked bits)"
    )
    print(
        "a monotone LSH would intersect on every key here; the bounded flat "
        "level caps leakage at O(log(1/eps)) items regardless of how close "
        "the records are"
    )


if __name__ == "__main__":
    main()
