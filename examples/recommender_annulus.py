"""The paper's motivating recommender scenario: "close, but not too close".

A news site represents articles as unit feature vectors.  Given an article
the user liked, recommending the *nearest* vectors returns near-duplicates
of the same story; the paper's Section 1 example instead asks for articles
on the same topic but with a different perspective — inner product in a
band like [0.35, 0.75]: related, not redundant.

This is exactly an annulus query (Definition 6.3).  We build the
Theorem 6.4 data structure over clustered "topic" vectors, query with an
article, and compare against (a) a plain nearest-neighbor answer (too
similar) and (b) a full linear scan (the work the index avoids).

Run:  python examples/recommender_annulus.py
"""

import numpy as np

from repro.data import clustered_unit_vectors
from repro.index import sphere_annulus_index

SEED = 7
N_CLUSTERS = 12
PER_CLUSTER = 250
DIM = 48
BAND = (0.35, 0.75)  # related-but-not-redundant inner products


def main():
    rng = np.random.default_rng(SEED)
    # concentration 7.5 at d=48 puts same-topic pairwise similarities around
    # conc^2/(conc^2 + d) ~ 0.54 — squarely inside the recommendation band.
    points, labels, centers = clustered_unit_vectors(
        N_CLUSTERS, PER_CLUSTER, DIM, concentration=7.5, rng=rng
    )
    n = points.shape[0]

    # The "liked article" is a point of cluster 0.
    query_idx = int(np.flatnonzero(labels == 0)[0])
    query = points[query_idx]
    sims = points @ query
    sims[query_idx] = -np.inf  # exclude the article itself

    nearest = int(np.argmax(sims))
    in_band = np.flatnonzero((sims >= BAND[0]) & (sims <= BAND[1]))
    print(f"catalog: {n} articles in {N_CLUSTERS} topics, d={DIM}")
    print(f"query article: index {query_idx} (topic {labels[query_idx]})")
    print(
        f"plain nearest neighbor: index {nearest}, similarity {sims[nearest]:.3f} "
        f"(topic {labels[nearest]}) — a near-duplicate, not a recommendation"
    )
    print(f"ground truth: {in_band.size} articles in the band {BAND}")

    # backend="packed" is the vectorized CSR storage layout — same results
    # as the reference "dict" backend, production throughput (see README).
    index = sphere_annulus_index(
        points, alpha_interval=BAND, t=1.7, n_tables=150, rng=SEED + 1,
        backend="packed",
    )

    result = index.query(query)
    print(
        f"\nsingle annulus query: found={result.found} after "
        f"{result.candidates_examined} candidates (vs {n} for a linear "
        f"scan; Theorem 6.1 guarantees success w.p. >= 1/2)"
    )

    hits = index.query_many(query, k=8)
    recommendations = [h.index for h in hits if h.index != query_idx]
    print(f"top-{len(recommendations)} recommendations (index, similarity, topic):")
    for h in hits:
        if h.index == query_idx:
            continue
        print(
            f"  {h.index:>6} {h.proximity:.3f} topic={labels[h.index]} "
            f"(after {h.candidates_examined} candidates)"
        )
    if recommendations:
        same_topic = np.mean(
            [labels[i] == labels[query_idx] for i in recommendations]
        )
        print(
            f"fraction of recommendations sharing the query's topic: "
            f"{same_topic:.2f} — related content, but never the near-duplicate"
        )


if __name__ == "__main__":
    main()
