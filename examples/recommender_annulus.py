"""The paper's motivating recommender scenario: "close, but not too close".

A news site represents articles as unit feature vectors.  Given an article
the user liked, recommending the *nearest* vectors returns near-duplicates
of the same story; the paper's Section 1 example instead asks for articles
on the same topic but with a different perspective — inner product in a
band like [0.35, 0.75]: related, not redundant.

This is exactly an annulus query (Definition 6.3).  We build the
Theorem 6.4 data structure through the spec-driven facade
(``repro.api.build_index``), answer a whole *batch* of liked articles in
one vectorized ``batch_query`` call (how a serving process would), then
drill into one article with ``query_many`` for a top-k list.  The index's
``spec`` serializes to plain JSON — the config another process needs to
rebuild the identical index.

Run:  python examples/recommender_annulus.py
"""

import json

import numpy as np

from repro.api import build_index
from repro.data import clustered_unit_vectors

SEED = 7
N_CLUSTERS = 12
PER_CLUSTER = 250
DIM = 48
BAND = (0.35, 0.75)  # related-but-not-redundant inner products


def main():
    rng = np.random.default_rng(SEED)
    # concentration 7.5 at d=48 puts same-topic pairwise similarities around
    # conc^2/(conc^2 + d) ~ 0.54 — squarely inside the recommendation band.
    points, labels, centers = clustered_unit_vectors(
        N_CLUSTERS, PER_CLUSTER, DIM, concentration=7.5, rng=rng
    )
    n = points.shape[0]
    print(f"catalog: {n} articles in {N_CLUSTERS} topics, d={DIM}")

    # One factory call: kind + family name + flat params.  The family's
    # peak (alpha_max) is auto-placed at the Theorem 6.4 midpoint of the
    # band, d is inferred from the catalog, and the packed (vectorized CSR)
    # backend is the default.
    index = build_index(
        points,
        kind="annulus",
        family="annulus_sphere",
        t=1.7,
        interval=BAND,
        n_tables=150,
        rng=SEED + 1,
    )
    print(f"index: {index!r}")
    print(f"serving config: {json.dumps(index.spec.to_dict())[:100]}...")

    # A batch of liked articles, one per topic (one per incoming user) —
    # served in one vectorized call (identical results to looping over
    # index.query).
    liked = np.array(
        [int(np.flatnonzero(labels == topic)[0]) for topic in range(N_CLUSTERS)]
    )
    results = index.batch_query(points[liked])
    served = sum(
        r.found and r.index != int(q) for r, q in zip(results, liked)
    )
    work = sum(r.stats.retrieved for r in results)
    print(
        f"\nbatched serving: {served}/{liked.size} liked articles got an "
        f"in-band recommendation ({work / liked.size:.0f} candidates "
        f"examined per query vs {n} for a linear scan; Theorem 6.1 "
        f"guarantees success w.p. >= 1/2 per query)"
    )

    # Drill into one article: what a plain nearest-neighbor would return,
    # and the top-k diverse recommendations from the annulus stream.
    query_idx = int(np.flatnonzero(labels == 0)[0])
    query = points[query_idx]
    sims = points @ query
    sims[query_idx] = -np.inf  # exclude the article itself
    nearest = int(np.argmax(sims))
    in_band = np.flatnonzero((sims >= BAND[0]) & (sims <= BAND[1]))
    print(
        f"\nquery article {query_idx} (topic {labels[query_idx]}): plain "
        f"nearest neighbor is {nearest}, similarity {sims[nearest]:.3f} "
        f"(topic {labels[nearest]}) — a near-duplicate, not a recommendation"
    )
    print(f"ground truth: {in_band.size} articles in the band {BAND}")

    hits = index.query_many(query, k=8)
    recommendations = [h.index for h in hits if h.index != query_idx]
    print(f"top-{len(recommendations)} recommendations (index, similarity, topic):")
    for h in hits:
        if h.index == query_idx:
            continue
        print(
            f"  {h.index:>6} {h.proximity:.3f} topic={labels[h.index]} "
            f"(after {h.candidates_examined} candidates)"
        )
    if recommendations:
        same_topic = np.mean(
            [labels[i] == labels[query_idx] for i in recommendations]
        )
        print(
            f"fraction of recommendations sharing the query's topic: "
            f"{same_topic:.2f} — related content, but never the near-duplicate"
        )


if __name__ == "__main__":
    main()
