"""Async serving workflow: coalesce, shed, hot-swap — one running server.

The sharded-serving example scales *batched* queries across cores; this
one serves *single-query* requests the way an online system receives
them — concurrently, one point at a time — without giving up the batch
path's vectorisation.  The script walks the full lifecycle:

1. build and **save** a packed index, then start an
   :class:`~repro.serving.AsyncIndexServer` over the saved bundle;
2. fire concurrent single-query requests: the server coalesces them
   into micro-batches (bounded by ``max_batch`` and a ``max_wait_us``
   window), executes each batch as one vectorised ``batch_query``, and
   fans the rows back — responses are bit-identical to querying the
   index directly, and each carries per-request :class:`ServeStats`;
3. overload a tiny server: admission is bounded by ``max_pending``
   outstanding requests, and the excess sheds *fast* with a typed
   :class:`ServerOverloadedError` instead of queueing without bound;
4. **hot-swap** to a freshly written snapshot while requests are in
   flight: old-generation batches drain on the old mmap'd bundle, new
   admissions run on the new one, and nothing is dropped or mixed.

The synchronous :func:`serve_in_thread` handle at the end shows the
same server satisfying the ``Queryable`` protocol for non-async
callers.

Run:  python examples/async_serving.py
"""

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import build_index, save_index
from repro.serving import (
    AsyncIndexServer,
    ServerOverloadedError,
    serve_in_thread,
)
from repro.spaces import hamming

RNG_SEED = 2018
N_POINTS = 20_000
N_REQUESTS = 256
D = 64
L = 12
SPEC = dict(
    kind="raw", family="bit_sampling", power=14, n_tables=L, rng=RNG_SEED + 1
)


def clustered_points(n, rng):
    prototypes = hamming.random_points(60, D, rng=rng)
    rows = prototypes[rng.integers(0, prototypes.shape[0], size=n)]
    return rows ^ (rng.random(size=rows.shape) < 0.01).astype(np.int8)


async def fire(server, queries):
    """One concurrent task per query — what an async request handler
    does; the server turns them into micro-batches."""
    return await asyncio.gather(*(server.query(q) for q in queries))


async def demo(base, swap_base, queries, reference, swap_reference):
    async with AsyncIndexServer(
        str(base), max_batch=64, max_wait_us=2_000
    ) as server:
        # -- coalescing: concurrent singles, batched execution ---------
        start = time.perf_counter()
        responses = await fire(server, queries)
        elapsed = time.perf_counter() - start
        assert [r.indices for r in responses] == [
            r.indices for r in reference
        ], "coalesced responses must match the direct index"
        metrics = server.metrics()
        print(
            f"served {len(responses)} concurrent requests in "
            f"{elapsed * 1e3:.0f} ms ({len(responses) / elapsed:.0f} q/s) "
            f"across {metrics['batches']} micro-batches "
            f"(mean {metrics['mean_batch']:.1f} queries/batch); "
            "responses identical to the direct index"
        )
        sample = responses[0].serve
        print(
            f"per-request stats: coalesce wait "
            f"{sample.coalesce_wait_s * 1e6:.0f} us, execute "
            f"{sample.execute_s * 1e3:.2f} ms, batch of {sample.batch_size} "
            f"on snapshot gen {sample.snapshot} replica {sample.replica}"
        )

        # -- hot-swap under load ---------------------------------------
        # Requests racing a swap may land on either generation — each
        # response records which snapshot served it, and must match that
        # generation's direct answer.  Batches never mix generations.
        oracle = {0: reference, 1: swap_reference}
        in_flight = asyncio.ensure_future(fire(server, queries))
        swap_info = await server.swap(str(swap_base))
        after = await fire(server, queries)
        racing = await in_flight
        for i, r in enumerate(racing):
            assert r.indices == oracle[r.serve.snapshot][i].indices, (
                "response must match the generation that served it"
            )
        assert [r.indices for r in after] == [
            r.indices for r in swap_reference
        ], "post-swap requests must see the new snapshot"
        by_gen = {r.serve.snapshot for r in racing}
        batches = {}
        for r in racing:
            batches.setdefault(r.serve.batch_id, set()).add(r.serve.snapshot)
        assert all(len(gens) == 1 for gens in batches.values()), (
            "a micro-batch must never mix snapshot generations"
        )
        print(
            f"hot-swapped to generation {swap_info['generation']} with "
            f"{len(racing)} requests in flight (served on generations "
            f"{sorted(by_gen)}): zero dropped, zero mixed "
            f"(health ok: {(await server.check_health())['ok']})"
        )

    # -- backpressure: a deliberately tiny server ----------------------
    async with AsyncIndexServer(
        str(base), max_batch=4, max_wait_us=50_000, max_pending=8
    ) as tiny:
        outcomes = await asyncio.gather(
            *(tiny.query(q) for q in queries), return_exceptions=True
        )
        shed = sum(isinstance(o, ServerOverloadedError) for o in outcomes)
        served = len(outcomes) - shed
        print(
            f"overload demo (max_pending=8): {served} served, {shed} shed "
            "with ServerOverloadedError — bounded memory, fast failure"
        )


def main():
    rng = np.random.default_rng(RNG_SEED)
    points = clustered_points(N_POINTS, rng)
    swap_points = clustered_points(N_POINTS, rng)
    queries = clustered_points(N_REQUESTS, rng)

    print(f"building packed index: n={N_POINTS}, d={D}, L={L}")
    index = build_index(points, **SPEC)
    swap_index = build_index(swap_points, **SPEC)
    reference = index.batch_query(queries)
    swap_reference = swap_index.batch_query(queries)

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "serve_v1"
        swap_base = Path(tmp) / "serve_v2"
        save_index(index, base)
        save_index(swap_index, swap_base)

        asyncio.run(
            demo(base, swap_base, queries, reference, swap_reference)
        )

        # -- the same server as a synchronous Queryable ----------------
        with serve_in_thread(str(base), max_batch=32) as handle:
            result = handle.query(queries[0])
            batch = handle.batch_query(queries[:16])
            assert result.indices == reference[0].indices
            assert [r.indices for r in batch] == [
                r.indices for r in reference[:16]
            ]
            print(
                "sync handle: query()/batch_query() satisfy Queryable — "
                f"{handle.metrics()['served']} requests served through the "
                "same coalescing tier"
            )


if __name__ == "__main__":
    main()
