"""Quickstart: what distance-sensitive hashing is, in five minutes.

Classical LSH gives hash families whose collision probability *decreases*
with distance.  The DSH framework (Aumüller, Christiani, Pagh, Silvestri;
PODS 2018) asks for collision probability equal to an (almost) arbitrary
function of distance — increasing, unimodal, or step-shaped — by allowing a
*pair* of functions ``(h, g)``: data points are hashed with ``h``, queries
with ``g``.

This script samples four families with qualitatively different CPFs,
measures their collision rates against the analytic predictions, and prints
the comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import estimate_collision_probability
from repro.families import (
    AnnulusFamily,
    AntiBitSampling,
    BitSampling,
    ShiftedGaussianProjection,
)
from repro.spaces import euclidean, hamming, sphere

RNG_SEED = 2018
D_HAMMING = 64
D_SPHERE = 32
D_EUCLID = 16


def show(title, rows):
    print(f"\n{title}")
    print(f"  {'x':>8} {'measured':>10} {'analytic':>10}")
    for x, measured, analytic in rows:
        print(f"  {x:>8.3f} {measured:>10.4f} {analytic:>10.4f}")


def hamming_families():
    """Decreasing vs increasing CPFs on the Hamming cube (Section 4.1)."""
    decreasing = BitSampling(D_HAMMING)        # f(t) = 1 - t
    increasing = AntiBitSampling(D_HAMMING)    # f(t) = t   (a pure DSH effect)
    for name, family in [("bit-sampling (LSH)", decreasing),
                         ("anti bit-sampling (anti-LSH)", increasing)]:
        rows = []
        for r in [4, 16, 32, 48]:
            est = estimate_collision_probability(
                family,
                lambda n, rng, r=r: hamming.pairs_at_distance(n, D_HAMMING, r, rng),
                n_functions=200,
                pairs_per_function=100,
                rng=RNG_SEED,
            )
            rows.append((r / D_HAMMING, est.p_hat, float(family.cpf(r / D_HAMMING))))
        show(f"{name}: collision probability vs relative Hamming distance", rows)


def unimodal_euclidean():
    """The Figure 1 family: eq. (2) with k = 3, w = 1 peaks at distance ~3."""
    family = ShiftedGaussianProjection(D_EUCLID, w=1.0, k=3)
    rows = []
    for delta in [0.5, 1.5, 3.0, 5.0, 8.0]:
        est = estimate_collision_probability(
            family,
            lambda n, rng, dd=delta: euclidean.pairs_at_distance(n, D_EUCLID, dd, rng),
            n_functions=200,
            pairs_per_function=100,
            rng=RNG_SEED + 1,
        )
        rows.append((delta, est.p_hat, float(family.cpf(delta))))
    show("shifted Euclidean family (k=3, w=1): unimodal CPF (Figure 1)", rows)


def annulus_on_sphere():
    """The Section 6.2 family: CPF peaked at a chosen inner product."""
    family = AnnulusFamily(D_SPHERE, alpha_max=0.4, t=1.8)
    rows = []
    for alpha in [-0.4, 0.0, 0.4, 0.7]:
        est = estimate_collision_probability(
            family,
            lambda n, rng, a=alpha: sphere.pairs_at_inner_product(n, D_SPHERE, a, rng),
            n_functions=300,
            pairs_per_function=100,
            rng=RNG_SEED + 2,
        )
        rows.append((alpha, est.p_hat, float(family.cpf(alpha))))
    show("annulus family (alpha_max=0.4, t=1.8): CPF vs inner product", rows)


def main():
    print("Distance-Sensitive Hashing — quickstart")
    print("=" * 60)
    hamming_families()
    unimodal_euclidean()
    annulus_on_sphere()
    print("\nAll measured rates should track the analytic CPFs closely.")


if __name__ == "__main__":
    main()
