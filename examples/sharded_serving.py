"""Serving workflow: build once, save, zero-copy reload, shard for cores.

A production serving tier should not re-hash the whole point set on every
cold start, and a batched query stream should use every core.  This script
walks the full lifecycle:

1. build a packed Theorem 6.1 index and **save** it (`save_index`): the CSR
   table arrays land in one uncompressed `.npz`, the spec + sampled-pair
   RNG state in a JSON sidecar;
2. **reload** it (`load_index`): the arrays come back as read-only memory
   maps — cold start is file-open time, O(1) in n — and answers are
   byte-identical to the original;
3. build the same spec with ``shards=4``: a `ShardedIndex` that partitions
   the points into contiguous shards with identical hash pairs, saves one
   file pair per shard, and (reloaded with ``workers=``) fans `batch_query`
   out over a persistent process pool whose workers mmap the shard files —
   no table data is ever pickled.  Large hit streams come back through
   POSIX shared memory instead of the executor pipe, and a
   ``max_retrieved`` budget is clipped *inside the workers* (exactly —
   merged results stay bit-identical), so the pipe carries only small
   metadata; ``pool_index.last_transport`` reports the split.

Run:  python examples/sharded_serving.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import build_index, load_index, save_index
from repro.serving import ServingOptions
from repro.spaces import hamming

RNG_SEED = 2018
N_POINTS = 20_000
N_QUERIES = 512
D = 64
L = 12
SPEC = dict(
    kind="raw", family="bit_sampling", power=14, n_tables=L, rng=RNG_SEED + 1
)


def clustered_points(n, rng):
    prototypes = hamming.random_points(60, D, rng=rng)
    rows = prototypes[rng.integers(0, prototypes.shape[0], size=n)]
    return rows ^ (rng.random(size=rows.shape) < 0.01).astype(np.int8)


def main():
    rng = np.random.default_rng(RNG_SEED)
    points = clustered_points(N_POINTS, rng)
    queries = clustered_points(N_QUERIES, rng)

    print(f"building packed index: n={N_POINTS}, d={D}, L={L}")
    start = time.perf_counter()
    index = build_index(points, **SPEC)
    build_s = time.perf_counter() - start
    reference = index.batch_query(queries)

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "prod_index"
        save_index(index, base)
        files = sorted(p.name for p in Path(tmp).iterdir())
        print(f"saved -> {files}")

        start = time.perf_counter()
        served = load_index(base)          # mmap'd: no hashing, no copies
        load_s = time.perf_counter() - start
        answers = served.batch_query(queries)
        assert [r.indices for r in answers] == [r.indices for r in reference]
        print(
            f"cold start: build {build_s * 1e3:.0f} ms vs load "
            f"{load_s * 1e3:.1f} ms (x{build_s / load_s:.0f}); answers identical"
        )

        sharded = build_index(points, **SPEC, shards=4, workers=2)
        shard_base = Path(tmp) / "prod_sharded"
        save_index(sharded, shard_base)
        print(f"sharded save: {sharded!r}")

        with load_index(shard_base, options=ServingOptions(workers=2)) as pool_index:
            print(f"pool serving: {pool_index!r}")
            pooled = pool_index.batch_query(queries)
            assert [r.indices for r in pooled] == [
                r.indices for r in reference
            ]
            start = time.perf_counter()
            pool_index.batch_query(queries)
            pool_s = time.perf_counter() - start
            transport = pool_index.last_transport
            print(
                f"pooled batch of {N_QUERIES} queries: {pool_s * 1e3:.0f} ms "
                f"({N_QUERIES / pool_s:.0f} q/s), results identical to the "
                "unsharded in-memory index"
            )
            print(
                f"transport: {transport['pipe_bytes']} B over the executor "
                f"pipe, {transport['shm_bytes']} B via shared memory "
                f"({transport['tasks']} tasks across {transport['chunks']} "
                "query chunks)"
            )


if __name__ == "__main__":
    main()
