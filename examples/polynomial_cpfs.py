"""Designing CPFs as polynomials (Section 5, Theorems 5.1 & 5.2, Figure 4).

The paper's general constructions let you *prescribe* a collision
probability function:

* on the unit sphere, any polynomial ``P`` with ``sum |a_i| <= 1`` gives
  collision probability ``sim(P(<x, y>))`` via the Valiant embedding pair
  (Theorem 5.1) — including the Chebyshev-damped shapes of Figure 4;
* in Hamming space, any polynomial with no root of real part in (0, 1)
  gives collision probability ``P(t)/Delta`` via root-factorized
  bit-sampling gadgets (Theorem 5.2).

This script builds one of each, prints measured-vs-target curves, and
demonstrates the scaling factor Delta accounting.

Run:  python examples/polynomial_cpfs.py
"""

import numpy as np

from repro.core import estimate_collision_probability
from repro.families import (
    PolynomialSphereFamily,
    build_polynomial_family,
    polynomial_sphere_cpf,
)
from repro.spaces import hamming, sphere

SEED = 31
D_SPHERE = 4
D_HAMMING = 64


def sphere_polynomial():
    # Figure 4's damped Chebyshev: (2 t^2 - 1)/3 — a CPF shaped like |alpha|.
    coeffs = [-1 / 3, 0.0, 2 / 3]
    family = PolynomialSphereFamily(coeffs, D_SPHERE)
    target = polynomial_sphere_cpf(coeffs)
    print("sphere (Theorem 5.1): P(t) = (2t^2 - 1)/3 through SimHash")
    print(f"  embedding dimension: {family.embedding.output_dim}")
    print(f"  {'alpha':>7} {'measured':>9} {'sim(P(a))':>10}")
    for alpha in [-0.9, -0.5, 0.0, 0.5, 0.9]:
        est = estimate_collision_probability(
            family,
            lambda n, rng, a=alpha: sphere.pairs_at_inner_product(
                n, D_SPHERE, a, rng
            ),
            n_functions=150,
            pairs_per_function=80,
            rng=SEED,
        )
        print(f"  {alpha:>7.2f} {est.p_hat:>9.4f} {float(target(alpha)):>10.4f}")


def hamming_polynomial():
    # P(t) = (t + 0.5)(2 - t): increasing then gently bending — impossible
    # as a symmetric LSH CPF, easy as a DSH with Delta = 4.
    coeffs = [1.0, 1.5, -1.0]
    scheme = build_polynomial_family(coeffs, D_HAMMING)
    print("\nHamming (Theorem 5.2): P(t) = (t + 1/2)(2 - t)")
    print(
        f"  construction Delta = {scheme.delta:g} "
        f"(theorem's stated Delta = {scheme.theorem_delta:g})"
    )
    print(f"  {'t':>7} {'measured':>9} {'P(t)/Delta':>11}")
    for r in [0, 16, 32, 48, 64]:
        est = estimate_collision_probability(
            scheme.family,
            lambda n, rng, rr=r: hamming.pairs_at_distance(n, D_HAMMING, rr, rng),
            n_functions=200,
            pairs_per_function=80,
            rng=SEED + 1,
        )
        t = r / D_HAMMING
        print(f"  {t:>7.2f} {est.p_hat:>9.4f} {float(scheme.cpf(t)):>11.4f}")


def main():
    print("Prescribing collision probability functions as polynomials")
    print("=" * 60)
    sphere_polynomial()
    hamming_polynomial()


if __name__ == "__main__":
    main()
