"""Output-sensitive spherical range reporting (Section 6.3, Theorem 6.5).

Report *all* points within distance r of a query.  A classical LSH wastes
work: the closest points collide in nearly every repetition, so each is
retrieved L times.  A step-function CPF retrieves every in-range point with
roughly equal probability, making the duplicate overhead per reported point
O(f_max / f_min) — constant for a flat step (Theorem 6.5).

This script builds both indexes over the same planted instance and compares
recall and duplicates-per-reported-point.

Run:  python examples/range_reporting.py
"""

import numpy as np

from repro.core.combinators import PoweredFamily
from repro.data import planted_euclidean_range
from repro.families import ShiftedGaussianProjection, design_step_family
from repro.index import RangeReportingIndex

SEED = 5
DIM = 8
RADIUS = 4.0
N_POINTS = 1500
N_NEAR = 60
N_TABLES = 60


def euclid(q, pts):
    return np.linalg.norm(pts - q, axis=1)


def main():
    inst = planted_euclidean_range(
        N_POINTS, DIM, RADIUS, n_near=N_NEAR, rng=SEED
    )
    truth = set(inst.near_indices)
    print(
        f"instance: {N_POINTS} points, {N_NEAR} planted within r={RADIUS}, "
        f"d={DIM}"
    )

    # Step-function CPF (Figure 2 mixture): flat on [0, r].
    design = design_step_family(DIM, r_flat=RADIUS, level=0.12, n_components=4)
    print(
        f"step design: f_min={design.f_min:.3f} f_max={design.f_max:.3f} "
        f"(ratio {design.f_max / design.f_min:.2f}), tail={design.tail:.3f}"
    )
    # Both indexes use the packed (vectorized CSR) storage backend; results
    # are identical to the reference "dict" backend (see README).
    step_index = RangeReportingIndex(
        inst.points, design.family, RADIUS, euclid, N_TABLES, rng=SEED + 1,
        backend="packed",
    )

    # Classical monotone LSH baseline at a comparable far-distance rate.
    classical_family = PoweredFamily(ShiftedGaussianProjection(DIM, w=4.0, k=0), 2)
    classical_index = RangeReportingIndex(
        inst.points, classical_family, RADIUS, euclid, N_TABLES, rng=SEED + 2,
        backend="packed",
    )

    print(f"\n{'index':<22}{'recall':>8}{'reported':>10}{'in-range':>10}"
          f"{'per-report':>12}{'far noise':>11}")
    for name, index in [("step CPF (Thm 6.5)", step_index),
                        ("classical LSH", classical_index)]:
        report = index.query(inst.query)
        recall = len(set(report.indices) & truth) / len(truth)
        print(
            f"{name:<22}{recall:>8.2f}{len(report.indices):>10}"
            f"{report.in_range_retrievals:>10}"
            f"{report.retrievals_per_report:>12.1f}{report.far_retrievals:>11}"
        )
    print(
        "\nTheorem 6.5: the in-range retrievals per reported point are "
        "bounded by L*f_max — near L*f_min (the minimum possible for this "
        "recall) when the step is flat, but much larger for the classical "
        "index whose closest points collide in almost every table"
    )


if __name__ == "__main__":
    main()
