"""Output-sensitive spherical range reporting (Section 6.3, Theorem 6.5).

Report *all* points within distance r of a query.  A classical LSH wastes
work: the closest points collide in nearly every repetition, so each is
retrieved L times.  A step-function CPF retrieves every in-range point with
roughly equal probability, making the duplicate overhead per reported point
O(f_max / f_min) — constant for a flat step (Theorem 6.5).

Both indexes are built through the spec-driven facade — the step mixture
as ``family="step_euclidean"`` and the classical baseline as
``family="euclidean_lsh"`` with the generic ``power`` sharpener — and both
answer a query batch with one vectorized ``batch_query`` call.

Run:  python examples/range_reporting.py
"""

import numpy as np

from repro.api import build_index
from repro.data import planted_euclidean_range
from repro.families import design_step_family

SEED = 5
DIM = 8
RADIUS = 4.0
N_POINTS = 1500
N_NEAR = 60
N_TABLES = 60
STEP_LEVEL = 0.12


def main():
    inst = planted_euclidean_range(
        N_POINTS, DIM, RADIUS, n_near=N_NEAR, rng=SEED
    )
    truth = set(inst.near_indices)
    print(
        f"instance: {N_POINTS} points, {N_NEAR} planted within r={RADIUS}, "
        f"d={DIM}"
    )

    # Report the step design's flatness (the Theorem 6.5 duplicate factor);
    # the same parameters go into the spec below, which rebuilds the same
    # (deterministic) mixture.
    design = design_step_family(
        DIM, r_flat=RADIUS, level=STEP_LEVEL, n_components=4
    )
    print(
        f"step design: f_min={design.f_min:.3f} f_max={design.f_max:.3f} "
        f"(ratio {design.f_max / design.f_min:.2f}), tail={design.tail:.3f}"
    )

    step_index = build_index(
        inst.points,
        kind="range_reporting",
        family="step_euclidean",
        r_flat=RADIUS,
        level=STEP_LEVEL,
        n_components=4,
        r_report=RADIUS,
        distance="euclidean_distance",
        n_tables=N_TABLES,
        rng=SEED + 1,
    )
    # Classical monotone LSH baseline at a comparable far-distance rate:
    # the k=0 shifted family squared via the generic `power` parameter.
    classical_index = build_index(
        inst.points,
        kind="range_reporting",
        family="euclidean_lsh",
        w=4.0,
        k=0,
        power=2,
        r_report=RADIUS,
        distance="euclidean_distance",
        n_tables=N_TABLES,
        rng=SEED + 2,
    )
    print(f"step index: {step_index!r}")

    # A small query batch: the planted query plus jittered variants, served
    # with one vectorized call per index.
    rng = np.random.default_rng(SEED + 3)
    queries = np.vstack(
        [inst.query, inst.query + rng.normal(0, 0.3, size=(3, DIM))]
    )

    print(f"\n{'index':<22}{'recall':>8}{'reported':>10}{'in-range':>10}"
          f"{'per-report':>12}{'far noise':>11}")
    for name, index in [("step CPF (Thm 6.5)", step_index),
                        ("classical LSH", classical_index)]:
        reports = index.batch_query(queries)  # == [index.query(q) for q ...]
        report = reports[0]                   # the planted query's report
        recall = len(set(report.indices) & truth) / len(truth)
        print(
            f"{name:<22}{recall:>8.2f}{len(report.indices):>10}"
            f"{report.in_range_retrievals:>10}"
            f"{report.retrievals_per_report:>12.1f}{report.far_retrievals:>11}"
        )
    print(
        "\nTheorem 6.5: the in-range retrievals per reported point are "
        "bounded by L*f_max — near L*f_min (the minimum possible for this "
        "recall) when the step is flat, but much larger for the classical "
        "index whose closest points collide in almost every table"
    )


if __name__ == "__main__":
    main()
