"""Multi-core sharded serving of the Theorem 6.1 index.

The index is embarrassingly parallel across data partitions: each of the
``L`` tables is an independent repetition, so splitting the point set into
``S`` contiguous shards yields ``S`` independent indexes whose buckets
partition the unsharded index's buckets.  Because every shard samples the
*same* ``L`` hash pairs (same spec seed), the merged candidate stream —
table by table, shards in ascending-offset order — is element-for-element
identical to the unsharded stream: within a bucket, insertion order is
increasing point index, and contiguous shards keep global indices
increasing across the shard concatenation.  :class:`ShardedIndex` performs
that merge exactly, including the Theorem 6.1 early-termination budget
(applied to the *merged* per-table counts) and first-seen dedup order, so
sharded and unsharded indexes are observably identical
(``tests/test_sharded_parity.py`` enforces this differentially).

Two serving modes share the merge:

* **in-process** — shards are live ``DSHIndex`` objects; queries are
  hashed once (all shards share the pairs) and each shard's packed arrays
  are probed serially.  This is the correctness/reference mode.
* **process pool** — after :meth:`ShardedIndex.save`, ``load(path,
  workers=W)`` starts a persistent ``ProcessPoolExecutor``; each
  ``batch_query`` chunks the query block across ``(shard, chunk)`` tasks
  so every worker stays busy, and every worker memory-maps the shard
  files it touches on first use (cached by ``(path, mtime_ns, size)``, so
  a shard file hot-swapped in place is picked up on the next request).
  No table data is ever pickled, and the OS page cache shares the mapped
  arrays across workers.

Pool results travel back through two devices that keep the executor pipe
nearly empty:

* **worker-side budget clipping** — each worker applies the
  exactness-preserving table-granularity ``max_retrieved`` clip
  (:func:`~repro.index.backends.clip_batch_hits`) before returning, so
  only hits the merge can actually use are shipped; the pre-clip
  ``full_table_counts`` ride along and the merged
  :func:`~repro.index.backends.budget_truncation` runs on the *full*
  merged counts, keeping results bit-identical to the unsharded index.
* **shared-memory transport** — hit arrays at or above
  :data:`SHM_MIN_BYTES` are written to ``multiprocessing.shared_memory``
  blocks and only a small descriptor is pickled through the pipe (small
  results fall back to plain pickling, which is cheaper than a segment
  round trip).  The parent takes ownership of each segment (attach +
  unlink) before merging, so segments never outlive the request even if
  the merge raises.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api builds us)
    from repro.api import IndexSpec
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.index.backends import (
    BatchHits,
    CandidateResult,
    QueryStats,
    budget_truncation,
    clip_batch_hits,
    first_seen_dedup,
)
from repro.index.lsh_index import DSHIndex
from repro.index.persistence import FORMAT_VERSION

__all__ = ["ShardedIndex", "shard_bounds", "SHM_MIN_BYTES"]

#: Hit payloads at or above this many bytes return from pool workers via a
#: shared-memory segment; smaller ones are pickled through the executor
#: pipe directly (a segment create/attach/unlink round trip costs more
#: than pickling a few KB).
SHM_MIN_BYTES = 32_768

#: Smallest query-chunk a pool ``batch_query`` will split off — below this
#: the per-task overhead (submit, hash, descriptor) dominates.
MIN_CHUNK_QUERIES = 16


def shard_bounds(n_points: int, shards: int) -> np.ndarray:
    """Contiguous shard boundaries: ``shards + 1`` offsets with shard
    sizes differing by at most one (``np.array_split`` convention), every
    shard non-empty."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if n_points < shards:
        raise ValueError(
            f"cannot split {n_points} points into {shards} non-empty shards"
        )
    base, extra = divmod(int(n_points), int(shards))
    sizes = np.full(shards, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(sizes)])


# Per-process cache of memory-mapped shard indexes, keyed by path and
# validated against the shard file's (mtime_ns, size) on every request: a
# pool worker loads each shard it is handed once (O(1) file opens, no
# table bytes over the pipe), reuses it while the file is unchanged, and
# transparently reloads when the file is re-saved in place (hot swap) —
# a long-lived pool never answers from a stale mmap.
_SHARD_CACHE: dict[str, tuple[tuple[int, int], DSHIndex]] = {}


def _shard_signature(shard_path: str) -> tuple[int, int]:
    """Freshness signature of a shard's array bundle on disk."""
    from repro.api import index_paths

    npz_path, _ = index_paths(shard_path)
    stat = os.stat(npz_path)
    return (stat.st_mtime_ns, stat.st_size)


def _cached_shard(shard_path: str, mmap: bool) -> DSHIndex:
    from repro.api import load_index

    signature = _shard_signature(shard_path)
    cached = _SHARD_CACHE.get(shard_path)
    if cached is not None and cached[0] == signature:
        return cached[1]
    index = load_index(shard_path, mmap=mmap)
    _SHARD_CACHE[shard_path] = (signature, index)
    return index


@dataclasses.dataclass(frozen=True)
class _ShmBlock:
    """Picklable descriptor of a :class:`BatchHits` whose ``hits`` array
    lives in a shared-memory segment: what actually crosses the executor
    pipe instead of the hit bytes."""

    shm_name: str
    dtype: str
    size: int
    offsets: np.ndarray
    table_counts: np.ndarray
    full_table_counts: np.ndarray | None
    truncated: np.ndarray


def _ship_block(block: BatchHits, shm_min_bytes: int | None):
    """Worker-side transport encoding: shared memory for large hit arrays,
    the block itself (plain pickle) below the threshold (and always for
    empty streams — a zero-byte segment cannot be created)."""
    if (
        shm_min_bytes is None
        or block.hits.nbytes < shm_min_bytes
        or block.hits.nbytes == 0
    ):
        return block
    segment = shared_memory.SharedMemory(create=True, size=block.hits.nbytes)
    try:
        # The parent attaches and unlinks this segment; unregister it from
        # this worker's resource tracker so worker shutdown neither warns
        # about nor double-unlinks a segment it no longer owns.
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    view = np.frombuffer(
        segment.buf, dtype=block.hits.dtype, count=block.hits.size
    )
    view[:] = block.hits
    del view
    name = segment.name
    segment.close()
    return _ShmBlock(
        shm_name=name,
        dtype=block.hits.dtype.str,
        size=int(block.hits.size),
        offsets=block.offsets,
        table_counts=block.table_counts,
        full_table_counts=block.full_table_counts,
        truncated=block.truncated,
    )


def _resolve_block(raw):
    """Parent-side transport decoding: returns ``(block, release)`` where
    ``release`` (or ``None`` for pickled blocks) must be called after every
    view of ``block.hits`` is dropped.  The segment is unlinked immediately
    on attach — the parent owns it from here, and the memory is freed when
    the last mapping closes even if the process dies mid-merge."""
    if isinstance(raw, BatchHits):
        return raw, None
    segment = shared_memory.SharedMemory(name=raw.shm_name)
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    hits = np.frombuffer(
        segment.buf, dtype=np.dtype(raw.dtype), count=raw.size
    )
    block = BatchHits(
        hits=hits,
        offsets=raw.offsets,
        table_counts=raw.table_counts,
        truncated=raw.truncated,
        full_table_counts=raw.full_table_counts,
    )

    def release():
        try:
            segment.close()
        except BufferError:  # a stray view still alive; freed at exit
            pass

    return block, release


def _pool_batch_hits(
    shard_path: str,
    queries: np.ndarray,
    mmap: bool,
    max_retrieved: int | None = None,
    shm_min_bytes: int | None = SHM_MIN_BYTES,
):
    """Pool worker: resolve one shard's hit streams for a query chunk,
    budget-clip them shard-locally, and encode them for transport."""
    index = _cached_shard(shard_path, mmap)
    block = clip_batch_hits(
        index.batch_query_hits(queries), index.n_tables, max_retrieved
    )
    return _ship_block(block, shm_min_bytes)


def _concat_blocks(blocks: list[BatchHits]) -> BatchHits:
    """Stitch one shard's per-chunk blocks back into a single query-order
    block (chunks arrive in ascending query order)."""
    if len(blocks) == 1:
        return blocks[0]
    per_query = np.concatenate(
        [np.diff(np.asarray(b.offsets, dtype=np.int64)) for b in blocks]
    )
    offsets = np.zeros(per_query.size + 1, dtype=np.int64)
    np.cumsum(per_query, out=offsets[1:])
    full: np.ndarray | None = None
    if any(b.full_table_counts is not None for b in blocks):
        full = np.vstack([b.pre_clip_table_counts for b in blocks])
    return BatchHits(
        hits=np.concatenate([np.asarray(b.hits) for b in blocks]),
        offsets=offsets,
        table_counts=np.vstack([b.table_counts for b in blocks]),
        truncated=np.concatenate([b.truncated for b in blocks]),
        full_table_counts=full,
    )


def _chunk_bounds(n_queries: int, n_shards: int, workers: int) -> np.ndarray:
    """Split a query block so the pool sees roughly two tasks per worker
    (tasks = chunks x shards), never below :data:`MIN_CHUNK_QUERIES`
    queries per chunk — one-future-per-shard leaves cores idle whenever
    ``workers > shards``."""
    target = max(1, -(-2 * workers // max(n_shards, 1)))
    chunks = min(target, max(1, n_queries // MIN_CHUNK_QUERIES))
    return shard_bounds(n_queries, chunks)


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """GC-time fallback for a leaked pool (see ``weakref.finalize`` in
    :meth:`ShardedIndex.load`): must not block the collector."""
    pool.shutdown(wait=False, cancel_futures=True)


def _merge_blocks(
    blocks: list[BatchHits],
    bounds: np.ndarray,
    n_tables: int,
    n_points: int,
    max_retrieved: int | None,
) -> list[CandidateResult]:
    """Merge per-shard hit streams into globally-correct candidate results.

    Reconstructs the unsharded probe order — table-major, shards in
    ascending offset order within a table — then applies the same
    :func:`~repro.index.backends.budget_truncation` /
    :func:`~repro.index.backends.first_seen_dedup` devices the packed
    backend uses.  The budget runs on the **pre-clip** per-table counts
    (``full_table_counts`` for worker-clipped blocks, ``table_counts``
    otherwise), so worker-side clipping never changes the merged stopping
    table, retrieval stats, or candidate stream: clipped blocks only omit
    hits past their shard-local stopping table, which is never before the
    merged one.  Stats are the sums of the per-shard retrieval work, which
    equal the unsharded index's stats exactly.
    """
    # Post-clip counts locate hits inside each shard's (possibly clipped)
    # flat array; pre-clip counts drive the budget and the stats.
    clipped = np.stack([b.table_counts for b in blocks])  # (S, nq, L)
    full = np.stack([b.pre_clip_table_counts for b in blocks])
    total = full.sum(axis=0)  # (nq, L)
    n_queries = total.shape[0]
    probed, truncated = budget_truncation(total, n_tables, max_retrieved)

    # Where each (query, table) segment starts inside every shard's flat
    # hit array, and the shard-local ids lifted to global ids.
    seg_starts = []
    global_hits = []
    for s, block in enumerate(blocks):
        table_cum = np.cumsum(block.table_counts, axis=1)
        seg_starts.append(
            np.asarray(block.offsets)[:-1, None]
            + table_cum
            - block.table_counts
        )
        global_hits.append(
            np.asarray(block.hits, dtype=np.int64) + int(bounds[s])
        )

    stamp = np.empty(max(n_points, 1), dtype=np.int64)
    positions_all = np.arange(
        int(total.sum(axis=1).max(initial=0)), dtype=np.int64
    )
    empty = np.empty(0, dtype=np.int64)
    results: list[CandidateResult] = []
    for i in range(n_queries):
        parts = []
        for t in range(int(probed[i])):
            for s in range(len(blocks)):
                count = int(clipped[s, i, t])
                if count:
                    lo = int(seg_starts[s][i, t])
                    parts.append(global_hits[s][lo : lo + count])
        segment = np.concatenate(parts) if parts else empty
        ordered = first_seen_dedup(segment, stamp, positions_all)
        results.append(
            CandidateResult(
                ordered,
                QueryStats(
                    retrieved=int(total[i, : probed[i]].sum()),
                    unique_candidates=len(ordered),
                    tables_probed=int(probed[i]),
                    truncated=bool(truncated[i]),
                ),
            )
        )
    return results


class ShardedIndex:
    """``S`` contiguous shards of one raw-kind :class:`IndexSpec`, served
    as a single :class:`~repro.index.queryable.Queryable`.

    Build via a spec with ``shards > 1`` (``spec.build(points)`` /
    :func:`repro.api.build_index` return one automatically) — the spec's
    fixed seed guarantees every shard samples identical hash pairs, which
    is what makes the merge exact.  ``save``/``load`` round the shards
    through per-shard zero-copy files; ``load(path, workers=W)`` switches
    to process-pool serving (shared-memory result transport, worker-side
    budget clipping, query-block chunking — see the module docstring).

    Parameters
    ----------
    points:
        Data set, shape ``(n, d)``; shard ``s`` owns the contiguous row
        range ``bounds[s]:bounds[s + 1]``.
    spec:
        A validated :class:`~repro.api.IndexSpec` with ``kind="raw"``,
        ``shards >= 1``, and a fixed seed.
    build_workers:
        Threads for building shards concurrently (hash kernels are
        NumPy-bound); ``None`` builds serially.
    """

    def __init__(
        self,
        points: np.ndarray,
        spec: IndexSpec,
        *,
        build_workers: int | None = None,
    ) -> None:
        if spec.kind != "raw":
            raise ValueError(
                f"ShardedIndex requires kind='raw', got {spec.kind!r}"
            )
        if spec.seed is None:
            raise ValueError(
                "ShardedIndex needs a spec with a fixed seed so every "
                "shard samples identical hash pairs"
            )
        points = np.atleast_2d(np.asarray(points))
        self.spec = spec
        self._bounds = shard_bounds(points.shape[0], spec.shards)
        self._dim = int(points.shape[1])
        shard_spec = dataclasses.replace(spec, shards=1)

        def build_one(s: int) -> DSHIndex:
            return shard_spec.build(
                points[self._bounds[s] : self._bounds[s + 1]]
            )

        if build_workers is not None and build_workers > 1:
            with ThreadPoolExecutor(max_workers=build_workers) as pool:
                self._shards = list(pool.map(build_one, range(spec.shards)))
        else:
            self._shards = [build_one(s) for s in range(spec.shards)]
        self._paths: list[str] | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._mmap = True
        self._workers: int | None = None
        self._finalizer: weakref.finalize | None = None
        self._shm_min_bytes: int | None = SHM_MIN_BYTES
        #: Transport accounting for the most recent pool ``batch_query``:
        #: ``pipe_bytes`` (pickled bytes through the executor pipe),
        #: ``shm_bytes`` (hit bytes moved via shared memory), ``tasks``
        #: and ``chunks`` submitted.  ``None`` before any pool query.
        self.last_transport: dict[str, int] | None = None

    # -- introspection ---------------------------------------------------

    @property
    def n_points(self) -> int:
        """Total number of indexed points across shards."""
        return int(self._bounds[-1])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed point set."""
        return self._dim

    @property
    def n_tables(self) -> int:
        """Repetition count ``L`` (identical in every shard)."""
        return self.spec.n_tables

    @property
    def n_shards(self) -> int:
        """Number of data shards."""
        return self._bounds.size - 1

    @property
    def backend(self) -> str:
        """Name of the per-shard storage backend."""
        return self.spec.backend

    @property
    def bounds(self) -> np.ndarray:
        """Copy of the ``(S + 1,)`` contiguous shard boundary offsets."""
        return self._bounds.copy()

    def __repr__(self) -> str:
        if self._pool is not None:
            mode = f"pool={self._workers}"
        elif self._shards is not None:
            mode = "in-process"
        else:
            mode = "closed"
        return (
            f"{type(self).__name__}(shards={self.n_shards}, "
            f"L={self.n_tables}, backend={self.backend!r}, "
            f"n_points={self.n_points}, d={self._dim}, {mode})"
        )

    # -- querying --------------------------------------------------------

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries))
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be one point (d,) or a block (n, d), "
                f"got shape {queries.shape}"
            )
        if queries.shape[1] != self._dim:
            raise ValueError(
                f"query dimensionality {queries.shape[1]} does not match "
                f"the indexed point set (d={self._dim})"
            )
        return queries

    def _shard_blocks(self, queries: np.ndarray) -> list[BatchHits]:
        """In-process per-shard hit streams (unclipped): all shards share
        the hash pairs, so hash the query block once and probe each
        shard's backend directly."""
        comps = [
            pair.hash_query(queries) for pair in self._shards[0]._pairs
        ]
        return [
            shard._backend.batch_query_hits(comps) for shard in self._shards
        ]

    def _pool_blocks(
        self, queries: np.ndarray, max_retrieved: int | None
    ) -> tuple[list[BatchHits], list]:
        """Fan ``(shard, query-chunk)`` tasks over the worker pool and
        reassemble one block per shard; also records transport stats."""
        chunk_bounds = _chunk_bounds(
            queries.shape[0], self.n_shards, self._workers or 1
        )
        futures = [
            (s, self._pool.submit(
                _pool_batch_hits,
                path,
                queries[lo:hi],
                self._mmap,
                max_retrieved,
                self._shm_min_bytes,
            ))
            for lo, hi in zip(chunk_bounds[:-1], chunk_bounds[1:])
            for s, path in enumerate(self._paths)
        ]
        raw_by_shard: list[list] = [[] for _ in self._paths]
        for s, future in futures:
            raw_by_shard[s].append(future.result())

        pipe_bytes = 0
        shm_bytes = 0
        blocks: list[BatchHits] = []
        releases: list = []
        for raws in raw_by_shard:
            resolved = []
            for raw in raws:
                # Re-pickling what came off the pipe measures the actual
                # transport cost (descriptors are tiny; fallback blocks
                # carry their hit bytes).
                pipe_bytes += len(
                    pickle.dumps(raw, protocol=pickle.HIGHEST_PROTOCOL)
                )
                if isinstance(raw, _ShmBlock):
                    shm_bytes += raw.size * np.dtype(raw.dtype).itemsize
                block, release = _resolve_block(raw)
                resolved.append(block)
                if release is not None:
                    releases.append(release)
            blocks.append(_concat_blocks(resolved))
        self.last_transport = {
            "pipe_bytes": int(pipe_bytes),
            "shm_bytes": int(shm_bytes),
            "tasks": len(futures),
            "chunks": len(chunk_bounds) - 1,
        }
        return blocks, releases

    def batch_query(
        self, queries: np.ndarray, max_retrieved: int | None = None
    ) -> list[CandidateResult]:
        """Candidate retrieval for a query block, fanned out across shards
        and merged exactly (global ids, first-seen dedup order, summed
        stats) — element-for-element identical to the unsharded index."""
        queries = self._check_queries(queries)
        if self._shards is None and self._pool is None:
            raise ValueError(
                "this ShardedIndex has been closed; load it again to serve"
            )
        if queries.shape[0] == 0:
            return []
        if self._pool is not None:
            blocks, releases = self._pool_blocks(queries, max_retrieved)
            try:
                return _merge_blocks(
                    blocks, self._bounds, self.n_tables, self.n_points,
                    max_retrieved,
                )
            finally:
                # Drop every view into the shared-memory segments before
                # closing them (a mapped segment cannot close under live
                # exports); they are already unlinked.
                blocks.clear()
                for release in releases:
                    release()
        return _merge_blocks(
            self._shard_blocks(queries), self._bounds, self.n_tables,
            self.n_points, max_retrieved,
        )

    def query(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> CandidateResult:
        """Single-query spelling of :meth:`batch_query`."""
        queries = self._check_queries(query)
        if queries.shape[0] != 1:
            raise ValueError(
                f"query must be a single point, got {queries.shape[0]}"
            )
        return self.batch_query(queries, max_retrieved)[0]

    # -- persistence -----------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist as ``<path>.json`` (manifest) + one zero-copy file pair
        per shard (``<path>.shard<i>.npz/.json``).  Returns the manifest
        path."""
        from repro.api import index_paths, save_index

        if self._shards is None:
            raise ValueError(
                "this ShardedIndex serves already-saved shard files; "
                "copy those instead of re-saving"
            )
        _, json_path = index_paths(path)
        base = json_path.with_suffix("")
        json_path.parent.mkdir(parents=True, exist_ok=True)
        shard_names = []
        for s, shard in enumerate(self._shards):
            name = f"{base.name}.shard{s}"
            save_index(shard, base.with_name(name))
            shard_names.append(name)
        manifest = {
            "format": FORMAT_VERSION,
            "layout": "sharded",
            "spec": self.spec.to_dict(),
            "bounds": [int(b) for b in self._bounds],
            "dim": self._dim,
            "shards": shard_names,
        }
        json_path.write_text(json.dumps(manifest, indent=2))
        return json_path

    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        *,
        workers: int | None = None,
        mmap: bool = True,
    ) -> "ShardedIndex":
        """Revive a :meth:`save` layout.

        ``workers=None`` loads every shard in-process (memory-mapped when
        ``mmap=True``).  ``workers=W`` starts a persistent ``W``-process
        pool instead and defers shard opening to the workers — the parent
        never touches table data, so cold start is the manifest read plus
        pool spawn.  The pool is shut down by :meth:`close` (idempotent),
        by the context-manager exit, or — as a safety net — by a
        ``weakref.finalize`` hook when the index is garbage collected, so
        forgotten handles cannot leak worker processes.
        """
        from repro.api import IndexSpec, index_paths, load_index

        _, json_path = index_paths(path)
        manifest = json.loads(json_path.read_text())
        if manifest.get("layout") != "sharded":
            raise ValueError(f"{json_path!s} is not a sharded index manifest")
        if manifest.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {manifest.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        self = object.__new__(cls)
        self.spec = IndexSpec.from_dict(manifest["spec"])
        self._bounds = np.asarray(manifest["bounds"], dtype=np.int64)
        self._dim = int(manifest["dim"])
        self._paths = [
            str(json_path.parent / name) for name in manifest["shards"]
        ]
        self._mmap = mmap
        self._workers = workers
        self._finalizer = None
        self._shm_min_bytes = SHM_MIN_BYTES
        self.last_transport = None
        # Fail now, not inside a pool worker's first query: a partial
        # deploy that missed a shard file should be caught at load time
        # with a clearly-attributed error.
        missing = [
            str(part)
            for shard in self._paths
            for part in index_paths(shard)
            if not part.exists()
        ]
        if missing:
            raise FileNotFoundError(
                f"manifest {json_path} names missing shard file(s): "
                f"{missing}"
            )
        if workers is None:
            self._shards = [load_index(p, mmap=mmap) for p in self._paths]
            self._pool = None
        else:
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
            self._shards = None
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool.  Idempotent; a no-op for in-process
        serving."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        pool.shutdown()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
