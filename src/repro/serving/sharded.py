"""Multi-core sharded serving of the Theorem 6.1 index.

The index is embarrassingly parallel across data partitions: each of the
``L`` tables is an independent repetition, so splitting the point set into
``S`` contiguous shards yields ``S`` independent indexes whose buckets
partition the unsharded index's buckets.  Because every shard samples the
*same* ``L`` hash pairs (same spec seed), the merged candidate stream —
table by table, shards in ascending-offset order — is element-for-element
identical to the unsharded stream: within a bucket, insertion order is
increasing point index, and contiguous shards keep global indices
increasing across the shard concatenation.  :class:`ShardedIndex` performs
that merge exactly, including the Theorem 6.1 early-termination budget
(applied to the *merged* per-table counts) and first-seen dedup order, so
sharded and unsharded indexes are observably identical
(``tests/test_sharded_parity.py`` enforces this differentially).

Two serving modes share the merge:

* **in-process** — shards are live ``DSHIndex`` objects; queries are
  hashed once (all shards share the pairs) and each shard's packed arrays
  are probed serially.  This is the correctness/reference mode.
* **process pool** — after :meth:`ShardedIndex.save`, ``load(path,
  workers=W)`` starts a persistent ``ProcessPoolExecutor``; each
  ``batch_query`` chunks the query block across ``(shard, chunk)`` tasks
  so every worker stays busy, and every worker memory-maps the shard
  files it touches on first use (cached by ``(path, mtime_ns, size)``, so
  a shard file hot-swapped in place is picked up on the next request).
  No table data is ever pickled, and the OS page cache shares the mapped
  arrays across workers.

Pool results travel back through two devices that keep the executor pipe
nearly empty:

* **worker-side budget clipping** — each worker applies the
  exactness-preserving table-granularity ``max_retrieved`` clip
  (:func:`~repro.index.backends.clip_batch_hits`) before returning, so
  only hits the merge can actually use are shipped; the pre-clip
  ``full_table_counts`` ride along and the merged
  :func:`~repro.index.backends.budget_truncation` runs on the *full*
  merged counts, keeping results bit-identical to the unsharded index.
* **shared-memory transport** — hit arrays at or above
  :data:`SHM_MIN_BYTES` are written to ``multiprocessing.shared_memory``
  blocks and only a small descriptor is pickled through the pipe (small
  results fall back to plain pickling, which is cheaper than a segment
  round trip).  The parent takes ownership of each segment (attach +
  unlink) before merging, so segments never outlive the request even if
  the merge raises.

Fault tolerance
---------------
Pool serving survives the failures long-lived serving actually sees:

* **worker loss** — a worker segfault/OOM-kill breaks the executor
  (``BrokenProcessPool``); ``batch_query`` respawns it and retries only
  the unfinished ``(shard, chunk)`` tasks, with exponential backoff,
  at most :data:`DEFAULT_MAX_RETRIES` retry rounds, and an optional
  per-request ``timeout=`` deadline.  Recovery accounting for the most
  recent request lands in :attr:`ShardedIndex.last_health` next to
  :attr:`ShardedIndex.last_transport`.
* **shard loss / corruption** — deterministic shard errors (missing
  files, :class:`~repro.index.persistence.IndexIntegrityError` from the
  ``verify=`` integrity modes) are never retried; they either raise
  :class:`PoolRecoveryError` or — under ``on_shard_failure="degrade"`` —
  drop the shard and serve the surviving shards' *exact* merge, with
  every result's ``stats.degraded`` flag set and the failed-shard list
  in ``last_health``.  :meth:`ShardedIndex.health` probes shards and
  workers on demand without mutating anything.
* **segment leaks** — a worker can die after creating a shared-memory
  segment but before its descriptor reaches the parent.  Workers journal
  every segment name into a parent-owned crash-journal directory before
  shipping; after a pool respawn (old workers provably dead) and on
  ``close()`` the parent sweeps the journal (attach + unlink), so no
  injected failure leaks a segment.  Fault-injection hooks live in
  :mod:`repro.serving.faults`; ``tests/test_serving_faults.py`` drives
  all of the above.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import pickle
import shutil
import tempfile
import time
import warnings
import weakref
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api builds us)
    from repro.api import IndexSpec
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.index.backends import (
    BatchHits,
    CandidateResult,
    QueryStats,
    budget_truncation,
    clip_batch_hits,
    first_seen_dedup,
)
from repro.index.lsh_index import DSHIndex
from repro.index.persistence import (
    FORMAT_VERSION,
    VERIFY_MODES,
    IndexIntegrityError,
)
from repro.serving.faults import FaultInjected, fault_point
from repro.serving.options import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_RETRY_BACKOFF_S,
    ServingOptions,
    resolve_serving_options,
)

__all__ = [
    "ShardedIndex",
    "PoolRecoveryError",
    "check_manifest_coherence",
    "shard_bounds",
    "SHM_MIN_BYTES",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_BACKOFF_S",
]

#: Hit payloads at or above this many bytes return from pool workers via a
#: shared-memory segment; smaller ones are pickled through the executor
#: pipe directly (a segment create/attach/unlink round trip costs more
#: than pickling a few KB).
SHM_MIN_BYTES = 32_768

#: Smallest query-chunk a pool ``batch_query`` will split off — below this
#: the per-task overhead (submit, hash, descriptor) dominates.
MIN_CHUNK_QUERIES = 16

# DEFAULT_MAX_RETRIES / DEFAULT_RETRY_BACKOFF_S live canonically on
# repro.serving.options (ServingOptions carries them per index); they are
# re-imported and re-exported here for compatibility.


class PoolRecoveryError(RuntimeError):
    """Pool serving could not produce a complete answer: one or more
    shards kept failing after bounded retries (or every shard failed,
    which no mode can degrade around).  The message names each failed
    shard and its final error."""


def shard_bounds(n_points: int, shards: int) -> np.ndarray:
    """Contiguous shard boundaries: ``shards + 1`` offsets with shard
    sizes differing by at most one (``np.array_split`` convention), every
    shard non-empty."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if n_points < shards:
        raise ValueError(
            f"cannot split {n_points} points into {shards} non-empty shards"
        )
    base, extra = divmod(int(n_points), int(shards))
    sizes = np.full(shards, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(sizes)])


def check_manifest_coherence(
    manifest: dict[str, Any], json_path: str | pathlib.Path
) -> list[str]:
    """Validate a sharded manifest's internal coherence; returns the
    shard file names.

    Checks that the shard list matches the spec's declared shard count,
    that ``bounds`` has ``shards + 1`` entries, starts at zero, and is
    strictly increasing (every shard non-empty).  Incoherence means the
    manifest and shard files skewed — a partial deploy or a hand-edited
    manifest — and raises
    :class:`~repro.index.persistence.IndexIntegrityError` with
    ``kind="manifest"``.
    """
    if manifest.get("layout") != "sharded":
        raise IndexIntegrityError(
            f"{json_path!s} is not a sharded index manifest",
            kind="manifest",
        )
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise IndexIntegrityError(
            f"{json_path!s}: manifest has no shard list", kind="manifest"
        )
    declared = manifest.get("spec", {}).get("shards")
    if declared is not None and len(shards) != int(declared):
        raise IndexIntegrityError(
            f"{json_path!s}: manifest lists {len(shards)} shard file(s) "
            f"but the spec declares shards={declared} — manifest/shard "
            "skew",
            kind="manifest",
        )
    bounds = manifest.get("bounds")
    if not isinstance(bounds, list) or len(bounds) != len(shards) + 1:
        raise IndexIntegrityError(
            f"{json_path!s}: manifest bounds must have "
            f"{len(shards) + 1} offsets, got "
            f"{len(bounds) if isinstance(bounds, list) else bounds!r}",
            kind="manifest",
        )
    if int(bounds[0]) != 0 or any(
        int(hi) <= int(lo) for lo, hi in zip(bounds[:-1], bounds[1:])
    ):
        raise IndexIntegrityError(
            f"{json_path!s}: manifest bounds must start at 0 and be "
            f"strictly increasing, got {bounds}",
            kind="manifest",
        )
    return [str(name) for name in shards]


# Per-process cache of memory-mapped shard indexes, keyed by path and
# validated against the shard file's (mtime_ns, size) on every request: a
# pool worker loads each shard it is handed once (O(1) file opens, no
# table bytes over the pipe), reuses it while the file is unchanged, and
# transparently reloads when the file is re-saved in place (hot swap) —
# a long-lived pool never answers from a stale mmap.
_SHARD_CACHE: dict[str, tuple[tuple[int, int], DSHIndex]] = {}


def _shard_signature(shard_path: str) -> tuple[int, int]:
    """Freshness signature of a shard's array bundle on disk."""
    from repro.api import index_paths

    npz_path, _ = index_paths(shard_path)
    stat = os.stat(npz_path)
    return (stat.st_mtime_ns, stat.st_size)


def _cached_shard(
    shard_path: str, mmap: bool, verify: str = "lazy"
) -> DSHIndex:
    from repro.api import load_index

    signature = _shard_signature(shard_path)
    cached = _SHARD_CACHE.get(shard_path)
    if cached is not None and cached[0] == signature:
        return cached[1]
    index = load_index(shard_path, mmap=mmap, verify=verify)
    _SHARD_CACHE[shard_path] = (signature, index)
    return index


# Warn-once flag for unexpected resource-tracker unregister failures (the
# expected ones — already unregistered, tracker pipe gone at teardown —
# stay silent).
_UNREGISTER_WARNED = False


def _unregister_segment(tracker_name: str) -> None:
    """Drop a shared-memory segment's resource-tracker registration.

    Expected failures are silent: ``KeyError`` (the tracker already
    dropped the name) and ``OSError`` (the tracker pipe is gone during
    interpreter teardown).  Anything else indicates a real bug in the
    segment handoff and is surfaced once per process via ``warnings``
    instead of being swallowed.
    """
    global _UNREGISTER_WARNED
    try:
        resource_tracker.unregister(tracker_name, "shared_memory")
    except (KeyError, OSError):
        pass
    except Exception as exc:
        if not _UNREGISTER_WARNED:
            _UNREGISTER_WARNED = True
            warnings.warn(
                "unexpected error unregistering shared-memory segment "
                f"{tracker_name!r}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )


def _journal_record(journal_dir: str | None, name: str) -> None:
    """Journal a just-created segment name so the parent can reclaim it
    if this worker dies before the descriptor crosses the pipe.  Best
    effort: a missing journal directory (index being closed) must not
    fail the request."""
    if journal_dir is None:
        return
    try:
        with open(os.path.join(journal_dir, name), "x"):
            pass
    except OSError:
        pass


def _journal_discard(journal_dir: str | None, name: str) -> None:
    """Remove a segment's journal entry once ownership is settled."""
    if journal_dir is None:
        return
    try:
        os.remove(os.path.join(journal_dir, name))
    except OSError:
        pass


def _sweep_journal(journal_dir: str | None) -> int:
    """Reclaim every journaled segment (attach + unlink) and clear the
    journal; returns how many leaked segments were actually found.

    Only safe when no journal writer can be mid-ship — i.e. after the
    old pool's workers are confirmed dead (post-respawn, post-shutdown).
    Entries whose segment is already gone (the worker unlinked it on its
    own error path, or the parent resolved it) are just forgotten.
    """
    if journal_dir is None:
        return 0
    try:
        names = os.listdir(journal_dir)
    except FileNotFoundError:
        return 0
    swept = 0
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            pass
        else:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            segment.close()
            swept += 1
        _journal_discard(journal_dir, name)
    return swept


@dataclasses.dataclass(frozen=True)
class _ShmBlock:
    """Picklable descriptor of a :class:`BatchHits` whose ``hits`` array
    lives in a shared-memory segment: what actually crosses the executor
    pipe instead of the hit bytes."""

    shm_name: str
    dtype: str
    size: int
    offsets: np.ndarray
    table_counts: np.ndarray
    full_table_counts: np.ndarray | None
    truncated: np.ndarray


def _ship_block(
    block: BatchHits,
    shm_min_bytes: int | None,
    journal_dir: str | None = None,
) -> BatchHits | _ShmBlock:
    """Worker-side transport encoding: shared memory for large hit arrays,
    the block itself (plain pickle) below the threshold (and always for
    empty streams — a zero-byte segment cannot be created).

    The segment's name is journaled *before* any further work, so a
    worker dying mid-ship leaves a name the parent sweeps after the pool
    respawn instead of a leaked segment; every worker-side failure path
    after creation unlinks the segment itself."""
    if (
        shm_min_bytes is None
        or block.hits.nbytes < shm_min_bytes
        or block.hits.nbytes == 0
    ):
        return block
    segment = shared_memory.SharedMemory(create=True, size=block.hits.nbytes)
    _journal_record(journal_dir, segment.name)
    try:
        fault_point("shm_ship")
        # The parent attaches and unlinks this segment; unregister it from
        # this worker's resource tracker so worker shutdown neither warns
        # about nor double-unlinks a segment it no longer owns.
        _unregister_segment(segment._name)
        view = np.frombuffer(
            segment.buf, dtype=block.hits.dtype, count=block.hits.size
        )
        view[:] = block.hits
        del view
        name = segment.name
        segment.close()
    except BaseException:
        # Failure after create but before the descriptor ships: reclaim
        # the segment here so this worker's error path leaks nothing.
        try:
            segment.close()
        except BufferError:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        _journal_discard(journal_dir, segment.name)
        raise
    return _ShmBlock(
        shm_name=name,
        dtype=block.hits.dtype.str,
        size=int(block.hits.size),
        offsets=block.offsets,
        table_counts=block.table_counts,
        full_table_counts=block.full_table_counts,
        truncated=block.truncated,
    )


def _resolve_block(
    raw: BatchHits | _ShmBlock, journal_dir: str | None = None
) -> tuple[BatchHits, Callable[[], None] | None]:
    """Parent-side transport decoding: returns ``(block, release)`` where
    ``release`` (or ``None`` for pickled blocks) must be called after every
    view of ``block.hits`` is dropped.  The segment is unlinked immediately
    on attach — the parent owns it from here (its journal entry is
    cleared), and the memory is freed when the last mapping closes even
    if the process dies mid-merge."""
    if isinstance(raw, BatchHits):
        return raw, None
    fault_point("shm_attach")
    segment = shared_memory.SharedMemory(name=raw.shm_name)
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    _journal_discard(journal_dir, raw.shm_name)
    hits = np.frombuffer(
        segment.buf, dtype=np.dtype(raw.dtype), count=raw.size
    )
    block = BatchHits(
        hits=hits,
        offsets=raw.offsets,
        table_counts=raw.table_counts,
        truncated=raw.truncated,
        full_table_counts=raw.full_table_counts,
    )

    def release() -> None:
        try:
            segment.close()
        except BufferError:  # a stray view still alive; freed at exit
            pass

    return block, release


def _discard_raw(raw: object, journal_dir: str | None) -> None:
    """Dispose of a transport payload whose result is no longer wanted
    (superseded retry, failed shard, abandoned request): unlink its
    shared-memory segment, if any, and clear the journal entry."""
    if not isinstance(raw, _ShmBlock):
        return
    try:
        segment = shared_memory.SharedMemory(name=raw.shm_name)
    except FileNotFoundError:
        pass
    else:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        segment.close()
    _journal_discard(journal_dir, raw.shm_name)


def _abandon_future(future: Future[Any], journal_dir: str | None) -> None:
    """Walk away from a pool future without leaking its result: cancel it
    if it has not started, otherwise attach a callback that discards the
    shared-memory payload whenever the straggler finishes."""
    if future.cancel():
        return

    def _discard(done: Future[Any]) -> None:
        try:
            raw = done.result()
        except BaseException:
            return
        _discard_raw(raw, journal_dir)

    future.add_done_callback(_discard)


def _pool_batch_hits(
    shard_path: str,
    queries: np.ndarray,
    mmap: bool,
    max_retrieved: int | None = None,
    shm_min_bytes: int | None = SHM_MIN_BYTES,
    verify: str = "lazy",
    journal_dir: str | None = None,
) -> BatchHits | _ShmBlock:
    """Pool worker: resolve one shard's hit streams for a query chunk,
    budget-clip them shard-locally, and encode them for transport.
    Shard (re)loads verify the bundle at the ``verify`` level the index
    was loaded with, so a hot-swapped-in corrupted file is rejected here
    instead of silently served."""
    fault_point("pool_worker")
    index = _cached_shard(shard_path, mmap, verify)
    block = clip_batch_hits(
        index.batch_query_hits(queries), index.n_tables, max_retrieved
    )
    return _ship_block(block, shm_min_bytes, journal_dir)


def _probe_worker(delay: float = 0.0) -> int:
    """Pool-worker liveness probe: linger briefly so concurrent probes
    spread across the pool, then report this worker's pid."""
    if delay > 0:
        time.sleep(delay)
    return os.getpid()


def _concat_blocks(blocks: list[BatchHits]) -> BatchHits:
    """Stitch one shard's per-chunk blocks back into a single query-order
    block (chunks arrive in ascending query order)."""
    if len(blocks) == 1:
        return blocks[0]
    per_query = np.concatenate(
        [np.diff(np.asarray(b.offsets, dtype=np.int64)) for b in blocks]
    )
    offsets = np.zeros(per_query.size + 1, dtype=np.int64)
    np.cumsum(per_query, out=offsets[1:])
    full: np.ndarray | None = None
    if any(b.full_table_counts is not None for b in blocks):
        full = np.vstack([b.pre_clip_table_counts for b in blocks])
    return BatchHits(
        hits=np.concatenate([np.asarray(b.hits) for b in blocks]),
        offsets=offsets,
        table_counts=np.vstack([b.table_counts for b in blocks]),
        truncated=np.concatenate([b.truncated for b in blocks]),
        full_table_counts=full,
    )


def _chunk_bounds(n_queries: int, n_shards: int, workers: int) -> np.ndarray:
    """Split a query block so the pool sees roughly two tasks per worker
    (tasks = chunks x shards), never below :data:`MIN_CHUNK_QUERIES`
    queries per chunk — one-future-per-shard leaves cores idle whenever
    ``workers > shards``."""
    target = max(1, -(-2 * workers // max(n_shards, 1)))
    chunks = min(target, max(1, n_queries // MIN_CHUNK_QUERIES))
    return shard_bounds(n_queries, chunks)


def _cleanup_pool(
    pool: ProcessPoolExecutor, journal_dir: str | None
) -> None:
    """GC-time fallback for a leaked pool (see ``weakref.finalize`` in
    :meth:`ShardedIndex.load`): must not block the collector, then
    best-effort reclaims crash-journaled segments and the journal
    directory itself."""
    pool.shutdown(wait=False, cancel_futures=True)
    _sweep_journal(journal_dir)
    if journal_dir is not None:
        shutil.rmtree(journal_dir, ignore_errors=True)


def _merge_blocks(
    blocks: list[BatchHits],
    offsets: list[int] | np.ndarray,
    n_tables: int,
    n_points: int,
    max_retrieved: int | None,
    degraded: bool = False,
) -> list[CandidateResult]:
    """Merge per-shard hit streams into globally-correct candidate results.

    Reconstructs the unsharded probe order — table-major, shards in
    ascending offset order within a table — then applies the same
    :func:`~repro.index.backends.budget_truncation` /
    :func:`~repro.index.backends.first_seen_dedup` devices the packed
    backend uses.  The budget runs on the **pre-clip** per-table counts
    (``full_table_counts`` for worker-clipped blocks, ``table_counts``
    otherwise), so worker-side clipping never changes the merged stopping
    table, retrieval stats, or candidate stream: clipped blocks only omit
    hits past their shard-local stopping table, which is never before the
    merged one.  Stats are the sums of the per-shard retrieval work, which
    equal the unsharded index's stats exactly.

    ``offsets`` carries each block's global starting index — one entry
    per block, so a degraded merge over surviving shards passes only
    their offsets and remains exact over the points those shards own.
    ``degraded=True`` stamps every result's ``stats.degraded`` flag.
    """
    # Post-clip counts locate hits inside each shard's (possibly clipped)
    # flat array; pre-clip counts drive the budget and the stats.
    clipped = np.stack([b.table_counts for b in blocks])  # (S, nq, L)
    full = np.stack([b.pre_clip_table_counts for b in blocks])
    total = full.sum(axis=0)  # (nq, L)
    n_queries = total.shape[0]
    probed, truncated = budget_truncation(total, n_tables, max_retrieved)

    # Where each (query, table) segment starts inside every shard's flat
    # hit array, and the shard-local ids lifted to global ids.
    seg_starts = []
    global_hits = []
    for s, block in enumerate(blocks):
        table_cum = np.cumsum(block.table_counts, axis=1)
        seg_starts.append(
            np.asarray(block.offsets)[:-1, None]
            + table_cum
            - block.table_counts
        )
        global_hits.append(
            np.asarray(block.hits, dtype=np.int64) + int(offsets[s])
        )

    stamp = np.empty(max(n_points, 1), dtype=np.int64)
    positions_all = np.arange(
        int(total.sum(axis=1).max(initial=0)), dtype=np.int64
    )
    empty = np.empty(0, dtype=np.int64)
    results: list[CandidateResult] = []
    for i in range(n_queries):
        parts = []
        for t in range(int(probed[i])):
            for s in range(len(blocks)):
                count = int(clipped[s, i, t])
                if count:
                    lo = int(seg_starts[s][i, t])
                    parts.append(global_hits[s][lo : lo + count])
        segment = np.concatenate(parts) if parts else empty
        ordered = first_seen_dedup(segment, stamp, positions_all)
        results.append(
            CandidateResult(
                ordered,
                QueryStats(
                    retrieved=int(total[i, : probed[i]].sum()),
                    unique_candidates=len(ordered),
                    tables_probed=int(probed[i]),
                    truncated=bool(truncated[i]),
                    degraded=bool(degraded),
                ),
            )
        )
    return results


class ShardedIndex:
    """``S`` contiguous shards of one raw-kind :class:`IndexSpec`, served
    as a single :class:`~repro.index.queryable.Queryable`.

    Build via a spec with ``shards > 1`` (``spec.build(points)`` /
    :func:`repro.api.build_index` return one automatically) — the spec's
    fixed seed guarantees every shard samples identical hash pairs, which
    is what makes the merge exact.  ``save``/``load`` round the shards
    through per-shard zero-copy files; ``load(path, workers=W)`` switches
    to process-pool serving (shared-memory result transport, worker-side
    budget clipping, query-block chunking, crash recovery — see the
    module docstring).

    Parameters
    ----------
    points:
        Data set, shape ``(n, d)``; shard ``s`` owns the contiguous row
        range ``bounds[s]:bounds[s + 1]``.
    spec:
        A validated :class:`~repro.api.IndexSpec` with ``kind="raw"``,
        ``shards >= 1``, and a fixed seed.
    build_workers:
        Threads for building shards concurrently (hash kernels are
        NumPy-bound); ``None`` builds serially.
    """

    def __init__(
        self,
        points: np.ndarray,
        spec: IndexSpec,
        *,
        build_workers: int | None = None,
    ) -> None:
        if spec.kind != "raw":
            raise ValueError(
                f"ShardedIndex requires kind='raw', got {spec.kind!r}"
            )
        if spec.seed is None:
            raise ValueError(
                "ShardedIndex needs a spec with a fixed seed so every "
                "shard samples identical hash pairs"
            )
        points = np.atleast_2d(np.asarray(points))
        self.spec = spec
        self._bounds = shard_bounds(points.shape[0], spec.shards)
        self._dim = int(points.shape[1])
        shard_spec = dataclasses.replace(spec, shards=1)

        def build_one(s: int) -> DSHIndex:
            return shard_spec.build(
                points[self._bounds[s] : self._bounds[s + 1]]
            )

        if build_workers is not None and build_workers > 1:
            with ThreadPoolExecutor(max_workers=build_workers) as pool:
                self._shards = list(pool.map(build_one, range(spec.shards)))
        else:
            self._shards = [build_one(s) for s in range(spec.shards)]
        self._paths: list[str] | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._options: ServingOptions = ServingOptions()
        self._mmap = True
        self._workers: int | None = None
        self._finalizer: weakref.finalize | None = None
        self._shm_min_bytes: int | None = SHM_MIN_BYTES
        self._verify = "lazy"
        self._on_shard_failure = "raise"
        self._journal_dir: str | None = None
        #: Bound on same-request retry rounds after transient pool
        #: failures; deterministic shard errors are never retried.
        self.max_retries: int = DEFAULT_MAX_RETRIES
        #: Base of the exponential backoff between retry rounds (s).
        self.retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S
        #: Transport accounting for the most recent pool ``batch_query``:
        #: ``pipe_bytes`` (pickled bytes through the executor pipe),
        #: ``shm_bytes`` (hit bytes moved via shared memory), ``tasks``
        #: and ``chunks`` submitted.  ``None`` before any pool query.
        self.last_transport: dict[str, int] | None = None
        #: Recovery accounting for the most recent pool ``batch_query``:
        #: ``retries`` (task re-submissions), ``respawns`` (executor
        #: replacements), ``swept_segments`` (leaked shared-memory
        #: segments reclaimed from the crash journal), ``failed_shards``
        #: (per-shard error records), ``degraded``.  ``None`` before any
        #: pool query; also populated when the request raises.
        self.last_health: dict[str, Any] | None = None

    # -- introspection ---------------------------------------------------

    @property
    def options(self) -> ServingOptions:
        """The :class:`ServingOptions` this index serves under.

        For in-memory builds this is the defaults; for :meth:`load` it is
        the resolved load-time configuration.  ``options.timeout`` is the
        default per-request deadline applied when :meth:`batch_query` is
        called without ``timeout=``.
        """
        return self._options

    @property
    def n_points(self) -> int:
        """Total number of indexed points across shards."""
        return int(self._bounds[-1])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed point set."""
        return self._dim

    @property
    def n_tables(self) -> int:
        """Repetition count ``L`` (identical in every shard)."""
        return self.spec.n_tables

    @property
    def n_shards(self) -> int:
        """Number of data shards."""
        return self._bounds.size - 1

    @property
    def backend(self) -> str:
        """Name of the per-shard storage backend."""
        return self.spec.backend

    @property
    def bounds(self) -> np.ndarray:
        """Copy of the ``(S + 1,)`` contiguous shard boundary offsets."""
        return self._bounds.copy()

    def __repr__(self) -> str:
        if self._pool is not None:
            mode = f"pool={self._workers}"
        elif self._shards is not None:
            mode = "in-process"
        else:
            mode = "closed"
        return (
            f"{type(self).__name__}(shards={self.n_shards}, "
            f"L={self.n_tables}, backend={self.backend!r}, "
            f"n_points={self.n_points}, d={self._dim}, {mode})"
        )

    # -- querying --------------------------------------------------------

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries))
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be one point (d,) or a block (n, d), "
                f"got shape {queries.shape}"
            )
        if queries.shape[1] != self._dim:
            raise ValueError(
                f"query dimensionality {queries.shape[1]} does not match "
                f"the indexed point set (d={self._dim})"
            )
        return queries

    def _shard_blocks(self, queries: np.ndarray) -> list[BatchHits]:
        """In-process per-shard hit streams (unclipped): all shards share
        the hash pairs, so hash the query block once and probe each
        shard's backend directly."""
        comps = [
            pair.hash_query(queries) for pair in self._shards[0]._pairs
        ]
        return [
            shard._backend.batch_query_hits(comps) for shard in self._shards
        ]

    def _respawn_pool(self) -> int:
        """Replace a broken executor with a fresh one.  Blocks until the
        dead pool's remaining processes are reaped, then sweeps the
        crash journal — safe only once the old workers are gone, since a
        live worker could still be writing a journaled segment.  Returns
        the number of leaked segments reclaimed."""
        pool, self._pool = self._pool, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        swept = _sweep_journal(self._journal_dir)
        self._pool = ProcessPoolExecutor(max_workers=self._workers)
        self._finalizer = weakref.finalize(
            self, _cleanup_pool, self._pool, self._journal_dir
        )
        return swept

    def _pool_blocks(
        self,
        queries: np.ndarray,
        max_retrieved: int | None,
        timeout: float | None,
    ) -> tuple[list[BatchHits], list[Callable[[], None]], list[int], bool]:
        """Fan ``(shard, query-chunk)`` tasks over the worker pool with
        crash recovery; returns ``(blocks, releases, offsets, degraded)``
        — one reassembled block per surviving shard plus that shard's
        global offset — and records transport + recovery accounting.

        Worker loss (``BrokenProcessPool``) respawns the executor and
        retries only the unfinished tasks, with exponential backoff and
        at most :attr:`max_retries` retry rounds; a shared-memory
        segment that vanished between ship and attach retries the same
        way.  Deterministic shard errors (integrity failures, missing
        files) are never retried.  ``timeout`` bounds the whole request:
        on expiry unfinished futures are abandoned with discard
        callbacks (their segments are reclaimed on arrival) and builtin
        :class:`TimeoutError` is raised.  Shards whose retries are
        exhausted raise :class:`PoolRecoveryError`, or — in
        ``on_shard_failure="degrade"`` mode — are dropped from the merge
        and reported in :attr:`last_health`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        chunk_bounds = _chunk_bounds(
            queries.shape[0], self.n_shards, self._workers or 1
        )
        chunks = list(zip(chunk_bounds[:-1], chunk_bounds[1:]))
        paths = self._paths or []
        pending = [
            (s, c) for c in range(len(chunks)) for s in range(len(paths))
        ]
        resolved: dict[tuple[int, int], BatchHits] = {}
        releases: list[Callable[[], None]] = []
        failed: dict[int, str] = {}
        health: dict[str, Any] = {
            "mode": "pool",
            "retries": 0,
            "respawns": 0,
            "swept_segments": 0,
            "failed_shards": [],
            "degraded": False,
        }
        submitted = 0
        pipe_bytes = 0
        shm_bytes = 0
        attempts = 0
        try:
            while pending:
                pool = self._pool
                if pool is None:
                    raise PoolRecoveryError(
                        "worker pool is gone (index closed mid-request?)"
                    )
                futures: list[tuple[tuple[int, int], Future[Any]]] = []
                broken = False
                try:
                    for s, c in pending:
                        lo, hi = chunks[c]
                        futures.append(
                            ((s, c), pool.submit(
                                _pool_batch_hits,
                                paths[s],
                                queries[lo:hi],
                                self._mmap,
                                max_retrieved,
                                self._shm_min_bytes,
                                self._verify,
                                self._journal_dir,
                            ))
                        )
                except BrokenExecutor:
                    broken = True
                submitted += len(futures)
                # Tasks never submitted (executor broke mid-fan-out) go
                # straight back on the retry list.
                retry: list[tuple[int, int]] = list(pending[len(futures):])
                for key, future in futures:
                    s = key[0]
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    try:
                        if remaining is not None and remaining <= 0:
                            raise _FuturesTimeout()
                        raw = future.result(timeout=remaining)
                    except _FuturesTimeout:
                        for _, straggler in futures:
                            _abandon_future(straggler, self._journal_dir)
                        raise TimeoutError(
                            f"batch_query deadline ({timeout:g}s) exceeded "
                            "with pool tasks outstanding"
                        ) from None
                    except BrokenExecutor as exc:
                        # Drop the traceback: the future retains this
                        # exception, and a traceback referencing this
                        # frame would cycle frame -> futures -> exception
                        # -> frame, pinning segment views past release.
                        exc.__traceback__ = None
                        broken = True
                        retry.append(key)
                        continue
                    except (IndexIntegrityError, FileNotFoundError) as exc:
                        # Deterministic shard failure: the file itself is
                        # bad or gone; retrying cannot help.
                        failed.setdefault(
                            s, f"{type(exc).__name__}: {exc}"
                        )
                        exc.__traceback__ = None
                        continue
                    except FaultInjected as exc:
                        exc.__traceback__ = None
                        retry.append(key)
                        continue
                    # Re-pickling what came off the pipe measures the
                    # actual transport cost (descriptors are tiny;
                    # fallback blocks carry their hit bytes).
                    pipe_bytes += len(
                        pickle.dumps(raw, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                    if isinstance(raw, _ShmBlock):
                        shm_bytes += raw.size * np.dtype(raw.dtype).itemsize
                    if s in failed:
                        _discard_raw(raw, self._journal_dir)
                        continue
                    try:
                        # Keep no loose local reference to the block: if
                        # this frame later raises, its traceback must not
                        # pin a segment view past ``resolved.clear()``.
                        pair = _resolve_block(raw, self._journal_dir)
                    except (FileNotFoundError, FaultInjected):
                        # The segment vanished between ship and attach —
                        # transient infrastructure failure; re-run the
                        # task.
                        retry.append(key)
                        continue
                    resolved[key] = pair[0]
                    if pair[1] is not None:
                        releases.append(pair[1])
                    del pair
                if broken:
                    health["respawns"] += 1
                    health["swept_segments"] += self._respawn_pool()
                pending = [key for key in retry if key[0] not in failed]
                if not pending:
                    break
                attempts += 1
                if attempts > self.max_retries:
                    for s, _ in pending:
                        failed.setdefault(
                            s,
                            f"retries exhausted after {self.max_retries} "
                            "retry round(s) of worker failures",
                        )
                    break
                health["retries"] += len(pending)
                delay = self.retry_backoff_s * (2 ** (attempts - 1))
                if (
                    deadline is not None
                    and time.monotonic() + delay >= deadline
                ):
                    raise TimeoutError(
                        f"batch_query deadline ({timeout:g}s) exceeded "
                        "while backing off before a retry round"
                    )
                time.sleep(delay)
            health["failed_shards"] = [
                {"shard": s, "path": paths[s], "error": failed[s]}
                for s in sorted(failed)
            ]
            degraded = False
            if failed:
                summary = "; ".join(
                    f"shard {s} ({os.path.basename(paths[s])}): {failed[s]}"
                    for s in sorted(failed)
                )
                if len(failed) == len(paths):
                    raise PoolRecoveryError(f"every shard failed: {summary}")
                if self._on_shard_failure == "raise":
                    raise PoolRecoveryError(
                        f"{len(failed)}/{len(paths)} shard(s) failed after "
                        f"recovery attempts: {summary} (load with "
                        "on_shard_failure='degrade' to serve surviving "
                        "shards)"
                    )
                degraded = True
                health["degraded"] = True
            surviving = [s for s in range(len(paths)) if s not in failed]
            blocks = [
                _concat_blocks(
                    [resolved[(s, c)] for c in range(len(chunks))]
                )
                for s in surviving
            ]
            offsets = [int(self._bounds[s]) for s in surviving]
        except BaseException:
            # Drop every view into the shared-memory segments before
            # closing them (resolved blocks hold live exports; a mapped
            # segment cannot close under them); already unlinked.
            resolved.clear()
            for release in releases:
                release()
            self.last_health = health
            raise
        self.last_transport = {
            "pipe_bytes": int(pipe_bytes),
            "shm_bytes": int(shm_bytes),
            "tasks": submitted,
            "chunks": len(chunks),
        }
        self.last_health = health
        return blocks, releases, offsets, degraded

    def batch_query(
        self,
        queries: np.ndarray,
        max_retrieved: int | None = None,
        timeout: float | None = None,
    ) -> list[CandidateResult]:
        """Candidate retrieval for a query block, fanned out across shards
        and merged exactly (global ids, first-seen dedup order, summed
        stats) — element-for-element identical to the unsharded index.

        Pool serving transparently recovers from worker loss (executor
        respawn + bounded same-request retries; see the module
        docstring); ``timeout`` bounds one request end to end, raising
        builtin :class:`TimeoutError` on expiry (``None`` falls back to
        the load-time ``options.timeout`` default).  Once a shard's
        retries are exhausted the load-time ``on_shard_failure`` mode
        decides:
        ``"raise"`` raises :class:`PoolRecoveryError`; ``"degrade"``
        returns the surviving shards' exact merge with every result's
        ``stats.degraded`` set and the failure detailed in
        :attr:`last_health`.
        """
        queries = self._check_queries(queries)
        if self._shards is None and self._pool is None:
            raise ValueError(
                "this ShardedIndex has been closed; load it again to serve"
            )
        if timeout is None:
            timeout = self._options.timeout
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if queries.shape[0] == 0:
            return []
        if self._pool is not None:
            blocks, releases, offsets, degraded = self._pool_blocks(
                queries, max_retrieved, timeout
            )
            try:
                return _merge_blocks(
                    blocks, offsets, self.n_tables, self.n_points,
                    max_retrieved, degraded=degraded,
                )
            finally:
                # Drop every view into the shared-memory segments before
                # closing them (a mapped segment cannot close under live
                # exports); they are already unlinked.
                blocks.clear()
                for release in releases:
                    release()
        return _merge_blocks(
            self._shard_blocks(queries),
            [int(b) for b in self._bounds[:-1]],
            self.n_tables, self.n_points, max_retrieved,
        )

    def query(
        self,
        query: np.ndarray,
        max_retrieved: int | None = None,
        timeout: float | None = None,
    ) -> CandidateResult:
        """Single-query spelling of :meth:`batch_query`.

        Like :meth:`batch_query`, raises :class:`PoolRecoveryError` when
        pool recovery is exhausted (under ``on_shard_failure="raise"``)
        and :class:`TimeoutError` past a ``timeout=`` deadline.
        """
        queries = self._check_queries(query)
        if queries.shape[0] != 1:
            raise ValueError(
                f"query must be a single point, got {queries.shape[0]}"
            )
        return self.batch_query(queries, max_retrieved, timeout)[0]

    # -- health ----------------------------------------------------------

    def health(self, *, verify: str | None = None) -> dict[str, Any]:
        """Active health probe: validate every shard on disk and
        round-trip the worker pool; never raises for unhealthy
        components (the JSON-able report carries the errors).

        Shard checks stat each bundle's freshness signature and run
        :func:`repro.api.verify_saved_index` at the requested ``verify``
        level (default: the level the index was loaded with; in-memory
        builds have no files and report their live shards as healthy).
        Pool checks submit one probe per worker — each lingers briefly
        so concurrent probes spread across the pool — and report the
        distinct worker pids that answered.  The top-level ``"ok"`` is
        the conjunction of every component check.
        """
        from repro.api import verify_saved_index
        from repro.index.persistence import _check_verify_mode

        level = self._verify if verify is None else verify
        _check_verify_mode(level)
        if self._pool is not None:
            mode = "pool"
        elif self._shards is not None:
            mode = "in-process"
        else:
            mode = "closed"
        report: dict[str, Any] = {
            "mode": mode,
            "verify": level,
            "ok": mode != "closed",
            "shards": [],
        }
        if self._paths is not None:
            for s, path in enumerate(self._paths):
                entry: dict[str, Any] = {"shard": s, "path": path, "ok": True}
                try:
                    entry["signature"] = list(_shard_signature(path))
                    verify_saved_index(path, verify=level)
                except (OSError, ValueError) as exc:
                    # IndexIntegrityError is a ValueError;
                    # FileNotFoundError is an OSError.
                    entry["ok"] = False
                    entry["error"] = f"{type(exc).__name__}: {exc}"
                    report["ok"] = False
                report["shards"].append(entry)
        else:
            report["shards"] = [
                {"shard": s, "ok": True} for s in range(self.n_shards)
            ]
        if self._pool is not None:
            workers = self._workers or 1
            try:
                probes = [
                    self._pool.submit(_probe_worker, 0.05)
                    for _ in range(workers)
                ]
                pids = sorted({f.result(timeout=30.0) for f in probes})
                report["workers"] = {
                    "requested": workers,
                    "alive_pids": pids,
                    "ok": True,
                }
            except (BrokenExecutor, _FuturesTimeout) as exc:
                report["workers"] = {
                    "requested": workers,
                    "alive_pids": [],
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                report["ok"] = False
        return report

    # -- persistence -----------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist as ``<path>.json`` (manifest) + one zero-copy file pair
        per shard (``<path>.shard<i>.npz/.json``); every shard's sidecar
        carries per-member CRC-32 integrity records (see
        :func:`repro.api.save_index`).  Returns the manifest path."""
        from repro.api import index_paths, save_index

        if self._shards is None:
            raise ValueError(
                "this ShardedIndex serves already-saved shard files; "
                "copy those instead of re-saving"
            )
        _, json_path = index_paths(path)
        base = json_path.with_suffix("")
        json_path.parent.mkdir(parents=True, exist_ok=True)
        shard_names = []
        for s, shard in enumerate(self._shards):
            name = f"{base.name}.shard{s}"
            save_index(shard, base.with_name(name))
            shard_names.append(name)
        manifest = {
            "format": FORMAT_VERSION,
            "layout": "sharded",
            "spec": self.spec.to_dict(),
            "bounds": [int(b) for b in self._bounds],
            "dim": self._dim,
            "shards": shard_names,
        }
        json_path.write_text(json.dumps(manifest, indent=2))
        return json_path

    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        *,
        workers: int | None = None,
        mmap: bool | None = None,
        verify: str | None = None,
        on_shard_failure: str | None = None,
        options: ServingOptions | None = None,
    ) -> "ShardedIndex":
        """Revive a :meth:`save` layout.

        Serving configuration arrives as one frozen
        :class:`~repro.serving.options.ServingOptions` (``options=``);
        the loose ``workers=`` / ``mmap=`` / ``verify=`` /
        ``on_shard_failure=`` keywords still work for one release via a
        :class:`DeprecationWarning` shim, but mixing them with
        ``options=`` raises ``ValueError``.

        ``options.workers=None`` loads every shard in-process
        (memory-mapped when ``options.mmap`` is true).  ``workers=W``
        starts a persistent ``W``-process pool instead and defers shard
        opening to the workers — the parent never touches table data, so
        cold start is the manifest read plus pool spawn.  The pool is
        shut down by :meth:`close` (idempotent), by the context-manager
        exit, or — as a safety net — by a ``weakref.finalize`` hook when
        the index is garbage collected, so forgotten handles cannot leak
        worker processes (the hook also reclaims the shared-memory crash
        journal).

        ``options.verify`` sets the integrity level every shard bundle
        is held to, at load time and on every worker-side (re)load:
        ``"lazy"`` (default, O(1) structural checks), ``"eager"`` (full
        per-member re-checksum), ``"off"``.  ``options.on_shard_failure``
        selects what a pool ``batch_query`` does once a shard's retries
        are exhausted: ``"raise"`` (default) propagates
        :class:`PoolRecoveryError`, ``"degrade"`` serves the surviving
        shards' exact merge with results flagged ``degraded`` (see
        :meth:`batch_query`).  ``options.timeout`` becomes the default
        per-request deadline; ``options.max_retries`` /
        ``options.retry_backoff_s`` set the crash-recovery budget.

        Raises :class:`repro.index.persistence.IndexIntegrityError` when
        a shard bundle fails the requested integrity checks at load
        time, and ``ValueError`` for unknown modes or a manifest that is
        not a sharded-index layout.
        """
        from repro.api import (
            IndexSpec,
            index_paths,
            load_index,
            verify_saved_index,
        )

        opts = resolve_serving_options(
            options,
            mmap=mmap,
            workers=workers,
            verify=verify,
            on_shard_failure=on_shard_failure,
        )
        _, json_path = index_paths(path)
        manifest = json.loads(json_path.read_text())
        if manifest.get("layout") != "sharded":
            raise ValueError(f"{json_path!s} is not a sharded index manifest")
        if manifest.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {manifest.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        shard_names = check_manifest_coherence(manifest, json_path)
        self = object.__new__(cls)
        self.spec = IndexSpec.from_dict(manifest["spec"])
        self._bounds = np.asarray(manifest["bounds"], dtype=np.int64)
        self._dim = int(manifest["dim"])
        self._paths = [str(json_path.parent / name) for name in shard_names]
        self._options = opts
        self._mmap = opts.mmap
        self._workers = opts.workers
        self._finalizer = None
        self._shm_min_bytes = SHM_MIN_BYTES
        self._verify = opts.verify
        self._on_shard_failure = opts.on_shard_failure
        self._journal_dir = None
        self.max_retries = opts.max_retries
        self.retry_backoff_s = opts.retry_backoff_s
        self.last_transport = None
        self.last_health = None
        # Fail now, not inside a pool worker's first query: a partial
        # deploy that missed a shard file should be caught at load time
        # with a clearly-attributed error.
        missing = [
            str(part)
            for shard in self._paths
            for part in index_paths(shard)
            if not part.exists()
        ]
        if missing:
            raise FileNotFoundError(
                f"manifest {json_path} names missing shard file(s): "
                f"{missing}"
            )
        if opts.workers is None:
            shard_opts = ServingOptions(mmap=opts.mmap, verify=opts.verify)
            self._shards = [
                load_index(p, options=shard_opts) for p in self._paths
            ]
            self._pool = None
        else:
            if opts.verify != "off":
                # A damaged shard should be rejected here with a
                # clearly-attributed IndexIntegrityError, not inside a
                # pool worker's first query (workers still re-verify on
                # every (re)load, covering hot swaps).
                for p in self._paths:
                    verify_saved_index(p, verify=opts.verify)
            self._shards = None
            self._journal_dir = tempfile.mkdtemp(prefix="repro-shm-journal-")
            self._pool = ProcessPoolExecutor(max_workers=opts.workers)
            self._finalizer = weakref.finalize(
                self, _cleanup_pool, self._pool, self._journal_dir
            )
        return self

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool and reclaim any crash-journaled
        shared-memory segments.  Idempotent; a no-op for in-process
        serving."""
        pool, self._pool = self._pool, None
        journal_dir, self._journal_dir = self._journal_dir, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if pool is not None:
            pool.shutdown()
        if journal_dir is not None:
            _sweep_journal(journal_dir)
            shutil.rmtree(journal_dir, ignore_errors=True)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
