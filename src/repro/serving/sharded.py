"""Multi-core sharded serving of the Theorem 6.1 index.

The index is embarrassingly parallel across data partitions: each of the
``L`` tables is an independent repetition, so splitting the point set into
``S`` contiguous shards yields ``S`` independent indexes whose buckets
partition the unsharded index's buckets.  Because every shard samples the
*same* ``L`` hash pairs (same spec seed), the merged candidate stream —
table by table, shards in ascending-offset order — is element-for-element
identical to the unsharded stream: within a bucket, insertion order is
increasing point index, and contiguous shards keep global indices
increasing across the shard concatenation.  :class:`ShardedIndex` performs
that merge exactly, including the Theorem 6.1 early-termination budget
(applied to the *merged* per-table counts) and first-seen dedup order, so
sharded and unsharded indexes are observably identical
(``tests/test_sharded_parity.py`` enforces this differentially).

Two serving modes share the merge:

* **in-process** — shards are live ``DSHIndex`` objects; queries are
  hashed once (all shards share the pairs) and each shard's packed arrays
  are probed serially.  This is the correctness/reference mode.
* **process pool** — after :meth:`ShardedIndex.save`, ``load(path,
  workers=W)`` starts a persistent ``ProcessPoolExecutor``; each
  ``batch_query`` ships only the query block to the workers, and every
  worker memory-maps the shard files it touches on first use (cached
  thereafter).  No table data is ever pickled, and the OS page cache
  shares the mapped arrays across workers — batched throughput scales
  with cores.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.index.backends import (
    BatchHits,
    CandidateResult,
    QueryStats,
    budget_truncation,
    first_seen_dedup,
)
from repro.index.lsh_index import DSHIndex
from repro.index.persistence import FORMAT_VERSION

__all__ = ["ShardedIndex", "shard_bounds"]


def shard_bounds(n_points: int, shards: int) -> np.ndarray:
    """Contiguous shard boundaries: ``shards + 1`` offsets with shard
    sizes differing by at most one (``np.array_split`` convention), every
    shard non-empty."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if n_points < shards:
        raise ValueError(
            f"cannot split {n_points} points into {shards} non-empty shards"
        )
    base, extra = divmod(int(n_points), int(shards))
    sizes = np.full(shards, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(sizes)])


# Per-process cache of memory-mapped shard indexes, keyed by path: a pool
# worker loads each shard it is handed exactly once (O(1) file opens, no
# table bytes over the pipe) and reuses it for every later request.
_SHARD_CACHE: dict[str, DSHIndex] = {}


def _pool_batch_hits(
    shard_path: str, queries: np.ndarray, mmap: bool
) -> BatchHits:
    """Pool worker: resolve one shard's hit streams for a query block."""
    from repro.api import load_index

    index = _SHARD_CACHE.get(shard_path)
    if index is None:
        index = load_index(shard_path, mmap=mmap)
        _SHARD_CACHE[shard_path] = index
    return index.batch_query_hits(queries)


def _merge_blocks(
    blocks: list[BatchHits],
    bounds: np.ndarray,
    n_tables: int,
    n_points: int,
    max_retrieved: int | None,
) -> list[CandidateResult]:
    """Merge per-shard hit streams into globally-correct candidate results.

    Reconstructs the unsharded probe order — table-major, shards in
    ascending offset order within a table — then applies the same
    :func:`~repro.index.backends.budget_truncation` /
    :func:`~repro.index.backends.first_seen_dedup` devices the packed
    backend uses, on the *merged* per-table counts.  Stats are the sums of
    the per-shard retrieval work, which equal the unsharded index's stats
    exactly.
    """
    counts = np.stack([b.table_counts for b in blocks])  # (S, nq, L)
    total = counts.sum(axis=0)  # (nq, L)
    n_queries = total.shape[0]
    probed, truncated = budget_truncation(total, n_tables, max_retrieved)

    # Where each (query, table) segment starts inside every shard's flat
    # hit array, and the shard-local ids lifted to global ids.
    seg_starts = []
    global_hits = []
    for s, block in enumerate(blocks):
        table_cum = np.cumsum(block.table_counts, axis=1)
        seg_starts.append(
            np.asarray(block.offsets)[:-1, None]
            + table_cum
            - block.table_counts
        )
        global_hits.append(
            np.asarray(block.hits, dtype=np.int64) + int(bounds[s])
        )

    stamp = np.empty(max(n_points, 1), dtype=np.int64)
    positions_all = np.arange(
        int(total.sum(axis=1).max(initial=0)), dtype=np.int64
    )
    empty = np.empty(0, dtype=np.int64)
    results: list[CandidateResult] = []
    for i in range(n_queries):
        parts = []
        for t in range(int(probed[i])):
            for s in range(len(blocks)):
                count = int(counts[s, i, t])
                if count:
                    lo = int(seg_starts[s][i, t])
                    parts.append(global_hits[s][lo : lo + count])
        segment = np.concatenate(parts) if parts else empty
        ordered = first_seen_dedup(segment, stamp, positions_all)
        results.append(
            CandidateResult(
                ordered,
                QueryStats(
                    retrieved=int(total[i, : probed[i]].sum()),
                    unique_candidates=len(ordered),
                    tables_probed=int(probed[i]),
                    truncated=bool(truncated[i]),
                ),
            )
        )
    return results


class ShardedIndex:
    """``S`` contiguous shards of one raw-kind :class:`IndexSpec`, served
    as a single :class:`~repro.index.queryable.Queryable`.

    Build via a spec with ``shards > 1`` (``spec.build(points)`` /
    :func:`repro.api.build_index` return one automatically) — the spec's
    fixed seed guarantees every shard samples identical hash pairs, which
    is what makes the merge exact.  ``save``/``load`` round the shards
    through per-shard zero-copy files; ``load(path, workers=W)`` switches
    to process-pool serving.

    Parameters
    ----------
    points:
        Data set, shape ``(n, d)``; shard ``s`` owns the contiguous row
        range ``bounds[s]:bounds[s + 1]``.
    spec:
        A validated :class:`~repro.api.IndexSpec` with ``kind="raw"``,
        ``shards >= 1``, and a fixed seed.
    build_workers:
        Threads for building shards concurrently (hash kernels are
        NumPy-bound); ``None`` builds serially.
    """

    def __init__(self, points: np.ndarray, spec, *, build_workers: int | None = None):
        if spec.kind != "raw":
            raise ValueError(
                f"ShardedIndex requires kind='raw', got {spec.kind!r}"
            )
        if spec.seed is None:
            raise ValueError(
                "ShardedIndex needs a spec with a fixed seed so every "
                "shard samples identical hash pairs"
            )
        points = np.atleast_2d(np.asarray(points))
        self.spec = spec
        self._bounds = shard_bounds(points.shape[0], spec.shards)
        self._dim = int(points.shape[1])
        shard_spec = dataclasses.replace(spec, shards=1)

        def build_one(s: int) -> DSHIndex:
            return shard_spec.build(
                points[self._bounds[s] : self._bounds[s + 1]]
            )

        if build_workers is not None and build_workers > 1:
            with ThreadPoolExecutor(max_workers=build_workers) as pool:
                self._shards = list(pool.map(build_one, range(spec.shards)))
        else:
            self._shards = [build_one(s) for s in range(spec.shards)]
        self._paths: list[str] | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._mmap = True

    # -- introspection ---------------------------------------------------

    @property
    def n_points(self) -> int:
        """Total number of indexed points across shards."""
        return int(self._bounds[-1])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed point set."""
        return self._dim

    @property
    def n_tables(self) -> int:
        """Repetition count ``L`` (identical in every shard)."""
        return self.spec.n_tables

    @property
    def n_shards(self) -> int:
        """Number of data shards."""
        return self._bounds.size - 1

    @property
    def backend(self) -> str:
        """Name of the per-shard storage backend."""
        return self.spec.backend

    @property
    def bounds(self) -> np.ndarray:
        """Copy of the ``(S + 1,)`` contiguous shard boundary offsets."""
        return self._bounds.copy()

    def __repr__(self) -> str:
        mode = (
            f"pool={self._pool._max_workers}"
            if self._pool is not None
            else "in-process"
        )
        return (
            f"{type(self).__name__}(shards={self.n_shards}, "
            f"L={self.n_tables}, backend={self.backend!r}, "
            f"n_points={self.n_points}, d={self._dim}, {mode})"
        )

    # -- querying --------------------------------------------------------

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries))
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be one point (d,) or a block (n, d), "
                f"got shape {queries.shape}"
            )
        if queries.shape[1] != self._dim:
            raise ValueError(
                f"query dimensionality {queries.shape[1]} does not match "
                f"the indexed point set (d={self._dim})"
            )
        return queries

    def _shard_blocks(self, queries: np.ndarray) -> list[BatchHits]:
        if self._shards is None and self._pool is None:
            raise ValueError(
                "this ShardedIndex has been closed; load it again to serve"
            )
        if self._pool is not None:
            futures = [
                self._pool.submit(_pool_batch_hits, path, queries, self._mmap)
                for path in self._paths
            ]
            return [future.result() for future in futures]
        # All shards share the hash pairs, so hash the query block once
        # and probe each shard's backend directly.
        comps = [
            pair.hash_query(queries) for pair in self._shards[0]._pairs
        ]
        return [
            shard._backend.batch_query_hits(comps) for shard in self._shards
        ]

    def batch_query(
        self, queries: np.ndarray, max_retrieved: int | None = None
    ) -> list[CandidateResult]:
        """Candidate retrieval for a query block, fanned out across shards
        and merged exactly (global ids, first-seen dedup order, summed
        stats) — element-for-element identical to the unsharded index."""
        queries = self._check_queries(queries)
        blocks = self._shard_blocks(queries)
        return _merge_blocks(
            blocks, self._bounds, self.n_tables, self.n_points, max_retrieved
        )

    def query(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> CandidateResult:
        """Single-query spelling of :meth:`batch_query`."""
        queries = self._check_queries(query)
        if queries.shape[0] != 1:
            raise ValueError(
                f"query must be a single point, got {queries.shape[0]}"
            )
        return self.batch_query(queries, max_retrieved)[0]

    # -- persistence -----------------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist as ``<path>.json`` (manifest) + one zero-copy file pair
        per shard (``<path>.shard<i>.npz/.json``).  Returns the manifest
        path."""
        from repro.api import index_paths, save_index

        if self._shards is None:
            raise ValueError(
                "this ShardedIndex serves already-saved shard files; "
                "copy those instead of re-saving"
            )
        _, json_path = index_paths(path)
        base = json_path.with_suffix("")
        json_path.parent.mkdir(parents=True, exist_ok=True)
        shard_names = []
        for s, shard in enumerate(self._shards):
            name = f"{base.name}.shard{s}"
            save_index(shard, base.with_name(name))
            shard_names.append(name)
        manifest = {
            "format": FORMAT_VERSION,
            "layout": "sharded",
            "spec": self.spec.to_dict(),
            "bounds": [int(b) for b in self._bounds],
            "dim": self._dim,
            "shards": shard_names,
        }
        json_path.write_text(json.dumps(manifest, indent=2))
        return json_path

    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        *,
        workers: int | None = None,
        mmap: bool = True,
    ) -> "ShardedIndex":
        """Revive a :meth:`save` layout.

        ``workers=None`` loads every shard in-process (memory-mapped when
        ``mmap=True``).  ``workers=W`` starts a persistent ``W``-process
        pool instead and defers shard opening to the workers — the parent
        never touches table data, so cold start is the manifest read plus
        pool spawn.
        """
        from repro.api import IndexSpec, index_paths, load_index

        _, json_path = index_paths(path)
        manifest = json.loads(json_path.read_text())
        if manifest.get("layout") != "sharded":
            raise ValueError(f"{json_path!s} is not a sharded index manifest")
        if manifest.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {manifest.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        self = object.__new__(cls)
        self.spec = IndexSpec.from_dict(manifest["spec"])
        self._bounds = np.asarray(manifest["bounds"], dtype=np.int64)
        self._dim = int(manifest["dim"])
        self._paths = [
            str(json_path.parent / name) for name in manifest["shards"]
        ]
        self._mmap = mmap
        # Fail now, not inside a pool worker's first query: a partial
        # deploy that missed a shard file should be caught at load time
        # with a clearly-attributed error.
        missing = [
            str(part)
            for shard in self._paths
            for part in index_paths(shard)
            if not part.exists()
        ]
        if missing:
            raise FileNotFoundError(
                f"manifest {json_path} names missing shard file(s): "
                f"{missing}"
            )
        if workers is None:
            self._shards = [load_index(p, mmap=mmap) for p in self._paths]
            self._pool = None
        else:
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
            self._shards = None
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (no-op for in-process serving)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
