"""One frozen bag for every serving knob.

Serving configuration used to travel as a sprawl of loose keywords —
``mmap=`` / ``workers=`` / ``verify=`` / ``on_shard_failure=`` on the
loaders, ``max_retries`` / ``retry_backoff_s`` as post-construction
attributes, ``timeout=`` per call — and each new entry point had to
re-plumb all of them.  :class:`ServingOptions` consolidates the set
into a single frozen dataclass that :func:`repro.api.load_index`,
:meth:`repro.serving.sharded.ShardedIndex.load`, and
:class:`repro.serving.server.AsyncIndexServer` all accept as
``options=``, with a dict/JSON round-trip mirroring
:class:`repro.api.IndexSpec` so a deployment can pin *what to build*
and *how to serve it* in the same config file.

The legacy keywords keep working for one release via a deprecation
shim (:func:`resolve_serving_options`); mixing them with ``options=``
is an error rather than a silent merge.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Mapping

from repro.index.persistence import VERIFY_MODES

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_BACKOFF_S",
    "FAILURE_MODES",
    "ServingOptions",
    "resolve_serving_options",
]

DEFAULT_MAX_RETRIES = 2
DEFAULT_RETRY_BACKOFF_S = 0.05

FAILURE_MODES = ("raise", "degrade")

_LEGACY_HINT = (
    "pass options=ServingOptions(...) instead; the loose serving "
    "keywords (mmap=/workers=/verify=/on_shard_failure=) are "
    "deprecated and will be removed in a future release"
)


@dataclasses.dataclass(frozen=True)
class ServingOptions:
    """Frozen serving configuration shared by every query surface.

    ``workers``
        Process-pool size for sharded serving (``None`` = query shards
        in-process on the caller's thread).  Must be ``None`` for
        single-file indexes.
    ``mmap``
        Memory-map array payloads on load (O(1) cold start) instead of
        materialising them.
    ``verify``
        Integrity mode for loads: ``"eager"`` (checksum everything up
        front), ``"lazy"`` (verify each shard on first touch), or
        ``"off"``.
    ``on_shard_failure``
        ``"raise"`` surfaces a dead shard as :class:`PoolRecoveryError`;
        ``"degrade"`` serves from the surviving shards and marks results
        ``stats.degraded``.  Must be ``"raise"`` for single-file indexes.
    ``timeout``
        Default per-request deadline in seconds applied when a call does
        not pass its own ``timeout=`` (``None`` = wait indefinitely).
    ``max_retries`` / ``retry_backoff_s``
        Crash-recovery budget per pool generation: how many times a
        failed shard batch is retried after a worker respawn, and the
        linear backoff step between attempts.
    """

    workers: int | None = None
    mmap: bool = True
    verify: str = "lazy"
    on_shard_failure: str = "raise"
    timeout: float | None = None
    max_retries: int = DEFAULT_MAX_RETRIES
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S

    def __post_init__(self) -> None:
        """Validate every field eagerly so bad configs fail at build time."""
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be None or >= 1, got {self.workers}")
        if self.verify not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {self.verify!r}; expected one of {VERIFY_MODES}"
            )
        if self.on_shard_failure not in FAILURE_MODES:
            raise ValueError(
                f"unknown on_shard_failure mode {self.on_shard_failure!r}; "
                f"expected one of {FAILURE_MODES}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be None or > 0, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able dict of every field (round-trips via :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServingOptions":
        """Rebuild options from a :meth:`to_dict` payload.

        Unknown keys raise ``ValueError`` (a typo'd knob should fail the
        deploy, not silently fall back to a default).
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown ServingOptions field(s) {unknown}; expected a "
                f"subset of {sorted(known)}"
            )
        return cls(**dict(payload))


def resolve_serving_options(
    options: ServingOptions | None,
    *,
    mmap: bool | None = None,
    workers: int | None = None,
    verify: str | None = None,
    on_shard_failure: str | None = None,
    stacklevel: int = 3,
) -> ServingOptions:
    """Fold legacy loose keywords into one :class:`ServingOptions`.

    The deprecation shim behind every serving entry point: explicit
    legacy keywords emit a :class:`DeprecationWarning` and are folded
    into a fresh options object; combining them with ``options=`` raises
    ``ValueError``; passing neither returns the defaults.
    """
    legacy: dict[str, Any] = {}
    if mmap is not None:
        legacy["mmap"] = mmap
    if workers is not None:
        legacy["workers"] = workers
    if verify is not None:
        legacy["verify"] = verify
    if on_shard_failure is not None:
        legacy["on_shard_failure"] = on_shard_failure
    if options is not None:
        if legacy:
            raise ValueError(
                "pass either options=ServingOptions(...) or the legacy "
                f"keyword(s) {sorted(legacy)}, not both"
            )
        return options
    if not legacy:
        return ServingOptions()
    warnings.warn(_LEGACY_HINT, DeprecationWarning, stacklevel=stacklevel)
    return ServingOptions(**legacy)
