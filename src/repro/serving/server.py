"""Async micro-batching front door: interactive traffic → batch speedups.

The repo's query surfaces stop at ``batch_query`` — great when one
caller already holds a block of queries, useless for the ROADMAP's
real-traffic setting where "millions of users" each arrive with a
*single* query over a socket.  :class:`AsyncIndexServer` closes that
gap: concurrent single-query requests are admitted into a bounded
queue, coalesced into micro-batches under a ``max_batch`` /
``max_wait_us`` window, executed on replicated index snapshots in a
thread pool (NumPy kernels release the GIL; sharded replicas fan out
further to their own process pools), and fanned back out one result
per request — so interactive traffic rides the ×10–15 batch-query
amortization instead of paying the per-call overhead ``n`` times.

Design points:

* **Exactness.**  A coalesced batch is executed as one
  ``batch_query`` call, whose results are element-for-element
  identical to per-query calls (the repo-wide batch/loop parity
  invariant) — so coalescing is invisible in the responses.  Requests
  with different ``max_retrieved`` budgets are grouped and executed
  per budget, preserving the shard-local clip exactness.
* **Backpressure.**  Admission is a bounded ``asyncio.Queue``; when
  it is full the request is *shed* immediately with a typed
  :class:`ServerOverloadedError` rather than queued into collapse.
* **Health routing.**  A replica whose execution fails with an
  infrastructure error (:class:`PoolRecoveryError`,
  :class:`IndexIntegrityError`, ``OSError``) is marked unhealthy and
  routed around; :meth:`AsyncIndexServer.check_health` re-probes via
  each replica's own ``health()`` and restores recovered replicas.
* **Hot swap.**  :meth:`AsyncIndexServer.swap` loads a new snapshot
  (O(1) mmap cold start), atomically redirects new batches to it,
  drains in-flight batches on the old generation, then closes it —
  zero downtime, and no batch ever mixes generations because a batch
  resolves its snapshot exactly once, at dispatch.
* **Observability.**  Every response is a :class:`ServedResult`
  carrying :class:`ServeStats` (queue wait, coalesce window, batch
  size, executor latency, snapshot generation); server-level
  counters (admitted/served/shed/swaps/reroutes) come from
  :meth:`AsyncIndexServer.metrics`.

:func:`serve_in_thread` wraps the event loop in a daemon thread and
returns a synchronous :class:`ServerHandle` that satisfies the same
:class:`~repro.index.queryable.Queryable` protocol as every local
index — local, sharded, and served indexes are drop-in
interchangeable.
"""

from __future__ import annotations

import asyncio
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.index.persistence import IndexIntegrityError
from repro.serving.options import ServingOptions
from repro.serving.sharded import PoolRecoveryError

__all__ = [
    "AsyncIndexServer",
    "ServerHandle",
    "ServerOverloadedError",
    "ServeStats",
    "ServedResult",
    "serve_in_thread",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_US",
    "DEFAULT_MAX_PENDING",
]

#: Default micro-batch size cap: large enough to amortize per-call
#: overhead, small enough to keep tail latency bounded.
DEFAULT_MAX_BATCH = 64

#: Default coalescing window in microseconds — how long a batch head
#: waits for followers before dispatching short.
DEFAULT_MAX_WAIT_US = 2_000

#: Default bound on admitted-but-unserved requests before shedding.
DEFAULT_MAX_PENDING = 1_024

#: Infrastructure failures that mark a replica unhealthy and reroute the
#: batch (vs. request errors, which propagate to the caller).
_REPLICA_ERRORS = (PoolRecoveryError, IndexIntegrityError, OSError)


class ServerOverloadedError(RuntimeError):
    """The admission queue is full and the request was shed immediately
    (bounded-queue backpressure).  ``pending`` and ``max_pending`` record
    the queue state at shed time; callers should back off and retry."""

    def __init__(self, pending: int, max_pending: int) -> None:
        super().__init__(
            f"server overloaded: {pending} requests pending "
            f"(max_pending={max_pending}); request shed"
        )
        self.pending = pending
        self.max_pending = max_pending


@dataclass(frozen=True)
class ServeStats:
    """Per-request serving observability (timings in seconds).

    ``queue_wait_s`` is admission → batch dispatch; ``coalesce_wait_s``
    the window the batch head held open for followers; ``execute_s`` the
    executor-side ``batch_query`` latency of this request's budget
    group; ``batch_id`` / ``batch_size`` which coalesced batch the
    request rode and how many requests rode it (``group_size`` of them
    sharing this request's budget); ``snapshot`` / ``replica`` which
    index generation and replica slot answered.  Server-wide
    shed/swap/reroute counters live on
    :meth:`AsyncIndexServer.metrics`.
    """

    queue_wait_s: float
    coalesce_wait_s: float
    execute_s: float
    batch_id: int
    batch_size: int
    group_size: int
    snapshot: int
    replica: int


@dataclass(frozen=True)
class ServedResult:
    """A served response: the *exact* underlying index result plus the
    serving-side :class:`ServeStats`.  Delegating ``stats`` / ``indices``
    properties let it quack like the wrapped result for cost accounting.
    """

    result: Any
    serve: ServeStats

    @property
    def stats(self) -> Any:
        """The wrapped result's :class:`QueryStats` (cost accounting)."""
        return self.result.stats

    @property
    def indices(self) -> Any:
        """The wrapped result's candidate indices (raw-index results)."""
        return self.result.indices


@dataclass
class _Request:
    """One admitted single-query request awaiting batch execution."""

    query: np.ndarray
    max_retrieved: int | None
    future: asyncio.Future[ServedResult]
    admitted_at: float


class _Snapshot:
    """One live index generation: replica handles plus slot bookkeeping.

    ``available`` holds idle slot ids; ``unhealthy`` the routed-around
    ones (a slot can be in both — acquisition skips it).  ``in_flight``
    counts batches executing on this generation; after :meth:`retire`,
    the last batch to finish sets ``drained``.
    """

    def __init__(self, generation: int, path: str, replicas: list[Any]) -> None:
        self.generation = generation
        self.path = path
        self.replicas = replicas
        self.available: set[int] = set(range(len(replicas)))
        self.unhealthy: set[int] = set()
        self.slots = asyncio.Condition()
        self.in_flight = 0
        self.retired = False
        self.drained = asyncio.Event()
        self.dim = _index_dim(replicas[0]) if replicas else None

    def retire(self) -> None:
        """Stop new dispatches (callers switch first) and arm ``drained``."""
        self.retired = True
        if self.in_flight == 0:
            self.drained.set()


def _index_dim(index: Any) -> int | None:
    """Best-effort query dimensionality of a loaded index (for admission
    validation); ``None`` when the index does not expose it."""
    dim = getattr(index, "dim", None)
    if dim is not None:
        return int(dim)
    points = getattr(index, "points", None)
    if points is not None and getattr(points, "ndim", 0) == 2:
        return int(points.shape[1])
    return None


def _load_replicas(path: str, count: int, options: ServingOptions) -> list[Any]:
    """Executor-side snapshot load: ``count`` independent replicas of the
    index at ``path`` (mmap'd replicas share pages, so replication is
    cheap).  Closes partial loads on failure before re-raising."""
    from repro.api import load_index  # lazy: api imports serving lazily too

    replicas: list[Any] = []
    try:
        for _ in range(count):
            replicas.append(load_index(path, options=options))
    except BaseException:
        _close_replicas(replicas)
        raise
    return replicas


def _close_replicas(replicas: list[Any]) -> None:
    """Executor-side snapshot teardown: close every replica that has a
    ``close`` (pool-serving ShardedIndex); plain mmap indexes just drop."""
    for replica in replicas:
        closer = getattr(replica, "close", None)
        if callable(closer):
            closer()


def _replica_batch_query(
    replica: Any, block: np.ndarray, max_retrieved: int | None
) -> list[Any]:
    """Executor-side batch execution — one ``batch_query`` call for one
    budget group, results element-for-element identical to per-query
    calls (the repo-wide parity invariant)."""
    if max_retrieved is None:
        return list(replica.batch_query(block))
    return list(replica.batch_query(block, max_retrieved=max_retrieved))


def _probe_replica(replica: Any) -> dict[str, Any]:
    """Executor-side health probe: defer to the replica's own ``health()``
    when it has one (ShardedIndex: shard files + pool round trip), else
    report a plain in-process replica as healthy."""
    health = getattr(replica, "health", None)
    if callable(health):
        report = health()
        return {"ok": bool(report.get("ok", False)), "detail": report}
    return {"ok": True, "detail": {"mode": "in-process"}}


def _shutdown_executor(executor: ThreadPoolExecutor) -> None:
    """``weakref.finalize`` safety net for an abandoned server."""
    executor.shutdown(wait=False, cancel_futures=True)


class AsyncIndexServer:
    """Asyncio serving tier over replicated index snapshots.

    ``path`` names a :func:`repro.api.save_index` bundle (single or
    sharded layout); ``replicas`` independent handles are opened so
    concurrent batches overlap (mmap makes replicas share pages).
    ``max_batch`` / ``max_wait_us`` bound the coalescing window,
    ``max_pending`` the admission queue (see the module docstring), and
    ``options`` is the same frozen
    :class:`~repro.serving.options.ServingOptions` every other query
    surface takes — ``options.timeout`` becomes the per-batch deadline
    for sharded replicas.

    Lifecycle: ``await start()`` (or ``async with``) before
    :meth:`query`; ``await close()`` drains in-flight work and releases
    the executor and replicas (also hooked to garbage collection via
    ``weakref.finalize`` so an abandoned server cannot leak threads).
    """

    def __init__(
        self,
        path: str,
        *,
        replicas: int = 1,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_us: int = DEFAULT_MAX_WAIT_US,
        max_pending: int = DEFAULT_MAX_PENDING,
        options: ServingOptions | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._path = str(path)
        self._replicas = replicas
        self._max_batch = max_batch
        self._max_wait_s = max_wait_us / 1e6
        self._max_pending = max_pending
        self._options = options if options is not None else ServingOptions()
        self._queue: asyncio.Queue[_Request] | None = None
        self._snapshot: _Snapshot | None = None
        self._batcher: asyncio.Task[None] | None = None
        self._getter: asyncio.Task[_Request] | None = None
        self._tasks: set[asyncio.Task[None]] = set()
        self._executor: ThreadPoolExecutor | None = None
        self._finalizer: weakref.finalize | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._swap_lock: asyncio.Lock | None = None
        self._pending = 0
        self._started = False
        self._closed = False
        self._metrics: dict[str, int] = {
            "admitted": 0,
            "served": 0,
            "shed": 0,
            "failed": 0,
            "batches": 0,
            "coalesced": 0,
            "max_batch_size": 0,
            "swaps": 0,
            "rerouted": 0,
        }

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "AsyncIndexServer":
        """Open the snapshot replicas and start the coalescing loop.

        Raises :class:`IndexIntegrityError` when the snapshot fails its
        ``options.verify`` integrity checks, ``FileNotFoundError`` for a
        missing bundle, and ``RuntimeError`` if the server was already
        started or closed.
        """
        if self._started or self._closed:
            raise RuntimeError("server already started or closed")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self._swap_lock = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, self._replicas),
            thread_name_prefix="repro-serve",
        )
        self._finalizer = weakref.finalize(
            self, _shutdown_executor, self._executor
        )
        try:
            self._snapshot = await self._load_snapshot(self._path, 0)
        except BaseException:
            self._finalizer.detach()
            self._executor.shutdown(wait=False)
            self._executor = None
            raise
        self._batcher = loop.create_task(self._batch_loop())
        self._started = True
        return self

    async def close(self) -> None:
        """Graceful shutdown: stop admission, drain every in-flight
        request, then release replicas and the executor.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            if self._executor is not None:
                if self._finalizer is not None:
                    self._finalizer.detach()
                self._executor.shutdown(wait=False)
                self._executor = None
            return
        while self._pending > 0:
            tasks = list(self._tasks)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            else:
                await asyncio.sleep(0.001)
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        snapshot, self._snapshot = self._snapshot, None
        executor = self._executor
        if snapshot is not None and executor is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                executor, _close_replicas, snapshot.replicas
            )
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if executor is not None:
            executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "AsyncIndexServer":
        """``async with`` entry: :meth:`start`."""
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        """``async with`` exit: :meth:`close`."""
        await self.close()

    # -- serving ---------------------------------------------------------

    async def query(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> ServedResult:
        """Serve one query point through the coalescing tier.

        The response's ``result`` is *exactly* what a direct
        ``batch_query`` containing this query returns (coalescing is
        invisible); ``serve`` carries the :class:`ServeStats`.
        ``max_retrieved`` applies the same exactness-preserving budget
        clip as the underlying index (requests with different budgets
        are grouped per budget inside a batch).

        Sheds with :class:`ServerOverloadedError` when ``max_pending``
        admitted requests are still outstanding (queued or in flight).  Replica-side failures propagate:
        :class:`PoolRecoveryError` when every replica's pool recovery is
        exhausted, builtin :class:`TimeoutError` past an
        ``options.timeout`` deadline, ``RuntimeError`` when every
        replica has been routed out as unhealthy.
        """
        queue = self._require_running()
        row = np.asarray(query)
        if row.ndim == 2 and row.shape[0] == 1:
            row = row[0]
        if row.ndim != 1:
            raise ValueError(
                f"query must be a single point, got shape {row.shape}"
            )
        snapshot = self._snapshot
        if (
            snapshot is not None
            and snapshot.dim is not None
            and row.shape[0] != snapshot.dim
        ):
            raise ValueError(
                f"query has dimension {row.shape[0]}, index expects "
                f"{snapshot.dim}"
            )
        budget = None if max_retrieved is None else int(max_retrieved)
        if budget is not None and budget < 0:
            raise ValueError(f"max_retrieved must be >= 0, got {budget}")
        loop = asyncio.get_running_loop()
        # ``_pending`` counts every admitted-but-unresolved request —
        # queued *and* in flight on a replica — so backpressure bounds
        # total outstanding work, not just the coalescing queue (batches
        # waiting for a replica slot would otherwise absorb overload
        # into unbounded memory instead of shedding it).
        if self._pending >= self._max_pending:
            self._metrics["shed"] += 1
            raise ServerOverloadedError(self._pending, self._max_pending)
        request = _Request(row, budget, loop.create_future(), loop.time())
        try:
            queue.put_nowait(request)
        except asyncio.QueueFull:  # pragma: no cover - pending gate first
            self._metrics["shed"] += 1
            raise ServerOverloadedError(
                queue.qsize(), self._max_pending
            ) from None
        self._metrics["admitted"] += 1
        self._pending += 1
        request.future.add_done_callback(self._request_done)
        return await request.future

    def _request_done(self, future: asyncio.Future[ServedResult]) -> None:
        self._pending -= 1

    def _require_running(self) -> asyncio.Queue[_Request]:
        if self._closed:
            raise RuntimeError("server is closed")
        if not self._started or self._queue is None:
            raise RuntimeError("server not started; await start() first")
        return self._queue

    # -- coalescing loop -------------------------------------------------

    def _ensure_getter(self) -> asyncio.Task[_Request]:
        # One persistent queue.get() task that survives window expiries —
        # cancelling a get() mid-completion can drop an item, so the
        # getter is never cancelled while the loop runs.
        if self._getter is None:
            if self._loop is None or self._queue is None:
                raise RuntimeError("server not started")
            self._getter = self._loop.create_task(self._queue.get())
        return self._getter

    def _poll_request(self) -> _Request | None:
        getter = self._getter
        if getter is not None and getter.done():
            self._getter = None
            return getter.result()
        if self._queue is None:
            return None
        try:
            return self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None

    async def _next_request(
        self, timeout: float | None
    ) -> _Request | None:
        getter = self._ensure_getter()
        done, _ = await asyncio.wait({getter}, timeout=timeout)
        if not done:
            return None  # window expired; getter stays armed for later
        self._getter = None
        return getter.result()

    async def _batch_loop(self) -> None:
        if self._loop is None:
            raise RuntimeError("server not started")
        loop = self._loop
        try:
            while True:
                head = await self._next_request(None)
                if head is None:  # pragma: no cover - None only on timeout
                    continue
                started = loop.time()
                batch = [head]
                deadline = started + self._max_wait_s
                while len(batch) < self._max_batch:
                    more = self._poll_request()
                    if more is not None:
                        batch.append(more)
                        continue
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    more = await self._next_request(remaining)
                    if more is None:
                        break
                    batch.append(more)
                coalesce_wait_s = loop.time() - started
                task = loop.create_task(
                    self._run_batch(batch, coalesce_wait_s)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            getter, self._getter = self._getter, None
            if getter is not None:
                if getter.done() and not getter.cancelled():
                    orphan = getter.result()
                    if not orphan.future.done():
                        orphan.future.set_exception(
                            RuntimeError("server closed during admission")
                        )
                else:
                    getter.cancel()

    # -- batch execution -------------------------------------------------

    async def _run_batch(
        self, batch: list[_Request], coalesce_wait_s: float
    ) -> None:
        self._metrics["batches"] += 1
        batch_id = self._metrics["batches"]
        self._metrics["coalesced"] += len(batch)
        if len(batch) > self._metrics["max_batch_size"]:
            self._metrics["max_batch_size"] = len(batch)
        snapshot = self._snapshot
        if snapshot is None:
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(
                        RuntimeError("server has no live snapshot")
                    )
            self._metrics["failed"] += len(batch)
            return
        groups: dict[int | None, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.max_retrieved, []).append(request)
        snapshot.in_flight += 1
        try:
            for budget, members in groups.items():
                await self._serve_group(
                    snapshot, budget, members, batch_id, len(batch),
                    coalesce_wait_s,
                )
        except BaseException as exc:
            for request in batch:
                if not request.future.done():
                    if isinstance(exc, asyncio.CancelledError):
                        request.future.cancel()
                    else:
                        request.future.set_exception(
                            RuntimeError(
                                f"internal serving failure: {exc!r}"
                            )
                        )
                    self._metrics["failed"] += 1
            raise
        finally:
            snapshot.in_flight -= 1
            if snapshot.retired and snapshot.in_flight == 0:
                snapshot.drained.set()

    async def _serve_group(
        self,
        snapshot: _Snapshot,
        budget: int | None,
        members: list[_Request],
        batch_id: int,
        batch_size: int,
        coalesce_wait_s: float,
    ) -> None:
        if self._loop is None or self._executor is None:
            raise RuntimeError("server not started")
        loop, executor = self._loop, self._executor
        dispatched_at = loop.time()
        block = np.stack([request.query for request in members])
        last_error: BaseException | None = None
        while True:
            slot = await self._acquire_slot(snapshot)
            if slot is None:
                error = last_error or RuntimeError(
                    "no healthy replica available "
                    f"(generation {snapshot.generation})"
                )
                self._fail_group(members, error)
                return
            replica = snapshot.replicas[slot]
            started = loop.time()
            try:
                results = await loop.run_in_executor(
                    executor, _replica_batch_query, replica, block, budget
                )
            except _REPLICA_ERRORS as exc:
                last_error = exc
                await self._mark_unhealthy(snapshot, slot)
                self._metrics["rerouted"] += 1
                continue
            except (TimeoutError, ValueError, TypeError, RuntimeError) as exc:
                await self._release_slot(snapshot, slot)
                self._fail_group(members, exc)
                return
            await self._release_slot(snapshot, slot)
            execute_s = loop.time() - started
            for request, result in zip(members, results):
                if request.future.done():
                    continue
                stats = ServeStats(
                    queue_wait_s=dispatched_at - request.admitted_at,
                    coalesce_wait_s=coalesce_wait_s,
                    execute_s=execute_s,
                    batch_id=batch_id,
                    batch_size=batch_size,
                    group_size=len(members),
                    snapshot=snapshot.generation,
                    replica=slot,
                )
                request.future.set_result(ServedResult(result, stats))
                self._metrics["served"] += 1
            return

    def _fail_group(
        self, members: list[_Request], error: BaseException
    ) -> None:
        for request in members:
            if not request.future.done():
                request.future.set_exception(error)
                self._metrics["failed"] += 1

    # -- replica slot management -----------------------------------------

    async def _acquire_slot(self, snapshot: _Snapshot) -> int | None:
        async with snapshot.slots:
            while True:
                healthy = snapshot.available - snapshot.unhealthy
                if healthy:
                    slot = min(healthy)
                    snapshot.available.discard(slot)
                    return slot
                if len(snapshot.unhealthy) >= len(snapshot.replicas):
                    return None
                await snapshot.slots.wait()

    async def _release_slot(self, snapshot: _Snapshot, slot: int) -> None:
        async with snapshot.slots:
            snapshot.available.add(slot)
            snapshot.slots.notify_all()

    async def _mark_unhealthy(self, snapshot: _Snapshot, slot: int) -> None:
        async with snapshot.slots:
            snapshot.unhealthy.add(slot)
            snapshot.available.add(slot)
            snapshot.slots.notify_all()

    # -- health / swap / metrics -----------------------------------------

    async def check_health(self) -> dict[str, Any]:
        """Probe every replica of the live generation via its own
        ``health()`` (shard files + pool round trip for sharded
        replicas); mark failing replicas unhealthy (routed around) and
        restore recovered ones into rotation.  Never raises for an
        unhealthy replica — the report carries the details.
        """
        self._require_running()
        snapshot = self._snapshot
        if snapshot is None or self._loop is None or self._executor is None:
            raise RuntimeError("server has no live snapshot")
        reports = []
        for slot, replica in enumerate(snapshot.replicas):
            report = await self._loop.run_in_executor(
                self._executor, _probe_replica, replica
            )
            async with snapshot.slots:
                if report["ok"]:
                    snapshot.unhealthy.discard(slot)
                else:
                    snapshot.unhealthy.add(slot)
                snapshot.slots.notify_all()
            reports.append({"replica": slot, **report})
        return {
            "generation": snapshot.generation,
            "path": snapshot.path,
            "ok": len(snapshot.unhealthy) < len(snapshot.replicas),
            "unhealthy": sorted(snapshot.unhealthy),
            "replicas": reports,
        }

    async def swap(self, path: str) -> dict[str, Any]:
        """Zero-downtime hot swap to the snapshot at ``path``.

        The new generation is loaded first (O(1) mmap cold start) while
        the old one keeps serving; new batches are then atomically
        redirected, in-flight batches drain on the old generation, and
        only then is the old snapshot closed — no request is dropped and
        no batch mixes generations.  On load failure
        (:class:`IndexIntegrityError`, ``FileNotFoundError``) the old
        snapshot keeps serving untouched.
        """
        self._require_running()
        if self._swap_lock is None or self._loop is None:
            raise RuntimeError("server not started")
        async with self._swap_lock:
            old = self._snapshot
            if old is None:
                raise RuntimeError("server has no live snapshot")
            new = await self._load_snapshot(str(path), old.generation + 1)
            self._snapshot = new
            self._path = str(path)
            self._metrics["swaps"] += 1
            old.retire()
            await old.drained.wait()
            if self._executor is not None:
                await self._loop.run_in_executor(
                    self._executor, _close_replicas, old.replicas
                )
            return {
                "generation": new.generation,
                "path": new.path,
                "replicas": len(new.replicas),
            }

    async def _load_snapshot(self, path: str, generation: int) -> _Snapshot:
        if self._loop is None or self._executor is None:
            raise RuntimeError("server not started")
        replicas = await self._loop.run_in_executor(
            self._executor, _load_replicas, path, self._replicas, self._options
        )
        return _Snapshot(generation, path, replicas)

    def metrics(self) -> dict[str, Any]:
        """Server-wide counters: ``admitted`` / ``served`` / ``shed`` /
        ``failed`` / ``batches`` / ``swaps`` / ``rerouted``, the running
        ``max_batch_size``, the derived ``mean_batch``, plus the live
        ``pending`` depth and current ``generation``."""
        out: dict[str, Any] = dict(self._metrics)
        coalesced = out.pop("coalesced")
        out["mean_batch"] = coalesced / out["batches"] if out["batches"] else 0.0
        out["pending"] = self._pending
        out["generation"] = (
            self._snapshot.generation if self._snapshot is not None else None
        )
        return out

    @property
    def options(self) -> ServingOptions:
        """The frozen :class:`ServingOptions` replicas are loaded with."""
        return self._options


# -- synchronous facade ---------------------------------------------------


class ServerHandle:
    """Synchronous, thread-safe facade over an :class:`AsyncIndexServer`
    whose event loop runs in a daemon thread (:func:`serve_in_thread`).

    Satisfies the same :class:`~repro.index.queryable.Queryable`
    protocol as every local index: ``query`` returns a
    :class:`ServedResult` (``.stats``-carrying), ``batch_query`` submits
    each row as its own concurrent request — so a batch *demonstrates*
    server-side coalescing — and returns one result per row, exactness
    guaranteed by the coalescing invariant.  Close via
    :meth:`close` or the context manager.
    """

    def __init__(
        self,
        server: AsyncIndexServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread
        self._closed = False

    def _submit(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def query(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> ServedResult:
        """Blocking single-query call; see
        :meth:`AsyncIndexServer.query` for semantics (including the
        :class:`ServerOverloadedError` shed and propagated
        :class:`PoolRecoveryError` / :class:`TimeoutError` failures)."""
        return self._submit(  # type: ignore[no-any-return]
            self._server.query(query, max_retrieved)
        ).result()

    def batch_query(
        self, queries: np.ndarray, max_retrieved: int | None = None
    ) -> list[ServedResult]:
        """Submit every row as its own concurrent request (they coalesce
        server-side) and block for all results, in row order.  Failure
        semantics per row match :meth:`query` (shed requests raise
        :class:`ServerOverloadedError`, replica failures propagate —
        e.g. :class:`PoolRecoveryError`)."""
        block = np.atleast_2d(np.asarray(queries))
        futures = [
            self._submit(self._server.query(row, max_retrieved))
            for row in block
        ]
        return [future.result() for future in futures]

    def swap(self, path: str) -> dict[str, Any]:
        """Blocking :meth:`AsyncIndexServer.swap` (may raise
        :class:`IndexIntegrityError` for a damaged new snapshot; the old
        one keeps serving)."""
        return self._submit(  # type: ignore[no-any-return]
            self._server.swap(path)
        ).result()

    def check_health(self) -> dict[str, Any]:
        """Blocking :meth:`AsyncIndexServer.check_health`."""
        return self._submit(  # type: ignore[no-any-return]
            self._server.check_health()
        ).result()

    def metrics(self) -> dict[str, Any]:
        """Current :meth:`AsyncIndexServer.metrics` counters."""
        return self._server.metrics()

    def close(self) -> None:
        """Drain and close the server, stop its event loop, and join the
        serving thread.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._submit(self._server.close()).result()
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()

    def __enter__(self) -> "ServerHandle":
        """Context-manager entry (the handle is already serving)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()


def serve_in_thread(
    path: str,
    *,
    replicas: int = 1,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_wait_us: int = DEFAULT_MAX_WAIT_US,
    max_pending: int = DEFAULT_MAX_PENDING,
    options: ServingOptions | None = None,
) -> ServerHandle:
    """Start an :class:`AsyncIndexServer` on a fresh event loop in a
    daemon thread and return the synchronous :class:`ServerHandle`.

    Parameters match :class:`AsyncIndexServer`.  Start-time failures
    (:class:`IndexIntegrityError`, ``FileNotFoundError``) propagate to
    the caller after the thread is torn back down.
    """
    server = AsyncIndexServer(
        path,
        replicas=replicas,
        max_batch=max_batch,
        max_wait_us=max_wait_us,
        max_pending=max_pending,
        options=options,
    )
    ready = threading.Event()
    box: dict[str, asyncio.AbstractEventLoop] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-async-server", daemon=True
    )
    thread.start()
    ready.wait()
    loop = box["loop"]
    future = asyncio.run_coroutine_threadsafe(server.start(), loop)
    try:
        future.result()
    except BaseException:
        loop.call_soon_threadsafe(loop.stop)
        thread.join()
        raise
    return ServerHandle(server, loop, thread)
