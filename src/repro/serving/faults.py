"""Fault-injection hooks for chaos-testing the serving path.

Production failure modes — a pool worker segfaulting mid-request, a shard
bundle rotting on disk, a shared-memory segment vanishing between ship
and attach — are exactly the ones unit tests never hit by accident.  This
module makes them injectable on demand so ``tests/test_serving_faults.py``
and ``benchmarks/bench_fault_recovery.py`` can drive the recovery
machinery in :mod:`repro.serving.sharded` deterministically.

Two mechanisms:

**Fault points** — the serving code calls :func:`fault_point` at named
instrumentation sites (``"pool_worker"`` at pool-task entry,
``"shm_ship"`` after a worker creates a shared-memory segment,
``"shm_attach"`` before the parent attaches one).  The call is a no-op
unless the :data:`ENV_FAULT_DIR` environment variable names an armed
token directory, so the production hot path pays one ``os.environ``
lookup.  Tokens are one-shot files created by :func:`arm`; a fault point
claims a token atomically via ``os.remove`` (exactly one process wins,
even across a pool of workers), then executes the token's action:
``"kill"`` (``os._exit`` — simulates a segfaulting worker), ``"raise"``
(raises :class:`FaultInjected`), or ``"sleep:<seconds>"`` (simulates a
hung worker for deadline tests).  Because arming is file-based, it
crosses ``fork``/``spawn`` process boundaries with no coordination
beyond the inherited environment.

**Bundle corruption utilities** — :func:`corrupt_bundle`,
:func:`truncate_bundle`, and :func:`delete_bundle` damage a saved index
the way disks and interrupted copies do (in-place bit flips inside a
member's data region, missing tails, missing files), for driving the
``verify=`` integrity modes and degraded serving.
"""

from __future__ import annotations

import os
import pathlib
import time
import uuid
import zipfile

__all__ = [
    "ENV_FAULT_DIR",
    "KILL_EXIT_CODE",
    "FaultInjected",
    "arm",
    "armed",
    "disarm_all",
    "fault_point",
    "corrupt_bundle",
    "truncate_bundle",
    "delete_bundle",
]

#: Environment variable naming the token directory that arms fault
#: points.  Unset (the default) means every :func:`fault_point` call is a
#: no-op; pool workers inherit the variable from the parent process.
ENV_FAULT_DIR = "REPRO_FAULT_DIR"

#: Exit status used by the ``"kill"`` action, chosen to be recognizable
#: in worker-death post-mortems.
KILL_EXIT_CODE = 87

_TOKEN_SEP = "@"


class FaultInjected(RuntimeError):
    """Raised by a claimed ``"raise"`` fault token — the injected stand-in
    for a transient infrastructure failure (e.g. a shared-memory segment
    that vanished between ship and attach)."""


def arm(
    directory: str | pathlib.Path,
    point: str,
    action: str = "kill",
    count: int = 1,
) -> list[pathlib.Path]:
    """Arm ``count`` one-shot ``action`` tokens for ``point``.

    ``directory`` must be the same path the target processes see in
    :data:`ENV_FAULT_DIR`.  Each token triggers exactly once: the first
    process to reach the fault point and win the ``os.remove`` race
    consumes it.  Returns the created token paths.
    """
    if _TOKEN_SEP in point:
        raise ValueError(
            f"fault point name must not contain {_TOKEN_SEP!r}: {point!r}"
        )
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    tokens = []
    for _ in range(count):
        token = root / _TOKEN_SEP.join(
            (point, action, uuid.uuid4().hex[:12])
        )
        token.touch()
        tokens.append(token)
    return tokens


def armed(directory: str | pathlib.Path) -> list[str]:
    """Names of the tokens still unclaimed in ``directory`` (sorted)."""
    try:
        return sorted(os.listdir(directory))
    except FileNotFoundError:
        return []


def disarm_all(directory: str | pathlib.Path) -> int:
    """Remove every remaining token in ``directory``; returns how many."""
    removed = 0
    for name in armed(directory):
        try:
            os.remove(os.path.join(str(directory), name))
        except FileNotFoundError:
            continue
        removed += 1
    return removed


def _execute(point: str, action: str) -> None:
    if action == "kill":
        # Simulates a segfault / OOM kill: no cleanup, no exception
        # propagation, the executor sees a dead worker.
        os._exit(KILL_EXIT_CODE)
    if action.startswith("sleep:"):
        time.sleep(float(action.split(":", 1)[1]))
        return
    if action == "raise":
        raise FaultInjected(f"injected failure at fault point {point!r}")
    raise ValueError(
        f"unknown fault action {action!r} armed for point {point!r}"
    )


def fault_point(point: str) -> None:
    """Instrumentation hook: trigger one armed token for ``point``, if any.

    No-op unless :data:`ENV_FAULT_DIR` is set and ``directory`` holds a
    token for this point.  Claiming is atomic (``os.remove``): with many
    workers racing, exactly one executes the action per token.
    """
    root = os.environ.get(ENV_FAULT_DIR)
    if not root:
        return
    try:
        names = sorted(os.listdir(root))
    except FileNotFoundError:
        return
    prefix = point + _TOKEN_SEP
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            os.remove(os.path.join(root, name))
        except FileNotFoundError:
            continue  # another process claimed this token first
        action = name[len(prefix):].rsplit(_TOKEN_SEP, 1)[0]
        _execute(point, action)
        return


# -- bundle corruption utilities ------------------------------------------


def _npz_path(path: str | pathlib.Path) -> pathlib.Path:
    from repro.api import index_paths

    npz_path, _ = index_paths(path)
    return npz_path

_ZIP_LOCAL_HEADER_SIZE = 30


def corrupt_bundle(
    path: str | pathlib.Path, member: str | None = None
) -> int:
    """Flip one byte in the middle of a member's data region, in place.

    ``member`` names an archive member (with or without the ``.npy``
    suffix); by default the largest member is chosen — for an index
    bundle that is table data, so the corruption silently changes served
    candidates unless checksums catch it.  Returns the absolute file
    offset of the flipped byte.  The file size and mtime-granularity
    signature stay plausible, which is exactly what makes this failure
    mode dangerous.
    """
    npz_path = _npz_path(path)
    with zipfile.ZipFile(npz_path) as archive:
        infos = archive.infolist()
        if member is not None:
            wanted = {member, member + ".npy"}
            infos = [i for i in infos if i.filename in wanted]
            if not infos:
                raise ValueError(
                    f"{npz_path} has no member {member!r}"
                )
        info = max(infos, key=lambda i: i.file_size)
    with open(npz_path, "r+b") as f:
        f.seek(info.header_offset)
        local = f.read(_ZIP_LOCAL_HEADER_SIZE)
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        data_start = (
            info.header_offset + _ZIP_LOCAL_HEADER_SIZE + name_len + extra_len
        )
        offset = data_start + info.file_size // 2
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))
    return offset


def truncate_bundle(
    path: str | pathlib.Path, keep_fraction: float = 0.5
) -> int:
    """Cut a bundle's tail off in place — an interrupted copy or a disk
    that filled mid-replication.  Returns the new size in bytes."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(
            f"keep_fraction must be in [0, 1), got {keep_fraction}"
        )
    npz_path = _npz_path(path)
    keep = int(os.stat(npz_path).st_size * keep_fraction)
    os.truncate(npz_path, keep)
    return keep


def delete_bundle(path: str | pathlib.Path) -> None:
    """Delete a saved index's array bundle (the ``.npz``), leaving the
    sidecar — a shard file lost from a replica, the degraded-serving
    scenario."""
    os.remove(_npz_path(path))
