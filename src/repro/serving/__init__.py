"""Serving-layer machinery on top of the index layer.

* :mod:`repro.serving.sharded` — :class:`~repro.serving.sharded.ShardedIndex`:
  contiguous data-partition sharding of the Theorem 6.1 index with exact
  candidate-stream merging, persisted shard files, process-pool fan-out
  for multi-core batched serving, and fault tolerance (pool crash
  recovery, graceful shard degradation, shared-memory crash journal).
* :mod:`repro.serving.faults` — opt-in fault-injection hooks (worker
  kill, segment loss, bundle corruption) for chaos tests and recovery
  benchmarks.

Persistence itself (save/load, zero-copy mmap cold starts, integrity
checksums) lives one layer down: :func:`repro.api.save_index` /
:func:`repro.api.load_index` and :mod:`repro.index.persistence`.
"""

from repro.serving.faults import FaultInjected
from repro.serving.sharded import (
    PoolRecoveryError,
    ShardedIndex,
    check_manifest_coherence,
    shard_bounds,
)

__all__ = [
    "ShardedIndex",
    "PoolRecoveryError",
    "FaultInjected",
    "check_manifest_coherence",
    "shard_bounds",
]
