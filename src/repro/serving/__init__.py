"""Serving-layer machinery on top of the index layer.

* :mod:`repro.serving.sharded` — :class:`~repro.serving.sharded.ShardedIndex`:
  contiguous data-partition sharding of the Theorem 6.1 index with exact
  candidate-stream merging, persisted shard files, process-pool fan-out
  for multi-core batched serving, and fault tolerance (pool crash
  recovery, graceful shard degradation, shared-memory crash journal).
* :mod:`repro.serving.server` — :class:`~repro.serving.server.AsyncIndexServer`:
  the asyncio front door that coalesces concurrent single-query traffic
  into micro-batches over replicated snapshots, with backpressure
  shedding, health-based replica routing, and zero-downtime hot swaps
  (:func:`~repro.serving.server.serve_in_thread` for a synchronous
  :class:`~repro.index.queryable.Queryable` handle).
* :mod:`repro.serving.options` — the frozen
  :class:`~repro.serving.options.ServingOptions` bag every serving
  entry point (`load_index`, `ShardedIndex.load`, `AsyncIndexServer`)
  accepts, with dict/JSON round-trip alongside ``IndexSpec``.
* :mod:`repro.serving.faults` — opt-in fault-injection hooks (worker
  kill, segment loss, bundle corruption) for chaos tests and recovery
  benchmarks.

Persistence itself (save/load, zero-copy mmap cold starts, integrity
checksums) lives one layer down: :func:`repro.api.save_index` /
:func:`repro.api.load_index` and :mod:`repro.index.persistence`.
"""

from repro.serving.faults import FaultInjected
from repro.serving.options import ServingOptions
from repro.serving.server import (
    AsyncIndexServer,
    ServedResult,
    ServerHandle,
    ServerOverloadedError,
    ServeStats,
    serve_in_thread,
)
from repro.serving.sharded import (
    PoolRecoveryError,
    ShardedIndex,
    check_manifest_coherence,
    shard_bounds,
)

__all__ = [
    "ShardedIndex",
    "PoolRecoveryError",
    "FaultInjected",
    "ServingOptions",
    "AsyncIndexServer",
    "ServerHandle",
    "ServerOverloadedError",
    "ServeStats",
    "ServedResult",
    "serve_in_thread",
    "check_manifest_coherence",
    "shard_bounds",
]
