"""Serving-layer machinery on top of the index layer.

* :mod:`repro.serving.sharded` — :class:`~repro.serving.sharded.ShardedIndex`:
  contiguous data-partition sharding of the Theorem 6.1 index with exact
  candidate-stream merging, persisted shard files, and process-pool
  fan-out for multi-core batched serving.

Persistence itself (save/load, zero-copy mmap cold starts) lives one layer
down: :func:`repro.api.save_index` / :func:`repro.api.load_index` and
:mod:`repro.index.persistence`.
"""

from repro.serving.sharded import ShardedIndex, shard_bounds

__all__ = ["ShardedIndex", "shard_bounds"]
