"""RR008: OS-backed resources must provably reach their cleanup call.

``SharedMemory`` segments, process/thread pools, ``np.memmap`` views,
zip archives, and open file handles all pin OS state (fds, ``/dev/shm``
segments, worker processes) that outlives an exception unless cleanup
is structural.  The rule accepts a resource acquisition when it is:

- used as a context manager (``with``) or wrapped in
  ``contextlib.closing``/``ExitStack.enter_context``,
- registered with ``weakref.finalize``,
- cleaned up in a ``try/finally`` (or an except-cleanup-and-reraise
  block, the ``_ship_block`` pattern),
- handed off: returned/yielded to the caller, captured by a closure,
  stored on an object, or passed whole to another function (ownership
  transfer — the receiver is then checked at its own site),
- part of the journal-mediated shm handoff in ``serving/sharded.py``
  (segments recorded in the crash journal are swept by
  ``_sweep_journal`` even if the process dies between create and
  unlink, so linear cleanup there is sanctioned).

Straight-line ``x = open(...) ... x.close()`` is exactly the
leak-on-exception shape this rule exists to reject.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation, dotted_name
from repro.analysis.project import ProjectModule, _iter_scopes, project_context

__all__ = ["ResourceLifecycleRule"]

_RESOURCE_LEAVES = {
    "SharedMemory": "shared-memory segment",
    "ProcessPoolExecutor": "process pool",
    "ThreadPoolExecutor": "thread pool",
    "memmap": "memory-mapped view",
    "ZipFile": "zip archive",
}
_CLEANUP_METHODS = {
    "close",
    "unlink",
    "shutdown",
    "terminate",
    "release",
    "cleanup",
    "stop",
    "__exit__",
}
_WRAPPER_LEAVES = {"finalize", "closing", "enter_context", "push"}
_CLASS_CLEANUP_METHODS = {"close", "shutdown", "stop", "__exit__", "__del__"}
_JOURNAL_PATH = "serving/sharded.py"


class ResourceLifecycleRule(Rule):
    """Require structural cleanup for OS-backed resource acquisitions."""

    rule_id = "RR008"
    name = "resource-lifecycle"
    rationale = (
        "SharedMemory/pools/memmap/file handles must reach close/unlink/"
        "shutdown on all paths: with, try-finally, or weakref.finalize "
        "(journal-mediated shm handoff in serving/sharded.py excepted)"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Flag resource acquisitions with no structural cleanup path."""
        _, mod = project_context(self, src)
        for qualname, scope in _iter_scopes(mod):
            for node in ast.walk(scope if qualname != "<module>" else mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                if qualname == "<module>" and self._in_function(node, mod):
                    continue
                kind = self._resource_kind(node)
                if kind is None:
                    continue
                if self._managed(src, mod, qualname, scope, node):
                    continue
                yield self.violation(
                    src,
                    node,
                    f"{kind} acquired in {qualname} has no structural "
                    "cleanup path (use with, try/finally, or "
                    "weakref.finalize)",
                )

    def _in_function(self, node: ast.AST, mod: ProjectModule) -> bool:
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return True
            current = getattr(current, "parent", None)
        return False

    def _resource_kind(self, node: ast.Call) -> str | None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        if dotted == "open":
            return "file handle"
        return _RESOURCE_LEAVES.get(dotted.split(".")[-1])

    def _managed(
        self,
        src: SourceFile,
        mod: ProjectModule,
        qualname: str,
        scope: ast.AST,
        node: ast.Call,
    ) -> bool:
        parent = getattr(node, "parent", None)
        # with SharedMemory(...) as x / with open(...) ...
        current: ast.AST | None = node
        while current is not None and current is not scope:
            if isinstance(current, ast.withitem):
                return True
            current = getattr(current, "parent", None)
        # weakref.finalize(obj, cleanup, open(...)) / closing(open(...))
        if isinstance(parent, ast.Call):
            wrapper = dotted_name(parent.func)
            if wrapper is not None and wrapper.split(".")[-1] in _WRAPPER_LEAVES:
                return True
        # return np.memmap(...) — ownership transfers to the caller.
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if self._journal_exempt(src, qualname, scope, node):
            return True
        binding = self._binding(node)
        if binding is None:
            return False
        if isinstance(binding, ast.Name):
            return self._name_managed(binding.id, scope)
        if isinstance(binding, ast.Attribute):
            dotted = dotted_name(binding)
            if dotted is None:
                return False
            return self._attr_managed(dotted, qualname, scope, mod)
        return False

    def _journal_exempt(
        self,
        src: SourceFile,
        qualname: str,
        scope: ast.AST,
        node: ast.Call,
    ) -> bool:
        if not src.path_endswith(_JOURNAL_PATH):
            return False
        dotted = dotted_name(node.func)
        if dotted is None or dotted.split(".")[-1] != "SharedMemory":
            return False
        func_name = qualname.split(".")[-1]
        if func_name.startswith(("_journal", "_sweep")):
            return True
        for inner in ast.walk(scope):
            if isinstance(inner, ast.Call):
                inner_dotted = dotted_name(inner.func)
                if inner_dotted is not None and inner_dotted.split(".")[
                    -1
                ].startswith("_journal"):
                    return True
        return False

    def _binding(self, node: ast.Call) -> ast.expr | None:
        """The assignment target receiving the resource, if any."""
        current: ast.AST = node
        parent = getattr(node, "parent", None)
        while isinstance(parent, (ast.Tuple, ast.List)):
            current = parent
            parent = getattr(parent, "parent", None)
        if isinstance(parent, ast.Assign) and parent.value is current:
            if len(parent.targets) == 1:
                return parent.targets[0]
            return None
        if isinstance(parent, ast.AnnAssign) and parent.value is current:
            return parent.target
        return None

    def _name_managed(self, name: str, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            # Escapes: returned/yielded, closed over, stored on an
            # object, or passed whole to another function.
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _references(node.value, name):
                    return True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not scope and _references(node, name):
                    return True
            elif isinstance(node, ast.Lambda) and _references(node.body, name):
                return True
            elif isinstance(node, ast.withitem) and _references(
                node.context_expr, name
            ):
                return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    for target in node.targets
                ) and _references(node.value, name):
                    return True
            elif isinstance(node, ast.Try):
                if node.finalbody and _cleans_up(node.finalbody, name):
                    return True
                handler_cleans = any(
                    _cleans_up(handler.body, name)
                    for handler in node.handlers
                )
                handler_raises = any(
                    isinstance(inner, ast.Raise)
                    for handler in node.handlers
                    for inner in ast.walk(handler)
                )
                if handler_cleans and handler_raises:
                    return True
            elif isinstance(node, ast.Call):
                wrapper = dotted_name(node.func)
                if (
                    wrapper is not None
                    and wrapper.split(".")[-1] in _WRAPPER_LEAVES
                    and any(_references(arg, name) for arg in node.args)
                ):
                    return True
                if any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in node.args
                ):
                    return True
        return False

    def _attr_managed(
        self,
        dotted: str,
        qualname: str,
        scope: ast.AST,
        mod: ProjectModule,
    ) -> bool:
        attr = dotted.split(".")[-1]
        for node in ast.walk(scope):
            if isinstance(node, ast.Call):
                wrapper = dotted_name(node.func)
                if wrapper is not None and wrapper.split(".")[-1] in _WRAPPER_LEAVES:
                    if any(
                        dotted_name(arg) == dotted for arg in node.args
                    ):
                        return True
            elif isinstance(node, ast.Try) and node.finalbody:
                if _cleans_up_attr(node.finalbody, dotted):
                    return True
        if "." not in qualname:
            return False
        cls_name = qualname.split(".")[0]
        info = mod.classes.get(cls_name)
        if info is None:
            return False
        for method_name in _CLASS_CLEANUP_METHODS:
            method = info.methods.get(method_name)
            if method is None:
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Attribute) and node.attr == attr:
                    return True
        return False


def _references(node: ast.AST, name: str) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and inner.id == name:
            return True
    return False


def _cleans_up(body: list[ast.stmt], name: str) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if (
                dotted is not None
                and dotted.startswith(name + ".")
                and dotted.split(".")[-1] in _CLEANUP_METHODS
            ):
                return True
            if any(
                isinstance(arg, ast.Name) and arg.id == name
                for arg in node.args
            ):
                return True
    return False


def _cleans_up_attr(body: list[ast.stmt], dotted: str) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if (
                func is not None
                and func.startswith(dotted + ".")
                and func.split(".")[-1] in _CLEANUP_METHODS
            ):
                return True
            if any(dotted_name(arg) == dotted for arg in node.args):
                return True
    return False
