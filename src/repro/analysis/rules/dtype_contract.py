"""RR002 — id arrays are int64, fingerprints are uint64.

The backend boundary contract (:meth:`IndexBackend.bucket` and the
persistence payloads): point-id arrays crossing it are **int64** and
fingerprint arrays are **uint64**.  The PR 4 ``bucket()`` bug — int32-
narrowed ids leaking out of :class:`PackedBackend` — is exactly the class
this rule catches: an ``astype``/array-creation that narrows an id-like
array, or gives a fingerprint-like array a signed/narrow dtype, anywhere
except the one sanctioned site (:meth:`PackedBackend.build` in
``index/backends.py``, which narrows ids *internally* and widens them
back at ``bucket()``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["DtypeContractRule"]

_ID_NAME = re.compile(r"(^|_)ids?($|_)")
_FP_NAME = re.compile(r"(^|_)(fps?|fingerprints?)($|_)")

_NARROW_INT = frozenset(
    {"int8", "int16", "int32", "uint8", "uint16", "uint32"}
)
_SIGNED_OR_NARROW = _NARROW_INT | {"int64", "int_", "intp", "int"}

_CREATION_FUNCS = frozenset(
    {"array", "asarray", "empty", "zeros", "ones", "full", "arange"}
)

# The one sanctioned narrowing site: PackedBackend.build may store ids
# narrowed (it widens at the bucket() boundary).
_SANCTIONED = ("repro/index/backends.py", "build")


def _dtype_leaf(node: ast.expr) -> str | None:
    """Terminal dtype name of a literal dtype expression (``np.int32`` →
    ``"int32"``, ``"int32"`` → ``"int32"``); ``None`` when dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    dotted = dotted_name(node)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1]
    return None


def _context_names(node: ast.Call) -> set[str]:
    """Identifiers that tell us *what* is being cast: names inside the
    call's receiver/arguments plus the assignment targets of the
    statement the call sits in."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    parent = getattr(node, "parent", None)
    while parent is not None and not isinstance(parent, ast.stmt):
        parent = getattr(parent, "parent", None)
    if isinstance(parent, ast.Assign):
        for target in parent.targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    names.add(sub.attr)
    elif isinstance(parent, ast.AnnAssign) and isinstance(
        parent.target, ast.Name
    ):
        names.add(parent.target.id)
    return names


class DtypeContractRule(Rule):
    """Flag dtype narrowing of id arrays / mistyping of fingerprints."""

    rule_id = "RR002"
    name = "dtype-contract"
    rationale = (
        "id arrays crossing the backend boundary are int64 and "
        "fingerprints uint64; narrowing outside PackedBackend.build "
        "reintroduces the PR 4 bucket() dtype bug"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Find statically-narrowing casts of id/fingerprint arrays."""
        sanctioned_file = src.path_endswith(_SANCTIONED[0])
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dtype_expr = self._dtype_argument(node)
            if dtype_expr is None:
                continue
            leaf = _dtype_leaf(dtype_expr)
            if leaf is None:
                continue  # dynamic dtype: not statically checkable
            if sanctioned_file and (
                src.enclosing_function(node.lineno) == _SANCTIONED[1]
            ):
                continue
            names = _context_names(node)
            id_like = any(_ID_NAME.search(n) for n in names)
            fp_like = any(_FP_NAME.search(n) for n in names)
            if id_like and leaf in _NARROW_INT:
                yield self.violation(
                    src,
                    node,
                    f"id array narrowed to {leaf}: ids crossing the "
                    "backend boundary must be int64 (only "
                    "PackedBackend.build may narrow, and it widens back "
                    "at bucket())",
                )
            elif fp_like and leaf in _SIGNED_OR_NARROW:
                yield self.violation(
                    src,
                    node,
                    f"fingerprint array typed {leaf}: fingerprints are "
                    "uint64 (splitmix64 output; signed/narrow dtypes "
                    "corrupt ordering and searchsorted probes)",
                )

    def _dtype_argument(self, node: ast.Call) -> ast.expr | None:
        """The dtype expression of an ``astype`` call or an array-creation
        call with a ``dtype=`` keyword; ``None`` otherwise."""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            return node.args[0]
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.rsplit(".", 1)[-1] in _CREATION_FUNCS:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    return kw.value
        return None
