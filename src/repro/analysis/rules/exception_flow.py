"""RR009: public functions must document the project exceptions they raise.

The raise-set of every public function is inferred through the call
graph (to a fixpoint, filtered by enclosing ``try/except`` handlers)
and compared against its docstring.  Only exception classes *defined in
this project* (``PoolRecoveryError``, ``IndexIntegrityError``, ...)
are enforced — builtins like ``ValueError`` are conventional enough
that requiring them everywhere would bury the signal — and classes
defined in fault-injection modules (``repro.serving.faults``) are
exempt: they only exist under injected faults, never in production
flow.

The inverse is checked too: a project exception listed in a formal
``Raises:`` docstring section that the call graph cannot reach is
flagged as stale documentation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation
from repro.analysis.project import Project, ProjectModule, project_context

__all__ = ["ExceptionFlowRule"]

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_SECTION_HEADERS = {
    "args",
    "arguments",
    "parameters",
    "returns",
    "yields",
    "raises",
    "notes",
    "examples",
    "attributes",
    "warns",
    "see also",
    "references",
}


class ExceptionFlowRule(Rule):
    """Diff inferred raise-sets against public docstrings."""

    rule_id = "RR009"
    name = "exception-flow"
    rationale = (
        "the raise-set of every public function, inferred through the "
        "call graph, must appear in its docstring; documented-but-"
        "unreachable project exceptions are stale"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Flag undocumented escapees and stale Raises entries."""
        project, mod = project_context(self, src)
        known = _project_exception_names(project)
        for qualname, node in _public_functions(mod):
            doc = ast.get_docstring(node)
            if not doc:
                continue  # RR004 already owns missing-docstring
            inferred = {
                name
                for exc_module, name in project.raise_set(mod.name, qualname)
                if exc_module in project.modules
                and not exc_module.endswith(".faults")
                and project.is_exception_class((exc_module, name))
            }
            for name in sorted(inferred):
                if re.search(rf"\b{re.escape(name)}\b", doc):
                    continue
                yield self.violation(
                    src,
                    node,
                    f"public function {qualname} may raise {name} "
                    "(inferred through the call graph) but its docstring "
                    "does not mention it",
                )
            documented = {
                word
                for word in _WORD_RE.findall(_raises_section(doc))
                if word in known
            }
            for name in sorted(documented - inferred):
                yield self.violation(
                    src,
                    node,
                    f"docstring of {qualname} documents {name} under "
                    "Raises but the call graph cannot reach it",
                )


def _public_functions(
    mod: ProjectModule,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for name, node in mod.functions.items():
        if not name.startswith("_"):
            yield name, node
    for cls_name, info in mod.classes.items():
        if cls_name.startswith("_"):
            continue
        for method_name, method in info.methods.items():
            if method_name.startswith("_"):
                continue
            yield f"{cls_name}.{method_name}", method


def _project_exception_names(project: Project) -> frozenset[str]:
    names: set[str] = set()
    for module_name, mod in project.modules.items():
        for cls_name in mod.classes:
            if project.is_exception_class((module_name, cls_name)):
                names.add(cls_name)
    return frozenset(names)


def _raises_section(doc: str) -> str:
    out: list[str] = []
    active = False
    for line in doc.splitlines():
        stripped = line.strip()
        header = stripped.rstrip(":").lower()
        if header == "raises":
            active = True
            continue
        if active:
            if header in _SECTION_HEADERS:
                active = False
                continue
            if stripped and set(stripped) <= {"-", "="}:
                continue  # numpy-style underline
            out.append(line)
    return "\n".join(out)
