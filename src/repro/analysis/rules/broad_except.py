"""RR007 — broad-exception discipline.

``except Exception: pass`` (and bare ``except: pass``) silently swallows
*every* failure, including the ones it was never written for — the
canonical offender was the resource-tracker unregister in
``serving/sharded.py``, which would have eaten a real segment-handoff
bug along with the benign double-unregister it meant to ignore.  A
swallow must either name the specific exceptions it expects or do
*something* with the surprise (log, warn, count, re-raise); a silent
broad handler does neither.

The rule flags ``except Exception`` / bare ``except`` handlers whose
body is only ``pass`` (or ``...``).  Broad handlers that act on the
exception — warn once, record it, return a sentinel — are fine; so are
narrow silent handlers (``except FileNotFoundError: pass``), which
document exactly what they expect.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["BroadExceptRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare `except:`
        return True
    dotted = dotted_name(handler.type)
    return dotted is not None and dotted.rsplit(".", 1)[-1] in _BROAD


def _is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # `...` or a docstring-style constant
        return False
    return True


class BroadExceptRule(Rule):
    """Flag ``except Exception`` / bare ``except`` with a ``pass`` body."""

    rule_id = "RR007"
    name = "broad-except-discipline"
    rationale = (
        "`except Exception: pass` swallows failures it was never written "
        "for; silent handlers must name the exceptions they expect, and "
        "broad ones must act on the surprise (warn, log, re-raise)"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Find broad exception handlers that silently discard the error."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and _is_silent(node.body):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {dotted_name(node.type)}"
                )
                yield self.violation(
                    src,
                    node,
                    f"silent broad handler ({caught}: pass): narrow it to "
                    "the exceptions actually expected, or surface the "
                    "unexpected ones (warnings/logging) instead of "
                    "swallowing them",
                )
