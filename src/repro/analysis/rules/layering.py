"""RR011: the import graph must respect the package layering.

The allowed stack, lowest layer first (see
:data:`repro.analysis.project.PACKAGE_LAYERS`)::

    utils / core / spaces          (layer 0)
    families / bounds / booleancube (layer 1)
    index / data / privacy          (layer 2)
    api                             (layer 3)
    serving                         (layer 4)

A module may only *eagerly* import modules at the same or a lower
layer; lazy imports (function-scoped or behind ``TYPE_CHECKING``) are
exempt — they are how ``api`` reaches ``serving`` for ``shards=`` specs
without inverting the stack.  Eager import cycles are forbidden
outright.  ``python -m repro.analysis --graph dot|json`` dumps the
graph this rule checks.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation
from repro.analysis.project import layer_of, project_context

__all__ = ["LayeringRule"]


class LayeringRule(Rule):
    """Enforce downward-only eager imports and an acyclic import graph."""

    rule_id = "RR011"
    name = "layering"
    rationale = (
        "eager imports must flow down the utils/core/spaces -> "
        "families/bounds/booleancube -> index/data -> api -> serving "
        "stack, with no cycles; lazy imports are exempt"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Flag upward eager imports and report each import cycle once."""
        project, mod = project_context(self, src)
        importer_layer = layer_of(mod.name)
        if importer_layer is not None:
            for edge in mod.imports:
                if edge.lazy:
                    continue
                target = project.effective_target(edge)
                target_layer = layer_of(target)
                if target_layer is None or target_layer <= importer_layer:
                    continue
                yield Violation(
                    rule=self.rule_id,
                    path=src.path,
                    line=edge.line,
                    col=0,
                    message=(
                        f"{mod.name} (layer {importer_layer}) eagerly "
                        f"imports {target} (layer {target_layer}); only "
                        "same-or-lower layers may be imported eagerly"
                    ),
                )
        for cycle in project.import_cycles():
            if mod.name != cycle[0]:
                continue
            yield Violation(
                rule=self.rule_id,
                path=src.path,
                line=1,
                col=0,
                message=(
                    "eager import cycle among modules: " + ", ".join(cycle)
                ),
            )
