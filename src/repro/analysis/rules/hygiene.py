"""RR005 — no ``assert`` statements, no mutable default arguments.

``assert`` vanishes under ``python -O``, so an invariant guarded by one
is an invariant that silently stops being checked in optimized
deployments — the ``assert cpf is not None`` in ``families/valiant.py``
was the canonical offender.  Guards must raise real exceptions.

Mutable defaults (``def f(xs=[])``) are evaluated once at definition
time and shared across calls; with index specs and stats dicts flowing
through the API this is a state-leak bug waiting to happen.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["HygieneRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
            return True
    return False


class HygieneRule(Rule):
    """Flag ``assert`` statements and mutable default arguments."""

    rule_id = "RR005"
    name = "no-assert-no-mutable-default"
    rationale = (
        "asserts vanish under `python -O` so runtime invariants must "
        "raise real exceptions; mutable defaults are shared across calls"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Find assert statements and mutable default arguments."""
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    src,
                    node,
                    "assert statement: stripped under `python -O`, so the "
                    "invariant silently stops being checked — raise "
                    "ValueError/RuntimeError instead",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_literal(default):
                        yield self.violation(
                            src,
                            default,
                            f"mutable default argument in `{node.name}`: "
                            "evaluated once and shared across calls — "
                            "default to None and construct inside",
                        )
