"""RR006 — budget clipping goes through ``clip_batch_hits``, never slices.

The exactness argument of sharded serving (PR 4) hinges on *table-
granularity* clipping: a shard may drop only the hits the merged
Theorem 6.1 budget scan could never reach, and it must record the
pre-clip ``full_table_counts`` so the merge recomputes exact stats.
:func:`repro.index.backends.clip_batch_hits` implements exactly that.
Slicing a :class:`BatchHits` stream directly (``block.hits[:budget]``)
cuts mid-table, loses the pre-clip counts, and silently breaks the
bit-identical-to-unsharded guarantee — so any slice of a ``.hits``
attribute outside ``clip_batch_hits`` itself (or the per-query
``BatchHits.segment`` accessor) is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation

__all__ = ["ClipDisciplineRule"]

# Functions allowed to slice a hit stream: the clipping device itself and
# the per-query segment accessor (which partitions, never truncates).
_EXEMPT_FUNCTIONS = frozenset({"clip_batch_hits", "segment"})


class ClipDisciplineRule(Rule):
    """Flag direct slicing of ``BatchHits.hits`` streams."""

    rule_id = "RR006"
    name = "clip-discipline"
    rationale = (
        "pool/merge code must reduce hit streams via clip_batch_hits "
        "(table-granularity, pre-clip counts preserved); slicing "
        ".hits directly breaks the exact-merge guarantee"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Find Slice subscripts over `.hits` attributes."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Subscript):
                continue
            if not isinstance(node.slice, ast.Slice):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Attribute) and value.attr == "hits"
            ):
                continue
            if src.enclosing_function(node.lineno) in _EXEMPT_FUNCTIONS:
                continue
            yield self.violation(
                src,
                node,
                "direct slice of a BatchHits `.hits` stream: budget "
                "reduction must go through clip_batch_hits so the clip "
                "stays table-granular and full_table_counts survive for "
                "the exact merge",
            )
