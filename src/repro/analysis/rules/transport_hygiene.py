"""RR003 — pickle and process-transport imports stay in the serving layer.

The serving contract since PR 3/4: **no table data over pickle**.  Worker
processes mmap shard files and return hits through shared memory; only
descriptors cross the pipe.  The moment ``pickle`` / ``multiprocessing``
/ ``shared_memory`` shows up outside :mod:`repro.serving` or
:mod:`repro.index.persistence`, someone is about to serialize arrays the
slow (and dtype-lossy) way.  ``concurrent.futures`` thread pools are
deliberately *not* banned: threads share an address space, so no
serialization is involved.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation

__all__ = ["TransportHygieneRule"]

_BANNED_ROOTS = frozenset({"pickle", "cPickle", "_pickle", "multiprocessing"})

# Paths where transport machinery legitimately lives.  The analysis
# AST cache pickles parsed trees (tool metadata, never table data), so
# analysis/project.py is sanctioned too.
_ALLOWED_FRAGMENT = "/serving/"
_ALLOWED_SUFFIXES = ("index/persistence.py", "analysis/project.py")


class TransportHygieneRule(Rule):
    """Confine pickle/multiprocessing imports to the serving layer."""

    rule_id = "RR003"
    name = "transport-hygiene"
    rationale = (
        "table data must never travel over pickle; transport imports are "
        "confined to repro/serving/ and index/persistence.py where the "
        "shared-memory/mmap discipline is enforced"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Find transport imports outside the serving layer."""
        if src.path_contains(_ALLOWED_FRAGMENT) or src.path_endswith(
            *_ALLOWED_SUFFIXES
        ):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_ROOTS:
                        yield self._flag(src, node, alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in _BANNED_ROOTS:
                    yield self._flag(src, node, node.module)
                elif any(
                    alias.name == "shared_memory" for alias in node.names
                ):
                    yield self._flag(
                        src, node, f"{node.module}.shared_memory"
                    )

    def _flag(
        self, src: SourceFile, node: ast.AST, module: str
    ) -> Violation:
        return self.violation(
            src,
            node,
            f"transport import `{module}` outside the serving layer: "
            "pickle/process transport is confined to repro/serving/ and "
            "index/persistence.py (no table data over pickle)",
        )
