"""RR004 — the public API surface is declared, annotated, and documented.

Three checks per module:

* every name listed in ``__all__`` is actually defined (catches the
  rename-without-updating-``__all__`` drift that silently breaks
  ``from repro.x import *`` and API docs);
* every *public* module-level function/class is exported in ``__all__``
  when the module declares one (the reverse drift: a new public name
  that never becomes importable surface);
* every public function and method carries complete annotations and a
  docstring — the enforcement half of the strict-``mypy`` gate, so
  annotation coverage cannot regress below 100% once reached.

Dunder methods are exempt from the docstring requirement (their contract
is the data model), but not from annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["ApiSurfaceRule"]


def _declared_all(tree: ast.Module) -> tuple[list[str], bool]:
    """Names assigned to ``__all__`` at module level, and whether the
    module declares one at all."""
    names: list[str] = []
    declared = False
    for node in tree.body:
        values: list[ast.expr] = []
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            declared = True
            values.append(node.value)
        elif (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            declared = True
            values.append(node.value)
        for value in values:
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.append(element.value)
    return names, declared


def _bound_names(statements: list[ast.stmt]) -> set[str]:
    """All names a statement list binds in module scope, descending into
    ``if``/``try``/``with``/loop bodies (still module scope)."""
    bound: set[str] = set()
    for node in statements:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            bound |= _bound_names(node.body)
            bound |= _bound_names(getattr(node, "orelse", []))
            for handler in getattr(node, "handlers", []):
                bound |= _bound_names(handler.body)
            bound |= _bound_names(getattr(node, "finalbody", []))
        elif isinstance(node, (ast.For, ast.While, ast.With)):
            bound |= _bound_names(node.body)
    return bound


def _decorator_leaves(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    leaves: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted is not None:
            leaves.add(dotted.rsplit(".", 1)[-1])
    return leaves


class ApiSurfaceRule(Rule):
    """Hold ``__all__``, annotations, and docstrings to the public API."""

    rule_id = "RR004"
    name = "api-surface"
    rationale = (
        "__all__ must match the defined public names, and public "
        "functions need full annotations + docstrings — the lint half of "
        "the strict-mypy gate"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Run the __all__-consistency and annotation/docstring checks."""
        exported, declared = _declared_all(src.tree)
        if declared:
            bound = _bound_names(src.tree.body)
            for name in exported:
                if name not in bound:
                    yield self.violation(
                        src,
                        src.tree.body[0] if src.tree.body else src.tree,
                        f"__all__ lists `{name}` which is not defined in "
                        "the module",
                    )
            exported_set = set(exported)
            for node in src.tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    if not node.name.startswith("_") and (
                        node.name not in exported_set
                    ):
                        kind = (
                            "class"
                            if isinstance(node, ast.ClassDef)
                            else "function"
                        )
                        yield self.violation(
                            src,
                            node,
                            f"public {kind} `{node.name}` is not exported "
                            "in __all__ (export it or underscore-prefix "
                            "it)",
                        )
        yield from self._check_defs(src, src.tree.body, in_class=False)

    def _check_defs(
        self, src: SourceFile, statements: list[ast.stmt], in_class: bool
    ) -> Iterator[Violation]:
        for node in statements:
            if isinstance(node, ast.ClassDef):
                yield from self._check_defs(src, node.body, in_class=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(src, node, in_class)
            elif isinstance(node, (ast.If, ast.Try)):
                yield from self._check_defs(src, node.body, in_class)

    def _check_function(
        self,
        src: SourceFile,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        in_class: bool,
    ) -> Iterator[Violation]:
        name = node.name
        dunder = name.startswith("__") and name.endswith("__")
        if name.startswith("_") and not dunder:
            return
        decorators = _decorator_leaves(node)
        if "overload" in decorators:
            return
        label = "method" if in_class else "function"
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if in_class and positional and "staticmethod" not in decorators:
            positional = positional[1:]  # self / cls
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                yield self.violation(
                    src,
                    arg,
                    f"public {label} `{name}`: parameter `{arg.arg}` "
                    "missing annotation",
                )
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                yield self.violation(
                    src,
                    star,
                    f"public {label} `{name}`: parameter `{star.arg}` "
                    "missing annotation",
                )
        if node.returns is None:
            yield self.violation(
                src,
                node,
                f"public {label} `{name}` missing return annotation",
            )
        if (
            not dunder
            and "setter" not in decorators
            and "deleter" not in decorators
            and ast.get_docstring(node) is None
        ):
            yield self.violation(
                src,
                node,
                f"public {label} `{name}` missing docstring",
            )
