"""RR010: everything crossing the process-pool boundary must pickle.

A callable handed to ``ProcessPoolExecutor.submit``/``map`` travels to
the worker over a pipe, and whatever it raises travels back — so the
target must be a module-top-level function (lambdas, nested functions,
and bound methods are not picklable by reference), no argument may be a
lambda, and every exception class reachable from worker code must be
module-top-level too (the ``IndexIntegrityError`` lesson: a non-trivial
``__init__`` signature broke unpickling across the executor pipe until
``__reduce__`` was fixed; the runtime pickle round-trip self-check
lives in the test suite).  Thread-pool submissions are exempt — they
never cross a pickle boundary.

The rule also confines the fault-injection hooks: ``repro.serving.faults``
may only be imported from within ``serving/`` so injection surface
cannot leak into library code.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation
from repro.analysis.project import Project, Submission, project_context

__all__ = ["ProcessBoundaryRule"]

_FAULTS_MODULE = "repro.serving.faults"


class ProcessBoundaryRule(Rule):
    """Enforce pickle-safety of pool submissions and faults confinement."""

    rule_id = "RR010"
    name = "process-boundary"
    rationale = (
        "pool-submitted callables, their arguments, and every exception "
        "reachable from worker code must be module-top-level and "
        "pickle-safe; repro.serving.faults stays inside serving/"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Flag unpicklable pool submissions and faults-hook leakage."""
        project, mod = project_context(self, src)
        for edge in mod.imports:
            target = project.effective_target(edge)
            is_faults = (
                target == _FAULTS_MODULE
                or target.startswith(_FAULTS_MODULE + ".")
                or (edge.target == "repro.serving" and edge.symbol == "faults")
            )
            if is_faults and not mod.name.startswith("repro.serving"):
                yield Violation(
                    rule=self.rule_id,
                    path=src.path,
                    line=edge.line,
                    col=0,
                    message=(
                        "repro.serving.faults imported outside serving/: "
                        "fault-injection hooks must not leak into library "
                        "code"
                    ),
                )
        for sub in project.submissions(mod.name):
            if sub.pool_kind != "process":
                continue
            where = f"in {sub.function}" if sub.function != "<module>" else ""
            if sub.target_kind == "lambda":
                yield self.violation(
                    src,
                    sub.node,
                    f"lambda submitted to process pool {where}: lambdas "
                    "are not picklable; use a module-top-level function",
                )
            elif sub.target_kind == "unresolved":
                yield self.violation(
                    src,
                    sub.node,
                    f"process-pool submission {where} has a target the "
                    "resolver cannot prove is a module-top-level function "
                    "(nested functions and bound callables do not pickle)",
                )
            else:
                yield from self._check_resolved(src, project, sub)
            if sub.has_lambda_arg:
                yield self.violation(
                    src,
                    sub.node,
                    f"lambda argument in process-pool submission {where}: "
                    "arguments must be picklable",
                )

    def _check_resolved(
        self,
        src: SourceFile,
        project: Project,
        sub: Submission,
    ) -> Iterator[Violation]:
        if sub.target is None:
            return
        target_module, qualname = sub.target
        if "." in qualname:
            yield self.violation(
                src,
                sub.node,
                f"method {target_module}.{qualname} submitted to process "
                "pool: submit targets must be module-top-level functions",
            )
            return
        raise_set = project.raise_set(target_module, qualname)
        for exc_module, exc_name in sorted(raise_set):
            if exc_module == "<unresolved>":
                yield self.violation(
                    src,
                    sub.node,
                    f"exception {exc_name} reachable from pool worker "
                    f"{qualname} cannot be resolved to a module-top-level "
                    "class: it may not unpickle across the executor pipe",
                )
                continue
            if exc_module not in project.modules:
                continue
            info = project.modules[exc_module].classes.get(exc_name)
            if info is None:
                yield self.violation(
                    src,
                    sub.node,
                    f"exception {exc_name} reachable from pool worker "
                    f"{qualname} is not a module-top-level class in "
                    f"{exc_module}: it may not unpickle across the "
                    "executor pipe",
                )
