"""RR001 — randomness must flow through :mod:`repro.utils.rng`.

Index persistence revives saved indexes by replaying captured
``Generator`` state (``pair_rng_state`` → ``rng_from_state``), which is
only exact when every draw in the library goes through generators that
:func:`repro.utils.rng.ensure_rng` / :func:`~repro.utils.rng.spawn_rngs`
handed out.  Legacy ``np.random.*`` module-state calls draw from hidden
global state that no snapshot captures, and ad-hoc ``default_rng()``
construction bypasses the one place allowed to mint generators.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceFile, Violation, dotted_name

__all__ = ["RngDisciplineRule"]

# numpy.random module-state API (and the legacy RandomState class): all of
# it draws from process-global state that rng_state() snapshots never see.
_LEGACY = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "RandomState",
    }
)

# The one module allowed to construct generators directly.
_SANCTIONED_SUFFIX = "repro/utils/rng.py"


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module paths they import."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _resolve(call_path: str, aliases: dict[str, str]) -> str:
    """Expand the leading segment of a dotted call path via the import
    alias table (``np.random.rand`` → ``numpy.random.rand``)."""
    head, _, rest = call_path.partition(".")
    base = aliases.get(head, head)
    return f"{base}.{rest}" if rest else base


class RngDisciplineRule(Rule):
    """Flag legacy ``np.random`` module state and ad-hoc ``default_rng``."""

    rule_id = "RR001"
    name = "rng-discipline"
    rationale = (
        "randomness must flow through utils/rng.py so captured RNG state "
        "revives identical hash pairs; module-state np.random.* and ad-hoc "
        "default_rng() escape the snapshot"
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Find legacy module-state and ad-hoc generator calls."""
        aliases = _import_aliases(src.tree)
        sanctioned = src.path_endswith(_SANCTIONED_SUFFIX)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None:
                continue
            resolved = _resolve(raw, aliases)
            if not resolved.startswith("numpy.random."):
                continue
            leaf = resolved.rsplit(".", 1)[1]
            if leaf in _LEGACY:
                yield self.violation(
                    src,
                    node,
                    f"legacy module-state call `{raw}(...)`: draws from "
                    "hidden global state that rng_state() snapshots never "
                    "capture; take an explicit Generator from "
                    "repro.utils.rng.ensure_rng / spawn_rngs",
                )
            elif leaf == "default_rng" and not sanctioned:
                yield self.violation(
                    src,
                    node,
                    f"ad-hoc `{raw}(...)`: generators must be minted by "
                    "repro.utils.rng (ensure_rng / spawn_rngs) so every "
                    "stream is revivable from captured state",
                )
