"""Rule registry for the repo-specific invariant linter.

One module per rule; :data:`ALL_RULES` is the canonical ordered registry
the CLI and tests consume.  Rule ids are stable — they appear in
``# noqa`` comments and committed baselines — so a retired rule's id is
never reused.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.api_surface import ApiSurfaceRule
from repro.analysis.rules.broad_except import BroadExceptRule
from repro.analysis.rules.clip_discipline import ClipDisciplineRule
from repro.analysis.rules.dtype_contract import DtypeContractRule
from repro.analysis.rules.exception_flow import ExceptionFlowRule
from repro.analysis.rules.hygiene import HygieneRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.process_boundary import ProcessBoundaryRule
from repro.analysis.rules.resource_lifecycle import ResourceLifecycleRule
from repro.analysis.rules.rng_discipline import RngDisciplineRule
from repro.analysis.rules.transport_hygiene import TransportHygieneRule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "ApiSurfaceRule",
    "BroadExceptRule",
    "ClipDisciplineRule",
    "DtypeContractRule",
    "ExceptionFlowRule",
    "HygieneRule",
    "LayeringRule",
    "ProcessBoundaryRule",
    "ResourceLifecycleRule",
    "RngDisciplineRule",
    "TransportHygieneRule",
]

ALL_RULES: tuple[Rule, ...] = (
    RngDisciplineRule(),
    DtypeContractRule(),
    TransportHygieneRule(),
    ApiSurfaceRule(),
    HygieneRule(),
    ClipDisciplineRule(),
    BroadExceptRule(),
    ResourceLifecycleRule(),
    ExceptionFlowRule(),
    ProcessBoundaryRule(),
    LayeringRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}
