"""Committed JSON baseline for the invariant linter.

A baseline is the set of *known, temporarily tolerated* violations: the
CLI fails only on violations **not** in the baseline, so the gate can be
adopted on a dirty tree and ratcheted down.  This repo commits an empty
baseline (``analysis_baseline.json``) and the self-check test holds it
empty-or-shrinking — new violations can never ride in on the back of old
ones.

Matching is line-insensitive (``(rule, path, message)`` multisets) so
unrelated edits that shift code do not invalidate the file.  Baseline
entries that no longer match anything are reported as *stale* — the
signal to shrink the file.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter

from repro.analysis.engine import Violation

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_VERSION = 1


class Baseline:
    """A multiset of tolerated violation identities."""

    def __init__(self, entries: list[dict[str, object]]) -> None:
        self.entries = entries
        self._counts: Counter[tuple[str, str, str]] = Counter(
            (str(e["rule"]), str(e["path"]), str(e["message"]))
            for e in entries
        )

    def __len__(self) -> int:
        return len(self.entries)

    def partition(
        self, violations: list[Violation]
    ) -> tuple[list[Violation], list[Violation], int]:
        """Split ``violations`` into ``(new, baselined)`` plus the count
        of stale baseline entries that matched nothing this run."""
        remaining = Counter(self._counts)
        new: list[Violation] = []
        baselined: list[Violation] = []
        for violation in violations:
            key = violation.identity()
            if remaining[key] > 0:
                remaining[key] -= 1
                baselined.append(violation)
            else:
                new.append(violation)
        stale = sum(remaining.values())
        return new, baselined, stale


def load_baseline(path: str | pathlib.Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    file = pathlib.Path(path)
    if not file.exists():
        return Baseline([])
    payload = json.loads(file.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != _VERSION:
        raise ValueError(
            f"{file}: unsupported baseline version {version!r} "
            f"(expected {_VERSION})"
        )
    entries = payload.get("violations", [])
    if not isinstance(entries, list):
        raise ValueError(f"{file}: 'violations' must be a list")
    return Baseline(entries)


def write_baseline(
    path: str | pathlib.Path, violations: list[Violation]
) -> None:
    """Serialize ``violations`` as a fresh baseline file."""
    payload = {
        "version": _VERSION,
        "violations": [v.to_dict() for v in violations],
    }
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
