"""Command-line front-end: ``python -m repro.analysis [paths...]``.

Exit status is 0 when every violation is covered by the baseline (for
this repo: when there are none — the committed baseline is empty) and 1
otherwise, so the command slots directly into CI.  ``--format json``
emits a machine-readable report (uploaded as a CI artifact);
``--write-baseline`` snapshots the current violations to adopt the gate
on a dirty tree; ``--graph dot|json`` dumps the import graph instead of
linting; ``--cache-dir`` enables the on-disk AST cache so warm runs
skip re-parsing unchanged files.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import Violation
from repro.analysis.project import AstCache, Project, run_project
from repro.analysis.rules import ALL_RULES, RULES_BY_ID

__all__ = ["main", "build_parser"]

_DEFAULT_BASELINE = "analysis_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.analysis`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Repo-specific invariant linter: whole-program rules "
            "RR001-RR011 enforcing the RNG, dtype, transport, "
            "API-surface, hygiene, clip-discipline, broad-except, "
            "resource-lifecycle, exception-flow, process-boundary, and "
            "layering contracts of this codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        default=_DEFAULT_BASELINE,
        help=(
            "JSON baseline of tolerated violations "
            f"(default: {_DEFAULT_BASELINE}; a missing file is an empty "
            "baseline)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current violations into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (id, name, rationale) and exit",
    )
    parser.add_argument(
        "--graph",
        choices=("dot", "json"),
        default=None,
        help=(
            "dump the import graph (dot: package-level layering diagram; "
            "json: module-level edges + cycles) instead of linting"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "directory for the on-disk AST cache keyed by "
            "(path, mtime_ns, size); unchanged files skip re-parsing"
        ),
    )
    return parser


def _print_human(
    new: list[Violation],
    baselined: list[Violation],
    stale: int,
    errors: list[str],
    n_files: int,
) -> None:
    for violation in new:
        print(violation.render())
    for message in errors:
        print(f"parse error: {message}")
    summary = (
        f"{n_files} files checked: {len(new)} new violation(s), "
        f"{len(baselined)} baselined"
    )
    if stale:
        summary += f", {stale} stale baseline entr(y/ies) — shrink the baseline"
    print(summary)


def _print_json(
    new: list[Violation],
    baselined: list[Violation],
    stale: int,
    errors: list[str],
    stats: dict[str, int],
) -> None:
    payload = {
        "version": 1,
        "files_checked": stats.get("files", 0),
        "cache": {
            "parsed": stats.get("parsed", 0),
            "hits": stats.get("cache_hits", 0),
        },
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "rationale": rule.rationale,
            }
            for rule in ALL_RULES
        ],
        "violations": [v.to_dict() for v in new],
        "baselined": [v.to_dict() for v in baselined],
        "stale_baseline_entries": stale,
        "parse_errors": errors,
    }
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    print()


def _select_rules(raw: str) -> list[str] | None:
    """Parse ``--select``; ``None`` means an unknown/empty selection."""
    wanted = [
        code.strip().upper() for code in raw.split(",") if code.strip()
    ]
    if not wanted:
        print("--select got an empty rule list", file=sys.stderr)
        return None
    unknown = [code for code in wanted if code not in RULES_BY_ID]
    if unknown:
        print(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known: {', '.join(RULES_BY_ID)}",
            file=sys.stderr,
        )
        return None
    return wanted


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name}\n    {rule.rationale}")
        return 0
    cache = AstCache(args.cache_dir) if args.cache_dir else None
    if args.graph is not None:
        try:
            project, errors = Project.load(args.paths, cache)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        for message in errors:
            print(f"parse error: {message}", file=sys.stderr)
        if args.graph == "dot":
            sys.stdout.write(project.to_dot())
        else:
            json.dump(project.to_json(), sys.stdout, indent=2, sort_keys=True)
            print()
        return 1 if errors else 0
    rules = list(ALL_RULES)
    if args.select is not None:
        wanted = _select_rules(args.select)
        if wanted is None:
            return 2
        rules = [RULES_BY_ID[code] for code in wanted]
    try:
        violations, errors, project = run_project(args.paths, rules, cache)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.baseline, violations)
        print(
            f"wrote {len(violations)} violation(s) to {args.baseline}"
        )
        return 0
    baseline = load_baseline(args.baseline)
    new, baselined, stale = baseline.partition(violations)
    if args.format == "json":
        _print_json(new, baselined, stale, errors, project.stats)
    else:
        _print_human(new, baselined, stale, errors, project.stats.get("files", 0))
    return 1 if new or errors else 0
