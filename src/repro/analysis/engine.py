"""Core machinery of the repo-specific invariant linter.

The :mod:`repro.analysis` subsystem enforces, at lint time, the
correctness invariants this codebase accumulated the hard way: captured
RNG state must be able to revive identical hash pairs, int64 id / uint64
fingerprint dtype contracts must hold across the backend boundary,
table data must never travel over pickle, and budget clipping must go
through the exactness-preserving :func:`repro.index.backends.clip_batch_hits`.
Each invariant is an AST :class:`Rule` with a stable ``RR0xx`` id; the
engine parses every file once, hands a :class:`SourceFile` to each rule,
filters ``# noqa: RR0xx`` suppressions, and diffs the surviving
violations against a committed JSON baseline (see
:mod:`repro.analysis.baseline`).

Suppression syntax follows flake8: a ``# noqa`` comment on the violation's
reported line suppresses everything on that line, ``# noqa: RR001`` (or a
comma-separated list) suppresses only the named rules.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import pathlib
import re
import tokenize
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from repro.analysis.project import Project

__all__ = [
    "Violation",
    "SourceFile",
    "Rule",
    "collect_files",
    "run_source",
    "run_files",
    "dotted_name",
]

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
    re.IGNORECASE,
)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule hit: where it happened and why it matters.

    ``line``/``col`` are 1-based/0-based as in :mod:`ast`.  Baseline
    matching deliberately ignores ``line`` (see :meth:`identity`) so that
    unrelated edits shifting code downward do not invalidate a committed
    baseline.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def identity(self) -> tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (the ``--format json`` payload)."""
        return dataclasses.asdict(self)

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: RR0xx message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceFile:
    """One parsed module plus the lookups every rule needs.

    Parsing happens once here; rules receive the shared tree.  Parent
    pointers (``node.parent``) are attached to every AST node, and
    function spans are pre-indexed so rules can ask for the innermost
    enclosing function of any line (used for per-site exemptions such as
    the sanctioned dtype-narrowing site in ``PackedBackend.build``).
    """

    def __init__(
        self, path: str, text: str, tree: ast.Module | None = None
    ) -> None:
        self.path = path.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree if tree is not None else ast.parse(text, filename=path)
        self._attach_parents()
        self._func_spans: list[tuple[int, int, str]] = []
        self._index_functions()
        self._noqa: dict[int, frozenset[str] | None] = {}
        self._scan_noqa()

    def _attach_parents(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]

    def _index_functions(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                end = node.end_lineno if node.end_lineno else node.lineno
                self._func_spans.append((node.lineno, end, node.name))
        # Innermost-first lookup: sort by span length ascending.
        self._func_spans.sort(key=lambda span: span[1] - span[0])

    def _scan_noqa(self) -> None:
        for lineno, comment in self._iter_comments():
            match = _NOQA_RE.search(comment)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self._noqa[lineno] = None  # bare noqa: suppress everything
            else:
                self._noqa[lineno] = frozenset(
                    code.strip().upper() for code in codes.split(",")
                )

    def _iter_comments(self) -> Iterator[tuple[int, str]]:
        """Yield ``(lineno, comment_text)`` for real ``#`` comments only.

        Tokenizing (rather than regexing whole lines) keeps noqa-looking
        text inside string literals from suppressing anything — a string
        containing ``"# noqa"`` is data, not a directive.
        """
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.text).readline)
            )
        except (tokenize.TokenError, IndentationError):
            # The file parsed as AST but confused the tokenizer (rare;
            # e.g. trailing backslash edge cases) — fall back to the
            # line-based scan so suppressions keep working.
            for lineno, line in enumerate(self.lines, start=1):
                yield lineno, line
            return
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string

    def enclosing_function(self, line: int) -> str | None:
        """Name of the innermost function containing ``line``, if any."""
        for start, end, name in self._func_spans:
            if start <= line <= end:
                return name
        return None

    def is_suppressed(self, violation: Violation) -> bool:
        """Whether a ``# noqa`` comment on the violation line covers it."""
        codes = self._noqa.get(violation.line, frozenset())
        if codes is None:
            return True
        return violation.rule in codes

    def path_endswith(self, *suffixes: str) -> bool:
        """Posix-path suffix test used by per-file rule exemptions."""
        return self.path.endswith(suffixes)

    def path_contains(self, fragment: str) -> bool:
        """Posix-path substring test used by per-directory exemptions."""
        return fragment in self.path


class Rule:
    """Base class for one lintable invariant.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rule_id`` is the stable ``RR0xx`` code used in output, ``# noqa``
    comments, and the baseline; ``rationale`` is the one-line "why" shown
    by ``--list-rules`` and the README.
    """

    rule_id: str = "RR000"
    name: str = "abstract"
    rationale: str = ""

    #: Whole-program context for flow-aware rules; ``None`` when linting
    #: a lone file outside :func:`repro.analysis.project.run_project`.
    _project: "Project | None" = None

    def set_project(self, project: "Project | None") -> None:
        """Attach (or detach, with ``None``) whole-program context.

        Rule instances in the registry are singletons, so the runner is
        responsible for resetting this to ``None`` after a project run.
        """
        self._project = project

    def check(self, src: SourceFile) -> Iterator[Violation]:
        """Yield every violation of this rule in ``src``."""
        raise NotImplementedError

    def violation(
        self, src: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule=self.rule_id,
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"``; ``None`` if the
    expression is not a pure name/attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories to a sorted list of ``.py`` files."""
    out: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(out)


def run_source(
    src: SourceFile, rules: Iterable[Rule]
) -> list[Violation]:
    """Run ``rules`` over one parsed file, honoring ``# noqa``."""
    found: list[Violation] = []
    for rule in rules:
        for violation in rule.check(src):
            if not src.is_suppressed(violation):
                found.append(violation)
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return found


def run_files(
    files: Sequence[pathlib.Path], rules: Sequence[Rule]
) -> tuple[list[Violation], list[str]]:
    """Lint many files; returns ``(violations, parse_errors)``.

    A file that fails to parse contributes a message to ``parse_errors``
    instead of aborting the run — the CLI reports those as failures too.
    """
    violations: list[Violation] = []
    errors: list[str] = []
    for path in files:
        try:
            src = SourceFile(str(path), path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
            continue
        violations.extend(run_source(src, rules))
    return violations, errors
