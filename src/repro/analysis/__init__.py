"""Repo-specific static analysis: the invariant linter behind
``python -m repro.analysis``.

This package turns the correctness invariants earlier PRs learned the
hard way into lint-time checks (rules ``RR001``–``RR006``): RNG
discipline for exact captured-state rebuilds, the int64-id / uint64-
fingerprint dtype contract, transport hygiene (no table data over
pickle), a declared/annotated/documented API surface, ``assert``- and
mutable-default-free library code, and exactness-preserving budget
clipping via ``clip_batch_hits``.  See :mod:`repro.analysis.engine` for
the rule framework, :mod:`repro.analysis.rules` for the registry, and
:mod:`repro.analysis.baseline` for the commit-and-ratchet baseline.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.cli import main
from repro.analysis.engine import (
    Rule,
    SourceFile,
    Violation,
    collect_files,
    run_files,
    run_source,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "Baseline",
    "RULES_BY_ID",
    "Rule",
    "SourceFile",
    "Violation",
    "collect_files",
    "load_baseline",
    "main",
    "run_files",
    "run_source",
    "write_baseline",
]
