"""Whole-program semantic model behind the flow-aware lint rules.

:class:`Project` parses every file once (through an optional on-disk
:class:`AstCache` keyed by ``(path, mtime_ns, size)``), builds a
module-level symbol table and an import graph (eager vs lazy edges), and
resolves calls through a conservative name-resolution call graph: it
follows ``from x import y as z`` aliasing and re-exports through
``__init__``, dispatches method calls on classes whose construction it
can see (including ``staticmethod``/``classmethod`` access via the class
name, ``self``/``cls``, and annotated parameters), and unwraps
``functools.partial`` and executor ``submit``/``map`` targets.  Lambdas
and calls through values it cannot type are *conservatively unresolved*
— recorded as such, never guessed.

On top of the model it offers the queries the RR008–RR011 rules and the
CLI need: per-function raise-sets propagated to a fixpoint through the
call graph (filtered by enclosing ``try/except`` handlers), executor
submissions with their resolved targets, package-layer assignments for
the layering contract, import-cycle detection, and ``dot``/``json``
graph dumps for CI artifacts.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
import hashlib
import pathlib
import pickle
from typing import Iterable, Iterator, Mapping, Sequence

from repro.analysis.engine import (
    Rule,
    SourceFile,
    Violation,
    dotted_name,
    run_source,
)

__all__ = [
    "PACKAGE_LAYERS",
    "AstCache",
    "ImportEdge",
    "ProjectModule",
    "Project",
    "Submission",
    "layer_of",
    "module_name_for_path",
    "project_context",
    "run_project",
]

#: Allowed layering of the ``repro`` package, lowest layer first.  A
#: module may only *eagerly* import same-or-lower layers; lazy
#: (function-scoped or ``TYPE_CHECKING``) imports are exempt.  The
#: ``analysis`` package and the root ``repro/__init__`` sit above the
#: stack: they may import anything.
PACKAGE_LAYERS: Mapping[str, int] = {
    "utils": 0,
    "core": 0,
    "spaces": 0,
    "families": 1,
    "bounds": 1,
    "booleancube": 1,
    "index": 2,
    "data": 2,
    "privacy": 2,
    "api": 3,
    "serving": 4,
}

_TOOL_PACKAGES = frozenset({"analysis"})


def layer_of(module: str) -> int | None:
    """Layer rank of a dotted ``repro`` module, ``None`` if unranked.

    Unranked modules (the ``analysis`` tooling package, the root
    ``repro`` package itself, and anything outside ``repro``) are exempt
    from the layering contract.
    """
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) == 1:
        return None
    if parts[1] in _TOOL_PACKAGES:
        return None
    return PACKAGE_LAYERS.get(parts[1])


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for a source path.

    Drops a trailing ``__init__`` and everything up to and including a
    ``src`` component, so ``src/repro/api.py`` maps to ``repro.api``.
    Used for in-memory sources; :meth:`Project.load` computes names from
    real package directories instead.
    """
    posix = path.replace("\\", "/")
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    parts = [part for part in posix.split("/") if part not in ("", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        cut = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[cut + 1 :]
    return ".".join(parts)


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One import statement binding, as seen by the graph.

    ``symbol`` is the imported name for ``from target import symbol``
    forms (``"*"`` for star imports) and ``None`` for plain ``import
    target`` forms.  ``lazy`` marks function-scoped or
    ``TYPE_CHECKING``-guarded imports, which the layering rule exempts.
    """

    importer: str
    target: str
    symbol: str | None
    alias: str
    line: int
    lazy: bool


@dataclasses.dataclass(eq=False)
class Submission:
    """One callable handed to an executor via ``submit``/``map``.

    ``pool_kind`` is ``"process"`` or ``"thread"`` from the inferred
    executor type; ``target_kind`` is ``"resolved"``, ``"lambda"``, or
    ``"unresolved"`` (the conservative bucket for callables the resolver
    cannot type).  ``target`` is the resolved ``(module, qualname)``
    when ``target_kind == "resolved"``.
    """

    module: str
    function: str
    node: ast.Call = dataclasses.field(repr=False)
    pool_kind: str = "process"
    target_kind: str = "unresolved"
    target: tuple[str, str] | None = None
    via_partial: bool = False
    has_lambda_arg: bool = False


@dataclasses.dataclass(frozen=True)
class _Symbol:
    kind: str  # "function" | "class" | "import" | "assign"
    edge: ImportEdge | None = None


@dataclasses.dataclass(eq=False)
class _ClassInfo:
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]
    method_kinds: dict[str, str]  # "instance" | "static" | "class"


@dataclasses.dataclass(eq=False)
class _FuncFacts:
    callees: list[tuple[tuple[str, str], frozenset[str]]]
    raises: list[tuple[tuple[str, str], frozenset[str]]]
    submissions: list[Submission]


class AstCache:
    """On-disk AST cache keyed by ``(path, mtime_ns, size)``.

    Entries are pickles of ``(key, tree)`` stored under a hash of the
    absolute path; a stale or unreadable entry is treated as a miss, so
    the cache can never produce wrong trees, only re-parses.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.hits = 0
        self.misses = 0

    def _slot(self, path: pathlib.Path) -> pathlib.Path:
        digest = hashlib.sha256(
            str(path.resolve()).encode("utf-8")
        ).hexdigest()
        return self.directory / f"{digest}.ast.pkl"

    def _key(self, path: pathlib.Path) -> tuple[str, int, int] | None:
        try:
            stat = path.stat()
        except OSError:
            return None
        return (str(path.resolve()), stat.st_mtime_ns, stat.st_size)

    def load(self, path: str | pathlib.Path) -> ast.Module | None:
        """Return the cached tree for ``path`` if still fresh, else ``None``."""
        source = pathlib.Path(path)
        key = self._key(source)
        if key is None:
            self.misses += 1
            return None
        try:
            payload = self._slot(source).read_bytes()
            stored_key, tree = pickle.loads(payload)
        except Exception:  # noqa: RR007 - any corruption is just a miss
            self.misses += 1
            return None
        if stored_key != key or not isinstance(tree, ast.Module):
            self.misses += 1
            return None
        self.hits += 1
        return tree

    def store(self, path: str | pathlib.Path, tree: ast.Module) -> None:
        """Persist ``tree`` for ``path``; failures are silently dropped."""
        source = pathlib.Path(path)
        key = self._key(source)
        if key is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._slot(source).write_bytes(
                pickle.dumps((key, tree), protocol=pickle.HIGHEST_PROTOCOL)
            )
        except OSError:
            return


class ProjectModule:
    """One parsed module: source, import edges, and symbol table."""

    def __init__(self, name: str, source: SourceFile, is_package: bool) -> None:
        self.name = name
        self.source = source
        self.is_package = is_package
        self.imports: list[ImportEdge] = []
        self.symbols: dict[str, _Symbol] = {}
        self.classes: dict[str, _ClassInfo] = {}
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self._build()

    @property
    def package_parts(self) -> tuple[str, ...]:
        """Dotted parts of the package that relative imports resolve in."""
        parts = self.name.split(".")
        return tuple(parts if self.is_package else parts[:-1])

    def _build(self) -> None:
        self._scan_body(self.tree.body, lazy=False, module_scope=True)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_body(node.body, lazy=True, module_scope=False)

    @property
    def tree(self) -> ast.Module:
        """The module's AST (shared with :class:`SourceFile`)."""
        return self.source.tree

    def _scan_body(
        self, body: Sequence[ast.stmt], lazy: bool, module_scope: bool
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                self._record_import(stmt, lazy, module_scope)
            elif isinstance(stmt, ast.ImportFrom):
                self._record_import_from(stmt, lazy, module_scope)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if module_scope:
                    self.symbols[stmt.name] = _Symbol("function")
                    self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                if module_scope:
                    self.symbols[stmt.name] = _Symbol("class")
                    self._record_class(stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                if module_scope:
                    for name in _assigned_names(stmt):
                        self.symbols.setdefault(name, _Symbol("assign"))
            elif isinstance(stmt, ast.If):
                branch_lazy = lazy or _is_type_checking_test(stmt.test)
                self._scan_body(stmt.body, branch_lazy, module_scope)
                self._scan_body(stmt.orelse, lazy, module_scope)
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._scan_body(block, lazy, module_scope)
                for handler in stmt.handlers:
                    self._scan_body(handler.body, lazy, module_scope)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan_body(stmt.body, lazy, module_scope)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._scan_body(stmt.body, lazy, module_scope)
                self._scan_body(stmt.orelse, lazy, module_scope)

    def _record_import(
        self, stmt: ast.Import, lazy: bool, module_scope: bool
    ) -> None:
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            edge = ImportEdge(
                importer=self.name,
                target=alias.name,
                symbol=None,
                alias=bound,
                line=stmt.lineno,
                lazy=lazy,
            )
            self.imports.append(edge)
            if module_scope:
                self.symbols[bound] = _Symbol("import", edge)

    def _record_import_from(
        self, stmt: ast.ImportFrom, lazy: bool, module_scope: bool
    ) -> None:
        if stmt.level:
            base = list(self.package_parts)
            if stmt.level > 1:
                base = base[: len(base) - (stmt.level - 1)]
            target_parts = base + (stmt.module.split(".") if stmt.module else [])
            target = ".".join(target_parts)
        else:
            target = stmt.module or ""
        if not target:
            return
        for alias in stmt.names:
            bound = alias.asname or alias.name
            edge = ImportEdge(
                importer=self.name,
                target=target,
                symbol=alias.name,
                alias=bound,
                line=stmt.lineno,
                lazy=lazy,
            )
            self.imports.append(edge)
            if module_scope and alias.name != "*":
                self.symbols[bound] = _Symbol("import", edge)

    def _record_class(self, stmt: ast.ClassDef) -> None:
        bases = tuple(
            dotted for dotted in (dotted_name(base) for base in stmt.bases)
            if dotted is not None
        )
        methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        kinds: dict[str, str] = {}
        for member in stmt.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods[member.name] = member
            kind = "instance"
            for decorator in member.decorator_list:
                leaf = dotted_name(decorator)
                if leaf == "staticmethod":
                    kind = "static"
                elif leaf == "classmethod":
                    kind = "class"
            kinds[member.name] = kind
        self.classes[stmt.name] = _ClassInfo(
            name=stmt.name,
            node=stmt,
            bases=bases,
            methods=methods,
            method_kinds=kinds,
        )


def _assigned_names(stmt: ast.Assign | ast.AnnAssign) -> Iterator[str]:
    targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    yield element.id


def _is_type_checking_test(test: ast.expr) -> bool:
    dotted = dotted_name(test)
    return dotted is not None and dotted.split(".")[-1] == "TYPE_CHECKING"


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope's nodes without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _builtin_exception_ancestors(name: str) -> tuple[str, ...] | None:
    obj = getattr(builtins, name, None)
    if isinstance(obj, type) and issubclass(obj, BaseException):
        return tuple(cls.__name__ for cls in obj.__mro__[1:])
    return None


_EXECUTOR_LEAVES = {
    "ProcessPoolExecutor": "process",
    "ThreadPoolExecutor": "thread",
}


class Project:
    """Whole-program model: modules, import graph, call graph, raise-sets.

    Build one with :meth:`from_sources` (in-memory, used by tests and
    the single-file fallback) or :meth:`load` (from disk, optionally
    through an :class:`AstCache`).  All derived structures — function
    facts, raise-set fixpoint, cycles — are computed lazily and cached
    on the instance; a Project is immutable once built.
    """

    def __init__(
        self,
        modules: Mapping[str, ProjectModule],
        stats: Mapping[str, int] | None = None,
    ) -> None:
        self.modules: dict[str, ProjectModule] = dict(modules)
        self.stats: dict[str, int] = dict(stats or {})
        self.stats.setdefault("files", len(self.modules))
        self._path_index = {
            mod.source.path: name for name, mod in self.modules.items()
        }
        self._facts: dict[tuple[str, str], _FuncFacts] | None = None
        self._raise_cache: dict[tuple[str, str], frozenset[tuple[str, str]]] | None = None
        self._cycles: tuple[tuple[str, ...], ...] | None = None
        self._process_attrs: frozenset[str] | None = None
        self._thread_attrs: frozenset[str] | None = None

    # -- construction -------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        sources: Sequence[SourceFile],
        names: Sequence[str] | None = None,
    ) -> "Project":
        """Build a project from already-parsed sources.

        ``names`` supplies dotted module names aligned with ``sources``;
        when omitted they are derived with :func:`module_name_for_path`.
        """
        if names is None:
            names = [module_name_for_path(src.path) for src in sources]
        modules: dict[str, ProjectModule] = {}
        for name, src in zip(names, sources):
            is_package = src.path.endswith("__init__.py")
            modules[name] = ProjectModule(name, src, is_package)
        return cls(modules, {"files": len(modules)})

    @classmethod
    def load(
        cls,
        paths: Sequence[str | pathlib.Path],
        cache: AstCache | None = None,
    ) -> tuple["Project", list[str]]:
        """Parse files/directories from disk into a project.

        Returns ``(project, parse_errors)``.  Module names are derived
        from package directories (walking ``__init__.py`` markers above
        each argument), so both ``src`` and deeper anchors work.  When
        ``cache`` is given, unchanged files reuse their pickled trees
        and the project's ``stats`` report ``cache_hits``/``parsed``.
        """
        entries: dict[pathlib.Path, str] = {}
        for raw in paths:
            anchor = pathlib.Path(raw)
            if anchor.is_dir():
                prefix = _package_prefix(anchor)
                for file in sorted(anchor.rglob("*.py")):
                    rel = file.relative_to(anchor)
                    entries[file] = _dotted_from_parts(prefix + list(rel.parts))
            elif anchor.suffix == ".py":
                prefix = _package_prefix(anchor.parent)
                entries[anchor] = _dotted_from_parts(prefix + [anchor.name])
            else:
                raise FileNotFoundError(
                    f"not a python file or directory: {anchor}"
                )
        sources: list[SourceFile] = []
        names: list[str] = []
        errors: list[str] = []
        parsed = 0
        hits = 0
        for file, name in sorted(entries.items(), key=lambda item: str(item[0])):
            try:
                text = file.read_text(encoding="utf-8")
            except OSError as exc:
                errors.append(f"{file}: {exc}")
                continue
            tree = cache.load(file) if cache is not None else None
            if tree is None:
                try:
                    tree = ast.parse(text, filename=str(file))
                except SyntaxError as exc:
                    errors.append(f"{file}: {exc.msg} (line {exc.lineno})")
                    continue
                parsed += 1
                if cache is not None:
                    cache.store(file, tree)
            else:
                hits += 1
            sources.append(SourceFile(str(file), text, tree=tree))
            names.append(name)
        project = cls.from_sources(sources, names)
        project.stats.update(
            {"files": len(sources), "parsed": parsed, "cache_hits": hits}
        )
        return project, errors

    # -- lookups ------------------------------------------------------

    def module_for(self, path: str) -> ProjectModule | None:
        """The module whose source file is ``path`` (posix-normalized)."""
        name = self._path_index.get(path.replace("\\", "/"))
        return self.modules.get(name) if name is not None else None

    def resolve(self, module: str, dotted: str) -> tuple[str, str] | None:
        """Resolve a dotted reference in ``module`` to ``(module, qualname)``.

        Handles plain names, import aliases (including chained
        re-exports through ``__init__``), module-attribute references
        like ``np.memmap`` or ``faults.fault_point``, and
        ``ClassName.method`` access.  Returns ``None`` when the
        reference cannot be conservatively resolved.
        """
        parts = dotted.split(".")
        if len(parts) == 1:
            return self._resolve_symbol(module, parts[0], frozenset())
        alias = self._module_alias(module, parts)
        if alias is not None:
            target_module, rest = alias
            if not rest:
                return None
            if len(rest) == 1:
                if target_module in self.modules:
                    return self._resolve_symbol(
                        target_module, rest[0], frozenset()
                    )
                return (target_module, rest[0])
            resolved = self.resolve(target_module, ".".join(rest))
            if resolved is not None:
                return resolved
            base = self._resolve_symbol(target_module, rest[0], frozenset())
            if base is not None and len(rest) == 2:
                return self._class_member(base, rest[1])
            return None
        base = self._resolve_symbol(module, parts[0], frozenset())
        if base is not None and len(parts) == 2:
            return self._class_member(base, parts[1])
        return None

    def _class_member(
        self, base: tuple[str, str], member: str
    ) -> tuple[str, str] | None:
        base_module, base_name = base
        if base_module in self.modules:
            info = self.modules[base_module].classes.get(base_name)
            if info is not None:
                found = self._find_method(base_module, base_name, member)
                if found is not None:
                    return found
                return (base_module, f"{base_name}.{member}")
        return None

    def _resolve_symbol(
        self, module: str, name: str, seen: frozenset[tuple[str, str]]
    ) -> tuple[str, str] | None:
        if module not in self.modules:
            return (module, name)
        mod = self.modules[module]
        symbol = mod.symbols.get(name)
        if symbol is None:
            return None
        if symbol.kind != "import":
            return (module, name)
        edge = symbol.edge
        if edge is None or edge.symbol is None or edge.symbol == "*":
            return None
        key = (edge.target, edge.symbol)
        if key in seen:
            return None
        if edge.target in self.modules:
            target_mod = self.modules[edge.target]
            if edge.symbol in target_mod.symbols:
                return self._resolve_symbol(
                    edge.target, edge.symbol, seen | {key}
                )
            return None
        if f"{edge.target}.{edge.symbol}" in self.modules:
            return None
        return (edge.target, edge.symbol)

    def _module_alias(
        self, module: str, parts: Sequence[str]
    ) -> tuple[str, list[str]] | None:
        """If ``parts[0]`` is bound to a module, return it plus the rest."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        symbol = mod.symbols.get(parts[0])
        if symbol is None or symbol.kind != "import" or symbol.edge is None:
            return None
        edge = symbol.edge
        if edge.symbol is None:
            root = edge.target if edge.alias != edge.target.split(".")[0] else edge.target.split(".")[0]
            candidate_parts = root.split(".") + list(parts[1:])
        else:
            candidate = f"{edge.target}.{edge.symbol}"
            if candidate not in self.modules:
                return None
            candidate_parts = candidate.split(".") + list(parts[1:])
        # Longest prefix of candidate_parts that names a known module
        # wins; otherwise fall back to the shortest sensible split.
        for split in range(len(candidate_parts), 0, -1):
            head = ".".join(candidate_parts[:split])
            if head in self.modules:
                return head, list(candidate_parts[split:])
        if edge.symbol is None:
            return edge.target, list(parts[1:])
        return ".".join(candidate_parts[: len(candidate_parts) - len(parts) + 1]), list(parts[1:])

    def _find_method(
        self, module: str, cls: str, method: str
    ) -> tuple[str, str] | None:
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[str, str]] = [(module, cls)]
        while queue:
            cur_module, cur_cls = queue.pop(0)
            if (cur_module, cur_cls) in seen or cur_module not in self.modules:
                continue
            seen.add((cur_module, cur_cls))
            info = self.modules[cur_module].classes.get(cur_cls)
            if info is None:
                continue
            if method in info.methods:
                return (cur_module, f"{cur_cls}.{method}")
            for base in info.bases:
                resolved = self.resolve(cur_module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    # -- import graph -------------------------------------------------

    def effective_target(self, edge: ImportEdge) -> str:
        """The module an edge really points at (submodule-aware)."""
        if edge.symbol and edge.symbol != "*":
            candidate = f"{edge.target}.{edge.symbol}"
            if candidate in self.modules:
                return candidate
        return edge.target

    def import_edges(self, module: str | None = None) -> tuple[ImportEdge, ...]:
        """All import edges, or just those of one module."""
        if module is not None:
            mod = self.modules.get(module)
            return tuple(mod.imports) if mod is not None else ()
        out: list[ImportEdge] = []
        for mod in self.modules.values():
            out.extend(mod.imports)
        return tuple(out)

    def eager_import_graph(self) -> dict[str, frozenset[str]]:
        """Project-internal eager import adjacency (module → modules)."""
        graph: dict[str, set[str]] = {name: set() for name in self.modules}
        for mod in self.modules.values():
            for edge in mod.imports:
                if edge.lazy:
                    continue
                target = self.effective_target(edge)
                if target in self.modules and target != mod.name:
                    graph[mod.name].add(target)
        return {name: frozenset(deps) for name, deps in graph.items()}

    def import_cycles(self) -> tuple[tuple[str, ...], ...]:
        """Strongly connected components of size > 1 in the eager graph."""
        if self._cycles is None:
            graph = self.eager_import_graph()
            self._cycles = tuple(_sccs(graph))
        return self._cycles

    # -- function facts / call graph ----------------------------------

    def _ensure_facts(self) -> dict[tuple[str, str], _FuncFacts]:
        if self._facts is None:
            self._scan_pool_attrs()
            facts: dict[tuple[str, str], _FuncFacts] = {}
            for name, mod in self.modules.items():
                analyzer = _FunctionAnalyzer(self, mod)
                for qual, node in _iter_scopes(mod):
                    facts[(name, qual)] = analyzer.analyze(qual, node)
            self._facts = facts
        return self._facts

    def _scan_pool_attrs(self) -> None:
        process: set[str] = set()
        thread: set[str] = set()
        for mod in self.modules.values():
            for node in ast.walk(mod.tree):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                dotted = dotted_name(value.func)
                if dotted is None:
                    continue
                kind = _EXECUTOR_LEAVES.get(dotted.split(".")[-1])
                if kind is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        (process if kind == "process" else thread).add(
                            target.attr
                        )
        self._process_attrs = frozenset(process)
        self._thread_attrs = frozenset(thread)

    def callees(self, module: str, qualname: str) -> frozenset[tuple[str, str]]:
        """Resolved direct callees of one function or method."""
        facts = self._ensure_facts().get((module, qualname))
        if facts is None:
            return frozenset()
        return frozenset(callee for callee, _ in facts.callees)

    def reachable(self, module: str, qualname: str) -> frozenset[tuple[str, str]]:
        """Functions transitively reachable from one entry point."""
        facts = self._ensure_facts()
        seen: set[tuple[str, str]] = set()
        queue = [(module, qualname)]
        while queue:
            current = queue.pop()
            if current in seen or current not in facts:
                continue
            seen.add(current)
            for callee, _ in facts[current].callees:
                queue.append(callee)
        return frozenset(seen)

    def raise_set(
        self, module: str, qualname: str
    ) -> frozenset[tuple[str, str]]:
        """Exception classes that may escape one function.

        Propagated to a fixpoint through the call graph; exceptions
        swallowed by enclosing ``try/except`` handlers (without a bare
        re-raise) are filtered at each hop.  Classes are ``(module,
        name)`` pairs with ``("builtins", name)`` for builtins.
        """
        if self._raise_cache is None:
            facts = self._ensure_facts()
            sets: dict[tuple[str, str], set[tuple[str, str]]] = {}
            for key, fact in facts.items():
                sets[key] = {
                    exc
                    for exc, caught in fact.raises
                    if not self._swallowed(exc, caught)
                }
            changed = True
            while changed:
                changed = False
                for key, fact in facts.items():
                    bucket = sets[key]
                    before = len(bucket)
                    for callee, caught in fact.callees:
                        for exc in sets.get(callee, ()):
                            if not self._swallowed(exc, caught):
                                bucket.add(exc)
                    if len(bucket) != before:
                        changed = True
            self._raise_cache = {
                key: frozenset(bucket) for key, bucket in sets.items()
            }
        return self._raise_cache.get((module, qualname), frozenset())

    def submissions(self, module: str | None = None) -> tuple[Submission, ...]:
        """Executor submissions, project-wide or for one module."""
        facts = self._ensure_facts()
        out: list[Submission] = []
        for (mod_name, _), fact in sorted(facts.items()):
            if module is not None and mod_name != module:
                continue
            out.extend(fact.submissions)
        return tuple(out)

    # -- exception taxonomy -------------------------------------------

    def exception_ancestors(self, exc: tuple[str, str]) -> tuple[str, ...]:
        """Base-class names of an exception class, nearest first."""
        module, name = exc
        if module == "builtins":
            return _builtin_exception_ancestors(name) or ()
        out: list[str] = []
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[str, str]] = [exc]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            cur_module, cur_name = cur
            if cur != exc and cur_name not in out:
                out.append(cur_name)
            info = (
                self.modules[cur_module].classes.get(cur_name)
                if cur_module in self.modules
                else None
            )
            if info is None:
                builtin = _builtin_exception_ancestors(cur_name)
                if builtin is not None:
                    out.extend(base for base in builtin if base not in out)
                continue
            for base in info.bases:
                leaf = base.split(".")[-1]
                resolved = self.resolve(cur_module, base)
                queue.append(
                    resolved if resolved is not None else ("builtins", leaf)
                )
        return tuple(out)

    def is_exception_class(self, ref: tuple[str, str]) -> bool:
        """Whether ``(module, name)`` plausibly names an exception class."""
        module, name = ref
        if module == "builtins" or module not in self.modules:
            return _builtin_exception_ancestors(name) is not None
        info = self.modules[module].classes.get(name)
        if info is None:
            return False
        ancestors = self.exception_ancestors(ref)
        if any(
            _builtin_exception_ancestors(base) is not None
            or base in ("Exception", "BaseException")
            for base in ancestors
        ):
            return True
        return name.endswith(("Error", "Exception", "Warning"))

    def _swallowed(
        self, exc: tuple[str, str], caught: frozenset[str]
    ) -> bool:
        if not caught:
            return False
        names = {exc[1], *self.exception_ancestors(exc)}
        return bool(names & caught)

    # -- pool typing helpers (used by the analyzer) -------------------

    def _pool_attr_kind(self, attr: str) -> str | None:
        self._ensure_pool_attrs()
        if self._process_attrs is not None and attr in self._process_attrs:
            return "process"
        if self._thread_attrs is not None and attr in self._thread_attrs:
            return "thread"
        return None

    def _ensure_pool_attrs(self) -> None:
        if self._process_attrs is None:
            self._scan_pool_attrs()

    # -- graph dumps --------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """Module-level import graph payload for ``--graph json``."""
        edges = []
        for mod in sorted(self.modules.values(), key=lambda m: m.name):
            for edge in mod.imports:
                target = self.effective_target(edge)
                if target not in self.modules:
                    continue
                edges.append(
                    {
                        "importer": edge.importer,
                        "target": target,
                        "lazy": edge.lazy,
                        "line": edge.line,
                    }
                )
        return {
            "version": 1,
            "modules": sorted(self.modules),
            "packages": {
                pkg: layer for pkg, layer in sorted(PACKAGE_LAYERS.items())
            },
            "edges": edges,
            "cycles": [list(cycle) for cycle in self.import_cycles()],
            "stats": dict(self.stats),
        }

    def to_dot(self) -> str:
        """Package-level layering diagram for ``--graph dot``."""
        packages: dict[str, int | None] = {}
        pkg_edges: dict[tuple[str, str], bool] = {}
        for mod in self.modules.values():
            src_pkg = _package_of(mod.name)
            if src_pkg is None:
                continue
            packages.setdefault(src_pkg, _pkg_layer(src_pkg))
            for edge in mod.imports:
                target = self.effective_target(edge)
                if target not in self.modules:
                    continue
                dst_pkg = _package_of(target)
                if dst_pkg is None or dst_pkg == src_pkg:
                    continue
                packages.setdefault(dst_pkg, _pkg_layer(dst_pkg))
                key = (src_pkg, dst_pkg)
                # An eager edge anywhere beats lazy-only.
                pkg_edges[key] = pkg_edges.get(key, True) and edge.lazy
        lines = [
            "digraph repro_layering {",
            '  rankdir="BT";',
            "  node [shape=box];",
        ]
        for pkg in sorted(packages):
            layer = packages[pkg]
            label = pkg if layer is None else f"{pkg}\\nlayer {layer}"
            lines.append(f'  "{pkg}" [label="{label}"];')
        for (src_pkg, dst_pkg) in sorted(pkg_edges):
            style = ' [style=dashed]' if pkg_edges[(src_pkg, dst_pkg)] else ""
            lines.append(f'  "{src_pkg}" -> "{dst_pkg}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"


def _package_of(module: str) -> str | None:
    parts = module.split(".")
    if parts[0] != "repro":
        return parts[0] if parts else None
    if len(parts) == 1:
        return "repro"
    return parts[1]


def _pkg_layer(package: str) -> int | None:
    return PACKAGE_LAYERS.get(package)


def _package_prefix(directory: pathlib.Path) -> list[str]:
    parts: list[str] = []
    current = directory
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return list(reversed(parts))


def _dotted_from_parts(parts: Sequence[str]) -> str:
    cleaned = [part[:-3] if part.endswith(".py") else part for part in parts]
    if cleaned and cleaned[-1] == "__init__":
        cleaned = cleaned[:-1]
    return ".".join(cleaned)


def _iter_scopes(
    mod: ProjectModule,
) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(qualname, scope_node)`` for the module body, functions,
    and methods (nested defs stay inside their parent's scope)."""
    yield "<module>", mod.tree
    for name, node in mod.functions.items():
        yield name, node
    for cls_name, info in mod.classes.items():
        for method_name, method in info.methods.items():
            yield f"{cls_name}.{method_name}", method


def _sccs(graph: Mapping[str, frozenset[str]]) -> list[tuple[str, ...]]:
    """Tarjan SCCs of size > 1, each sorted, in deterministic order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    out: list[tuple[str, ...]] = []

    def strongconnect(node: str) -> None:
        work: list[tuple[str, Iterator[str]]] = [
            (node, iter(sorted(graph.get(node, ()))))
        ]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[current] = min(low[current], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    out.append(tuple(sorted(component)))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    out.sort()
    return out


class _FunctionAnalyzer:
    """Per-scope fact extraction: callees, raises, submissions."""

    def __init__(self, project: Project, mod: ProjectModule) -> None:
        self.project = project
        self.mod = mod

    def analyze(self, qualname: str, scope: ast.AST) -> _FuncFacts:
        """Extract callee edges, raise sites, and submissions for one scope."""
        local_names, var_types, pool_vars = self._scan_locals(qualname, scope)
        facts = _FuncFacts(callees=[], raises=[], submissions=[])
        for node in _walk_scope(scope):
            if isinstance(node, ast.Call):
                self._handle_call(
                    qualname, scope, node, local_names, var_types, pool_vars, facts
                )
            elif isinstance(node, ast.Raise):
                self._handle_raise(qualname, scope, node, facts)
        return facts

    # -- locals -------------------------------------------------------

    def _scan_locals(
        self, qualname: str, scope: ast.AST
    ) -> tuple[set[str], dict[str, tuple[str, str]], dict[str, str]]:
        local_names: set[str] = set()
        var_types: dict[str, tuple[str, str]] = {}
        pool_vars: dict[str, str] = {}
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            params = (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
            for param in params:
                local_names.add(param.arg)
                if param.annotation is not None:
                    self._note_annotation(param.arg, param.annotation, var_types)
        for node in _walk_scope(scope):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._note_assignment(node, local_names, var_types, pool_vars)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    self._note_with_item(item, local_names, pool_vars)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name in _target_names(node.target):
                    local_names.add(name)
        return local_names, var_types, pool_vars

    def _note_annotation(
        self,
        name: str,
        annotation: ast.expr,
        var_types: dict[str, tuple[str, str]],
    ) -> None:
        dotted = dotted_name(annotation)
        if dotted is None:
            return
        resolved = self.project.resolve(self.mod.name, dotted)
        if resolved is not None and self._is_class(resolved):
            var_types[name] = resolved

    def _note_assignment(
        self,
        node: ast.Assign | ast.AnnAssign,
        local_names: set[str],
        var_types: dict[str, tuple[str, str]],
        pool_vars: dict[str, str],
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        pairs: list[tuple[ast.expr, ast.expr | None]] = []
        for target in targets:
            if (
                isinstance(target, ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(target.elts) == len(node.value.elts)
            ):
                pairs.extend(zip(target.elts, node.value.elts))
            else:
                pairs.append((target, node.value))
        for target, value in pairs:
            for name in _target_names(target):
                local_names.add(name)
                if value is None or not isinstance(target, ast.Name):
                    continue
                kind = self._value_pool_kind(value)
                if kind is not None:
                    pool_vars[name] = kind
                    continue
                if isinstance(value, ast.Call):
                    dotted = dotted_name(value.func)
                    if dotted is None:
                        continue
                    resolved = self.project.resolve(self.mod.name, dotted)
                    if resolved is not None and self._is_class(resolved):
                        var_types[name] = resolved

    def _note_with_item(
        self,
        item: ast.withitem,
        local_names: set[str],
        pool_vars: dict[str, str],
    ) -> None:
        if item.optional_vars is None or not isinstance(
            item.optional_vars, ast.Name
        ):
            return
        name = item.optional_vars.id
        local_names.add(name)
        kind = self._value_pool_kind(item.context_expr)
        if kind is not None:
            pool_vars[name] = kind

    def _value_pool_kind(self, value: ast.expr) -> str | None:
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                kind = _EXECUTOR_LEAVES.get(dotted.split(".")[-1])
                if kind is not None:
                    return kind
        dotted = dotted_name(value)
        if dotted is not None and dotted.startswith(("self.", "cls.")):
            attr = dotted.split(".")[-1]
            return self.project._pool_attr_kind(attr)
        return None

    def _is_class(self, ref: tuple[str, str]) -> bool:
        module, name = ref
        return (
            module in self.project.modules
            and name in self.project.modules[module].classes
        )

    # -- calls --------------------------------------------------------

    def _handle_call(
        self,
        qualname: str,
        scope: ast.AST,
        node: ast.Call,
        local_names: set[str],
        var_types: dict[str, tuple[str, str]],
        pool_vars: dict[str, str],
        facts: _FuncFacts,
    ) -> None:
        func = node.func
        # Executor submit/map?
        if isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
            kind = self._pool_base_kind(func.value, pool_vars)
            if kind is not None:
                submission = self._build_submission(qualname, node, kind)
                facts.submissions.append(submission)
                if submission.target is not None:
                    caught = self._caught_around(node, scope)
                    facts.callees.append((submission.target, caught))
                return
        # functools.partial: treat the wrapped callable as a callee.
        dotted = dotted_name(func)
        if dotted is not None and dotted.split(".")[-1] == "partial" and node.args:
            inner = self._resolve_callable(
                qualname, node.args[0], local_names, var_types
            )
            if inner is not None:
                facts.callees.append(
                    (inner, self._caught_around(node, scope))
                )
            return
        resolved = self._resolve_callable(
            qualname, func, local_names, var_types
        )
        if resolved is None:
            return
        callee = self._as_callable(resolved)
        if callee is not None:
            facts.callees.append((callee, self._caught_around(node, scope)))

    def _as_callable(self, resolved: tuple[str, str]) -> tuple[str, str] | None:
        """Map a resolved reference to the function the call executes."""
        module, name = resolved
        if module not in self.project.modules:
            return None
        mod = self.project.modules[module]
        if name in mod.functions:
            return resolved
        if name in mod.classes:
            ctor = self.project._find_method(module, name, "__init__")
            return ctor
        if "." in name:
            cls_name, method = name.split(".", 1)
            info = mod.classes.get(cls_name)
            if info is not None and method in info.methods:
                return resolved
            return None
        return None

    def _resolve_callable(
        self,
        qualname: str,
        expr: ast.expr,
        local_names: set[str],
        var_types: dict[str, tuple[str, str]],
    ) -> tuple[str, str] | None:
        if isinstance(expr, ast.Lambda):
            return None
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        head = parts[0]
        own_class = qualname.split(".")[0] if "." in qualname else None
        if head in ("self", "cls") and own_class is not None:
            if len(parts) == 2:
                return self.project._find_method(
                    self.mod.name, own_class, parts[1]
                )
            return None
        if head == "cls" and own_class is not None and len(parts) == 1:
            return self.project._find_method(
                self.mod.name, own_class, "__init__"
            )
        if head in var_types:
            if len(parts) == 2:
                cls_module, cls_name = var_types[head]
                return self.project._find_method(
                    cls_module, cls_name, parts[1]
                )
            return None
        if len(parts) == 1:
            if head in local_names:
                return None
            return self.project.resolve(self.mod.name, head)
        if head in local_names:
            return None
        return self.project.resolve(self.mod.name, dotted)

    def _pool_base_kind(
        self, base: ast.expr, pool_vars: dict[str, str]
    ) -> str | None:
        dotted = dotted_name(base)
        if dotted is None:
            return None
        if dotted in pool_vars:
            return pool_vars[dotted]
        if dotted.startswith(("self.", "cls.")) and dotted.count(".") == 1:
            return self.project._pool_attr_kind(dotted.split(".")[-1])
        return None

    def _build_submission(
        self, qualname: str, node: ast.Call, kind: str
    ) -> Submission:
        submission = Submission(
            module=self.mod.name,
            function=qualname,
            node=node,
            pool_kind=kind,
        )
        if not node.args:
            return submission
        target = node.args[0]
        if isinstance(target, ast.Call):
            inner_dotted = dotted_name(target.func)
            if (
                inner_dotted is not None
                and inner_dotted.split(".")[-1] == "partial"
                and target.args
            ):
                submission.via_partial = True
                target = target.args[0]
        if isinstance(target, ast.Lambda):
            submission.target_kind = "lambda"
        else:
            resolved = self._resolve_callable(qualname, target, set(), {})
            if resolved is not None:
                submission.target_kind = "resolved"
                submission.target = resolved
            else:
                submission.target_kind = "unresolved"
        submission.has_lambda_arg = any(
            isinstance(arg, ast.Lambda) for arg in node.args[1:]
        )
        return submission

    # -- raises -------------------------------------------------------

    def _handle_raise(
        self,
        qualname: str,
        scope: ast.AST,
        node: ast.Raise,
        facts: _FuncFacts,
    ) -> None:
        caught = self._caught_around(node, scope)
        if node.exc is None:
            handler = self._enclosing_handler(node, scope)
            if handler is not None:
                for leaf in _handler_type_names(handler):
                    exc = self._resolve_exception(leaf)
                    if exc is not None:
                        facts.raises.append((exc, caught))
            return
        expr = node.exc
        if isinstance(expr, ast.Call):
            expr = expr.func
        dotted = dotted_name(expr)
        if dotted is None:
            return
        exc = self._resolve_exception(dotted)
        if exc is not None:
            facts.raises.append((exc, caught))

    def _resolve_exception(self, dotted: str) -> tuple[str, str] | None:
        resolved = self.project.resolve(self.mod.name, dotted)
        if resolved is not None:
            module, name = resolved
            if module in self.project.modules:
                if name in self.project.modules[module].classes:
                    return resolved
                return None
            return (module, name)
        leaf = dotted.split(".")[-1]
        if _builtin_exception_ancestors(leaf) is not None:
            return ("builtins", leaf)
        if leaf[:1].isupper() and leaf.endswith(
            ("Error", "Exception", "Warning")
        ):
            # Raised class the resolver cannot see (nested, dynamic, or
            # external): recorded so the process-boundary rule can flag
            # it when it is reachable from pool-worker code.
            return ("<unresolved>", leaf)
        return None

    def _caught_around(self, node: ast.AST, scope: ast.AST) -> frozenset[str]:
        names: set[str] = set()
        child: ast.AST = node
        current = getattr(node, "parent", None)
        while current is not None and current is not scope:
            if isinstance(current, ast.Try) and child in current.body:
                for handler in current.handlers:
                    if _handler_reraises(handler):
                        continue
                    names.update(_handler_type_names(handler))
            child = current
            current = getattr(current, "parent", None)
        return frozenset(names)

    def _enclosing_handler(
        self, node: ast.AST, scope: ast.AST
    ) -> ast.ExceptHandler | None:
        current = getattr(node, "parent", None)
        while current is not None and current is not scope:
            if isinstance(current, ast.ExceptHandler):
                return current
            current = getattr(current, "parent", None)
        return None


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _handler_type_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return {"BaseException"}
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: set[str] = set()
    for expr in exprs:
        dotted = dotted_name(expr)
        if dotted is not None:
            names.add(dotted.split(".")[-1])
    return names


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in _walk_scope(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def project_context(
    rule: Rule, src: SourceFile
) -> tuple[Project, ProjectModule]:
    """Project context for one rule check.

    Returns the whole-program project attached by :func:`run_project`
    when it covers ``src``; otherwise falls back to a single-file
    project so the flow-aware rules degrade gracefully (resolution just
    stops at the file boundary) instead of failing.
    """
    attached = getattr(rule, "_project", None)
    if attached is not None:
        mod = attached.module_for(src.path)
        if mod is not None:
            return attached, mod
    fallback = Project.from_sources([src])
    return fallback, next(iter(fallback.modules.values()))


def run_project(
    paths: Sequence[str | pathlib.Path],
    rules: Sequence[Rule],
    cache: AstCache | None = None,
) -> tuple[list[Violation], list[str], Project]:
    """Lint a whole source tree with project context attached.

    Parses ``paths`` into a :class:`Project` (optionally through
    ``cache``), attaches it to every rule via
    :meth:`repro.analysis.engine.Rule.set_project`, runs the rules over
    each file, and always detaches the project afterwards (rule
    instances in the registry are shared singletons).  Returns
    ``(violations, parse_errors, project)``.
    """
    project, errors = Project.load(paths, cache)
    violations: list[Violation] = []
    try:
        for rule in rules:
            rule.set_project(project)
        for mod in sorted(
            project.modules.values(), key=lambda item: item.source.path
        ):
            violations.extend(run_source(mod.source, rules))
    finally:
        for rule in rules:
            rule.set_project(None)
    return violations, errors, project
