"""Argument validation helpers used across the library.

These raise ``ValueError`` with uniform, descriptive messages so call sites
stay one-liners and error reporting is consistent across modules.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_finite",
    "check_in_closed_interval",
    "check_in_open_interval",
    "check_positive",
    "check_probability",
    "check_unit_vectors",
]


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate ``0 <= value <= 1`` and return it."""
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in_closed_interval(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high`` and return it."""
    if not np.isfinite(value) or value < low or value > high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return float(value)


def check_in_open_interval(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low < value < high`` and return it."""
    if not np.isfinite(value) or value <= low or value >= high:
        raise ValueError(f"{name} must lie in ({low}, {high}), got {value!r}")
    return float(value)


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that every entry of ``array`` is finite and return it."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    return array


def check_unit_vectors(points: np.ndarray, name: str = "points", atol: float = 1e-6) -> np.ndarray:
    """Validate that the rows of ``points`` have unit Euclidean norm.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` or ``(d,)``.
    name:
        Name used in the error message.
    atol:
        Absolute tolerance on ``| ||x|| - 1 |``.

    Returns
    -------
    numpy.ndarray
        ``points`` reshaped to ``(n, d)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    norms = np.linalg.norm(points, axis=1)
    if not np.allclose(norms, 1.0, atol=atol):
        worst = float(np.max(np.abs(norms - 1.0)))
        raise ValueError(
            f"{name} must be unit vectors (max norm deviation {worst:.3g} > atol {atol:.3g})"
        )
    return points
