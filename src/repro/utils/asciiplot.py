"""Minimal ASCII line plots for terminal-only figure reproduction.

The paper's figures are curves; the benchmark harness renders them as
character grids so the reproduction record (``benchmarks/results/*.txt``)
is visually checkable without a plotting stack.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: str = "",
) -> str:
    """Render one or more ``y = f(x)`` series as an ASCII grid.

    Parameters
    ----------
    xs:
        Shared x values (increasing).
    series:
        Mapping label -> y values (same length as ``xs``); up to 8 series,
        each drawn with its own marker.
    width, height:
        Plot area in characters (excluding axes).
    title:
        Optional heading line.

    Returns
    -------
    str
        The rendered multi-line plot, with a legend and axis ranges.
    """
    xs = np.asarray(list(xs), dtype=np.float64)
    if xs.size < 2:
        raise ValueError("need at least two x values")
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    ys_all = np.concatenate(
        [np.asarray(list(v), dtype=np.float64) for v in series.values()]
    )
    if np.any(~np.isfinite(ys_all)):
        raise ValueError("series must be finite")
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if y_hi - y_lo < 1e-15:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, values) in zip(_MARKERS, series.items()):
        values = np.asarray(list(values), dtype=np.float64)
        if values.size != xs.size:
            raise ValueError(f"series {label!r} length mismatch")
        cols = np.round((xs - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int)
        rows = np.round((values - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:.4g}".rjust(10) + " +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row) + "|")
    lines.append(f"{y_lo:.4g}".rjust(10) + " +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g}".rjust(width // 2)
    )
    legend = "   ".join(
        f"{marker} {label}" for marker, label in zip(_MARKERS, series.keys())
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
