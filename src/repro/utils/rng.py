"""Random-generator helpers.

All stochastic objects in the library consume :class:`numpy.random.Generator`
instances.  These helpers normalize user input (``None``, an integer seed, or
an existing generator) and derive independent child generators so that
sampling many hash functions stays reproducible without sharing state.
"""

from __future__ import annotations

import copy

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "rng_state", "rng_from_state"]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a fixed seed, or an existing
        generator which is returned unchanged.

    Examples
    --------
    >>> rng = ensure_rng(7)
    >>> ensure_rng(rng) is rng
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    The children are produced by jumping the parent's bit generator through
    freshly drawn seeds, so the parent remains usable afterwards.

    Parameters
    ----------
    rng:
        Parent generator (advanced by this call).
    n:
        Number of children, ``n >= 0``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def rng_state(rng: np.random.Generator) -> dict:
    """Snapshot ``rng``'s bit-generator state as a plain JSON-able dict.

    The snapshot is a deep copy, so advancing ``rng`` afterwards does not
    mutate it.  Feeding the snapshot to :func:`rng_from_state` yields a
    generator that reproduces ``rng``'s stream from this exact point —
    the mechanism index persistence uses to regenerate identical hash
    pairs without requiring an integer seed.
    """
    return copy.deepcopy(rng.bit_generator.state)


def rng_from_state(state: dict) -> np.random.Generator:
    """Reconstruct a generator from a :func:`rng_state` snapshot."""
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None or not (
        isinstance(bit_generator_cls, type)
        and issubclass(bit_generator_cls, np.random.BitGenerator)
    ):
        raise ValueError(
            f"state names unknown bit generator {name!r}; expected the "
            "output of rng_state()"
        )
    bit_generator = bit_generator_cls()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)
