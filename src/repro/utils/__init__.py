"""Shared utilities: random-generator plumbing and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_in_closed_interval,
    check_in_open_interval,
    check_positive,
    check_probability,
    check_unit_vectors,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_finite",
    "check_in_closed_interval",
    "check_in_open_interval",
    "check_positive",
    "check_probability",
    "check_unit_vectors",
]
