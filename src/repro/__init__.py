"""repro — a reproduction of *Distance-Sensitive Hashing* (Aumüller,
Christiani, Pagh, Silvestri; PODS 2018).

A distance-sensitive hashing (DSH) scheme is a distribution over *pairs* of
hash functions ``(h, g)`` such that ``Pr[h(x) = g(y)] = f(dist(x, y))`` for
a prescribed collision probability function (CPF) ``f``.  This library
implements the paper's framework end to end:

* the core abstractions (:mod:`repro.core`): CPFs, families, Lemma 1.4
  combinators, Monte Carlo estimation, rho-values;
* every construction: bit-sampling and anti bit-sampling, SimHash,
  cross-polytope CP+/-, Gaussian filters D+/- (Theorem 1.2), the shifted
  Euclidean family (equation (2)), polynomial CPFs in Hamming space
  (Theorem 5.2) and on the sphere (Theorem 5.1), the annulus family
  (Theorem 6.2) and step-function CPFs (Figure 2) —
  :mod:`repro.families`;
* the Section 3 lower bounds with exact verification
  (:mod:`repro.bounds`, :mod:`repro.booleancube`);
* the Section 6 applications: annulus search, hyperplane queries, range
  reporting, privacy-preserving distance estimation (:mod:`repro.index`,
  :mod:`repro.privacy`), all constructible from serializable specs through
  one batch-first facade (:mod:`repro.api`)::

      from repro.api import build_index

      index = build_index(points, kind="annulus", family="annulus_sphere",
                          t=1.7, interval=(0.35, 0.75), n_tables=150, rng=7)
      results = index.batch_query(queries)

* production serving: zero-copy index persistence
  (:func:`repro.api.save_index` / :func:`repro.api.load_index`, memory-mapped
  cold starts) and multi-core sharded serving (:mod:`repro.serving`).

Quickstart::

    import numpy as np
    from repro.families import AnnulusFamily
    from repro.core import estimate_collision_probability
    from repro.spaces import sphere

    family = AnnulusFamily(d=32, alpha_max=0.3, t=2.0)  # CPF peaks at 0.3
    est = estimate_collision_probability(
        family,
        lambda n, rng: sphere.pairs_at_inner_product(n, 32, 0.3, rng),
        rng=0,
    )
    print(est.p_hat, family.cpf(0.3))
"""

from repro import api, booleancube, bounds, core, data, families, index, privacy, serving, spaces
from repro.api import IndexSpec, build_index, load_index, save_index

__version__ = "1.2.0"

__all__ = [
    "core",
    "spaces",
    "families",
    "bounds",
    "booleancube",
    "index",
    "privacy",
    "data",
    "api",
    "serving",
    "IndexSpec",
    "build_index",
    "save_index",
    "load_index",
    "__version__",
]
