"""Synthetic workloads matching the paper's problem settings.

The paper evaluates nothing on real datasets (it is a theory paper), but
its motivating scenarios — recommender diversity, annulus queries, range
reporting — dictate what a faithful workload looks like: planted points at
controlled proximity inside a sea of near-orthogonal distractors (the
random high-dimensional regime in which the theorems' guarantees bind).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spaces import euclidean, sphere
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "PlantedAnnulusInstance",
    "planted_sphere_annulus",
    "PlantedRangeInstance",
    "planted_euclidean_range",
    "clustered_unit_vectors",
]


@dataclass(frozen=True)
class PlantedAnnulusInstance:
    """A sphere annulus-search instance.

    Attributes
    ----------
    points:
        Unit vectors ``(n, d)``; row ``planted_index`` is the planted point.
    query:
        Unit query vector ``(d,)``.
    planted_index:
        Index of the point planted at inner product ``planted_alpha``.
    planted_alpha:
        Inner product between query and planted point.
    """

    points: np.ndarray
    query: np.ndarray
    planted_index: int
    planted_alpha: float


def planted_sphere_annulus(
    n: int,
    d: int,
    alpha_interval: tuple[float, float],
    rng: int | np.random.Generator | None = None,
) -> PlantedAnnulusInstance:
    """Uniform sphere points plus one planted inside the query's annulus.

    The distractors are uniform, so their inner products with the query
    concentrate in ``+-O(1/sqrt(d))``; choosing an annulus away from 0
    makes the planted point the (essentially) unique valid answer.
    """
    lo, hi = alpha_interval
    if not -1.0 < lo < hi < 1.0:
        raise ValueError(f"need -1 < lo < hi < 1, got {alpha_interval}")
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    rng = ensure_rng(rng)
    points = sphere.random_points(n, d, rng)
    query = sphere.random_points(1, d, rng)
    alpha = float(rng.uniform(lo, hi))
    x, y = sphere.pairs_at_inner_product(1, d, alpha, rng)
    # Rotate so x coincides with the query, carrying y along: equivalently,
    # resample the planted point directly against the query direction.
    u = sphere.orthogonal_to(query, rng)
    planted = alpha * query + np.sqrt(max(0.0, 1 - alpha**2)) * u
    planted_index = int(rng.integers(0, n))
    points[planted_index] = planted[0]
    return PlantedAnnulusInstance(
        points=points,
        query=query[0],
        planted_index=planted_index,
        planted_alpha=alpha,
    )


@dataclass(frozen=True)
class PlantedRangeInstance:
    """A Euclidean range-reporting instance.

    Attributes
    ----------
    points:
        Data set ``(n, d)``.
    query:
        Query point ``(d,)``.
    near_indices:
        Indices of the points planted within ``radius`` of the query.
    """

    points: np.ndarray
    query: np.ndarray
    near_indices: frozenset[int]


def planted_euclidean_range(
    n: int,
    d: int,
    radius: float,
    n_near: int,
    far_factor: float = 3.0,
    rng: int | np.random.Generator | None = None,
) -> PlantedRangeInstance:
    """``n_near`` points planted within ``radius`` of a query, the rest at
    distance ``>= far_factor * radius``.

    Near points are uniform over distances ``[0, radius]`` from the query
    (so the range-reporting index must find close *and* boundary points);
    far points are an isotropic Gaussian cloud centered ``2 far_factor
    radius`` away, rejection-filtered to respect the margin.
    """
    check_positive(radius, "radius")
    if not 0 <= n_near <= n:
        raise ValueError(f"n_near must lie in [0, {n}], got {n_near}")
    if far_factor <= 1.0:
        raise ValueError(f"far_factor must be > 1, got {far_factor}")
    rng = ensure_rng(rng)
    query = euclidean.random_points(1, d, rng)[0]
    rows = []
    for _ in range(n_near):
        dist = float(rng.uniform(0.0, radius))
        rows.append(euclidean.translate_at_distance(query[None, :], dist, rng)[0])
    center = euclidean.translate_at_distance(
        query[None, :], 2.0 * far_factor * radius, rng
    )[0]
    while len(rows) < n:
        batch = center + radius * rng.standard_normal((n, d))
        dists = np.linalg.norm(batch - query, axis=1)
        for row in batch[dists >= far_factor * radius]:
            rows.append(row)
            if len(rows) == n:
                break
    points = np.vstack(rows)
    order = rng.permutation(n)
    points = points[order]
    near = frozenset(int(np.flatnonzero(order == i)[0]) for i in range(n_near))
    return PlantedRangeInstance(points=points, query=query, near_indices=near)


def clustered_unit_vectors(
    n_clusters: int,
    per_cluster: int,
    d: int,
    concentration: float = 5.0,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Topic-cluster unit vectors for the recommender scenario (Section 1).

    Points are ``normalize(concentration * center + noise)`` with standard
    Gaussian noise — a von-Mises–Fisher-like cloud per cluster.  The
    expected inner product with the cluster center is approximately
    ``concentration / sqrt(concentration^2 + d)``, and between two points
    of the same cluster approximately ``concentration^2 /
    (concentration^2 + d)``; choose ``concentration ~ sqrt(d)`` for
    moderately diffuse topics.

    Returns
    -------
    (points, labels, centers)
        ``(n_clusters * per_cluster, d)`` unit vectors, integer cluster
        labels, and the ``(n_clusters, d)`` unit centers.
    """
    if n_clusters < 1 or per_cluster < 1:
        raise ValueError("n_clusters and per_cluster must be >= 1")
    check_positive(concentration, "concentration")
    rng = ensure_rng(rng)
    centers = sphere.random_points(n_clusters, d, rng)
    points = []
    labels = []
    for label, center in enumerate(centers):
        noise = rng.standard_normal((per_cluster, d))
        points.append(sphere.normalize(concentration * center[None, :] + noise))
        labels.extend([label] * per_cluster)
    return np.vstack(points), np.asarray(labels), centers
