"""Synthetic workload generators for the examples and benchmarks."""

from repro.data.synthetic import (
    clustered_unit_vectors,
    planted_euclidean_range,
    planted_sphere_annulus,
)

__all__ = [
    "planted_sphere_annulus",
    "planted_euclidean_range",
    "clustered_unit_vectors",
]
