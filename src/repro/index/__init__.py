"""Search data structures built on DSH families (Section 6).

* :mod:`repro.index.lsh_index` — the generic asymmetric hashing index
  (insert with ``h``, probe with ``g``) with full instrumentation.
* :mod:`repro.index.backends` — pluggable storage layouts behind the index:
  the ``"dict"`` reference backend and the vectorized ``"packed"`` CSR
  backend over uint64 fingerprints.
* :mod:`repro.index.annulus` — approximate annulus search (Theorem 6.1,
  Definition 6.3, Theorem 6.4).
* :mod:`repro.index.hyperplane` — hyperplane / near-orthogonal-vector
  queries (Section 6.1).
* :mod:`repro.index.range_reporting` — output-sensitive spherical range
  reporting with step-function CPFs (Section 6.3, Theorem 6.5).
* :mod:`repro.index.queryable` — the common batch-first query surface
  (``query`` / ``batch_query`` with stats-carrying results) every
  application index exposes; see :mod:`repro.api` for spec-driven
  construction.
* :mod:`repro.index.persistence` — zero-copy array persistence: built
  tables saved as one uncompressed ``.npz`` whose members load back as
  memory maps (``save_index`` / ``load_index`` in :mod:`repro.api`;
  sharded multi-core serving in :mod:`repro.serving`).
"""

from repro.index.annulus import AnnulusIndex, AnnulusQueryResult, sphere_annulus_index
from repro.index.backends import (
    BACKENDS,
    BatchHits,
    CandidateResult,
    DictBackend,
    IndexBackend,
    PackedBackend,
    clip_batch_hits,
    make_backend,
)
from repro.index.hyperplane import HyperplaneIndex
from repro.index.lsh_index import DSHIndex, QueryStats
from repro.index.queryable import Queryable, QueryResult
from repro.index.range_reporting import RangeReportingIndex, RangeReport

__all__ = [
    "DSHIndex",
    "QueryStats",
    "CandidateResult",
    "BatchHits",
    "Queryable",
    "QueryResult",
    "IndexBackend",
    "DictBackend",
    "PackedBackend",
    "BACKENDS",
    "make_backend",
    "clip_batch_hits",
    "AnnulusIndex",
    "AnnulusQueryResult",
    "sphere_annulus_index",
    "HyperplaneIndex",
    "RangeReportingIndex",
    "RangeReport",
]
