"""Zero-copy index persistence primitives.

Built indexes are flat array bundles (the packed backend is literally CSR
arrays), so persistence is array persistence: every saved object is one
uncompressed ``.npz`` holding named arrays, optionally next to a JSON
sidecar carrying the non-array state (spec, RNG state — written by
:func:`repro.api.save_index`, not here).

The point of this module is the *loading* discipline.  ``np.load`` on an
``.npz`` copies each member into fresh memory on access, so a serving
process would pay O(index size) on every cold start.  But ``np.savez``
stores members uncompressed (``ZIP_STORED``): each member is a verbatim
``.npy`` file at a known offset inside the archive, so we can parse the
zip's local headers ourselves and hand back :class:`numpy.memmap` views
directly into the file (:func:`read_arrays`).  Cold start is then O(1) in
the number of indexed points — file open + header parse — and the OS page
cache shares the table arrays between every process serving the same index,
which is what makes multi-worker sharded serving cheap.

Compressed or otherwise non-mappable members fall back to an in-memory
read, so the function degrades gracefully on foreign archives.

Integrity
---------
A serving fleet replicates these bundles over networks and disks that
*do* flip bits and truncate files, so the module also owns the integrity
vocabulary: :func:`checksum_arrays` computes the per-member CRC-32
records :func:`repro.api.save_index` embeds in the JSON sidecar, and
:func:`verify_integrity` checks a bundle against them under three modes
— ``"eager"`` (every member's bytes re-checksummed), ``"lazy"`` (cheap
structural checks: recorded file size, catches truncation without
touching data pages), ``"off"``.  All failures raise
:class:`IndexIntegrityError`, whose ``kind`` distinguishes ``"truncated"``
(missing bytes / unreadable archive), ``"checksum"`` (content mismatch),
and ``"manifest"`` (schema skew: missing members, wrong dtype/shape,
inconsistent shard manifests).  Bundles saved before checksums existed
carry no integrity record and still load under every mode.
"""

from __future__ import annotations

import ast
import os
import pathlib
import tempfile
import zipfile
import zlib

import numpy as np

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - lazy cycle with backends.save()
    from repro.index.backends import IndexBackend

__all__ = [
    "FORMAT_VERSION",
    "VERIFY_MODES",
    "IndexIntegrityError",
    "classify_archive_error",
    "write_arrays",
    "read_arrays",
    "checksum_arrays",
    "integrity_record",
    "verify_integrity",
    "save_backend",
    "load_backend",
]

#: On-disk format version for backend/index array bundles.  Bump on any
#: incompatible change to the array layout or sidecar schema.
FORMAT_VERSION = 1

#: Accepted values for the ``verify=`` parameter of
#: :func:`repro.api.load_index` / :func:`verify_integrity`.
VERIFY_MODES = ("eager", "lazy", "off")


class IndexIntegrityError(ValueError):
    """A persisted index bundle failed an integrity check.

    ``kind`` classifies the failure so operators can route it without
    parsing messages:

    * ``"truncated"`` — the file is shorter than recorded or the archive
      is structurally unreadable (partial copy, interrupted write);
    * ``"checksum"`` — a member's bytes do not match its recorded CRC-32
      (bit rot, in-place corruption);
    * ``"manifest"`` — the bundle and its manifest/sidecar disagree
      (missing member, dtype/shape skew, shard-count mismatch).

    Subclasses :class:`ValueError` so pre-integrity callers that caught
    broad load errors keep working.
    """

    def __init__(self, message: str, *, kind: str = "checksum") -> None:
        super().__init__(message)
        self.kind = kind

    def __reduce__(
        self,
    ) -> tuple[type["IndexIntegrityError"], tuple[str], dict[str, str]]:
        """Pickle support: integrity errors raised inside pool workers
        must cross the executor pipe intact (message *and* ``kind``)."""
        return (type(self), (self.args[0],), {"kind": self.kind})


def _check_verify_mode(mode: str) -> None:
    if mode not in VERIFY_MODES:
        raise ValueError(
            f"unknown verify mode {mode!r}; expected one of {VERIFY_MODES}"
        )


def classify_archive_error(
    npz_path: str | pathlib.Path, exc: BaseException
) -> IndexIntegrityError:
    """Turn an unreadable-archive exception into the right
    :class:`IndexIntegrityError`.  ``zipfile`` reports a member whose
    stored CRC-32 disagrees with its bytes as ``BadZipFile`` — content
    corruption, not truncation — so that case is classified
    ``"checksum"``; every other parse failure is ``"truncated"``."""
    if isinstance(exc, zipfile.BadZipFile) and "CRC" in str(exc):
        return IndexIntegrityError(
            f"{npz_path}: member failed its CRC-32 check ({exc}) — the "
            "bundle's bytes changed since it was saved",
            kind="checksum",
        )
    return IndexIntegrityError(
        f"{npz_path}: archive is unreadable ({exc}) — truncated or "
        "corrupted bundle",
        kind="truncated",
    )


def _array_crc32(array: np.ndarray) -> int:
    """CRC-32 of an array's logical content bytes (C-order)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def checksum_arrays(
    arrays: dict[str, np.ndarray]
) -> dict[str, dict[str, Any]]:
    """Per-member integrity records: CRC-32 over each array's content
    bytes plus the dtype/shape that make the bytes interpretable.  The
    JSON-able return value is what :func:`verify_integrity` later checks
    loaded arrays against."""
    return {
        name: {
            "crc32": _array_crc32(array),
            "nbytes": int(array.nbytes),
            "dtype": np.asarray(array).dtype.str,
            "shape": [int(s) for s in np.asarray(array).shape],
        }
        for name, array in arrays.items()
    }


def integrity_record(
    npz_path: str | pathlib.Path, arrays: dict[str, np.ndarray]
) -> dict[str, Any]:
    """The full sidecar ``"integrity"`` block for a just-written bundle:
    algorithm tag, total archive size (the lazy-mode truncation check),
    and the per-member checksum records."""
    return {
        "algorithm": "crc32",
        "npz_nbytes": int(os.stat(npz_path).st_size),
        "members": checksum_arrays(arrays),
    }


def verify_integrity(
    npz_path: str | pathlib.Path,
    integrity: dict[str, Any] | None,
    *,
    mode: str = "lazy",
    arrays: dict[str, np.ndarray] | None = None,
) -> None:
    """Check a bundle against its sidecar integrity record.

    ``mode="lazy"`` compares the on-disk size against the recorded
    ``npz_nbytes`` — O(1), catches truncation and appended garbage
    without touching data pages, so zero-copy cold starts stay O(1).
    ``mode="eager"`` additionally reads every member and re-computes its
    CRC-32 (pass ``arrays`` to reuse already-loaded members instead of a
    second read).  ``mode="off"`` skips everything.  A ``None``
    ``integrity`` record (a pre-checksum bundle) verifies trivially —
    under ``eager`` the members are still read, so an unreadable legacy
    archive fails as ``"truncated"`` rather than deep in revival code.

    Raises :class:`IndexIntegrityError` on any mismatch.
    """
    _check_verify_mode(mode)
    if mode == "off":
        return
    npz_path = pathlib.Path(npz_path)
    if integrity is not None:
        recorded = int(integrity.get("npz_nbytes", -1))
        actual = os.stat(npz_path).st_size
        if recorded >= 0 and actual != recorded:
            raise IndexIntegrityError(
                f"{npz_path}: file is {actual} bytes but the sidecar "
                f"records {recorded} — truncated or partially copied "
                "bundle",
                kind="truncated",
            )
    if mode == "lazy":
        return
    if arrays is None:
        try:
            arrays = read_arrays(npz_path, mmap=False)
        except FileNotFoundError:
            raise
        except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
            raise classify_archive_error(npz_path, exc) from exc
    members: dict[str, dict[str, Any]] = (
        {} if integrity is None else integrity.get("members", {})
    )
    for name, record in members.items():
        if name not in arrays:
            raise IndexIntegrityError(
                f"{npz_path}: member {name!r} is recorded in the sidecar "
                "but missing from the archive — manifest/bundle skew",
                kind="manifest",
            )
        array = np.asarray(arrays[name])
        if (
            array.dtype.str != record.get("dtype")
            or [int(s) for s in array.shape] != list(record.get("shape", []))
        ):
            raise IndexIntegrityError(
                f"{npz_path}: member {name!r} has dtype/shape "
                f"{array.dtype.str}/{list(array.shape)} but the sidecar "
                f"records {record.get('dtype')}/{record.get('shape')} — "
                "manifest/bundle skew",
                kind="manifest",
            )
        if _array_crc32(array) != int(record.get("crc32", -1)):
            raise IndexIntegrityError(
                f"{npz_path}: member {name!r} failed its CRC-32 check — "
                "the bundle's bytes changed since it was saved",
                kind="checksum",
            )

# Keys reserved for bundle metadata inside the .npz itself, so a backend
# payload can be identified without a sidecar.
_META_BACKEND = "__backend__"
_META_FORMAT = "__format__"

_ZIP_LOCAL_HEADER_SIZE = 30
_NPY_MAGIC = b"\x93NUMPY"


def write_arrays(path: str | pathlib.Path, arrays: dict[str, np.ndarray]) -> pathlib.Path:
    """Write ``arrays`` as one *uncompressed* ``.npz`` (mmap-able members).

    ``np.savez`` (not ``savez_compressed``) on purpose: compression would
    make members unmappable and turn every cold start into a full decode.
    A missing ``.npz`` suffix is appended — compared case-insensitively
    via ``path.suffix``, so ``INDEX.NPZ`` is respected and names shorter
    than the suffix are handled (the write itself goes through a
    ``.npz``-suffixed temp file, so ``np.savez`` never silently renames
    and the returned path is always the real file).

    The write goes to a temporary file in the same directory and is
    ``os.replace``d over the target: crash-safe, and — critically — safe
    when some of ``arrays`` are memmap views into the target file itself
    (re-saving a loaded index): the views keep reading the old inode
    instead of a truncated file.
    """
    path = pathlib.Path(path)
    if path.suffix.lower() != ".npz":
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp.npz"
    )
    os.close(fd)
    try:
        np.savez(tmp_name, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _mmap_member(
    path: pathlib.Path, f, data_start: int
) -> np.ndarray | None:
    """Map the ``.npy`` member starting at byte ``data_start`` of ``path``.

    Returns ``None`` if the member is not a parseable v1/v2/v3 ``.npy``
    (caller falls back to an eager read).  Zero-size arrays are returned
    eagerly: ``np.memmap`` rejects empty maps.
    """
    f.seek(data_start)
    if f.read(6) != _NPY_MAGIC:
        return None
    major = f.read(1)[0]
    f.read(1)  # minor version
    header_len_size = 2 if major == 1 else 4
    header_len = int.from_bytes(f.read(header_len_size), "little")
    try:
        header = ast.literal_eval(
            f.read(header_len).decode("latin1").strip()
        )
        dtype = np.dtype(header["descr"])
        shape = tuple(header["shape"])
        order = "F" if header.get("fortran_order") else "C"
    except (ValueError, KeyError, SyntaxError):
        return None
    if dtype.hasobject:
        return None
    data_offset = data_start + 6 + 2 + header_len_size + header_len
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path, dtype=dtype, mode="r", offset=data_offset, shape=shape,
        order=order,
    )


def read_arrays(
    path: str | pathlib.Path, mmap: bool = True
) -> dict[str, np.ndarray]:
    """Read a :func:`write_arrays` bundle.

    With ``mmap=True`` (the default) each uncompressed member comes back as
    a read-only :class:`numpy.memmap` view into the archive — no bytes are
    copied until a page is actually touched.  ``mmap=False`` forces eager
    in-memory copies (useful when the file will be deleted or rewritten
    while the arrays are still alive).
    """
    path = pathlib.Path(path)
    if not mmap:
        with np.load(path) as bundle:
            return {name: bundle[name] for name in bundle.files}
    out: dict[str, np.ndarray] = {}
    eager: list[str] = []
    with zipfile.ZipFile(path) as archive, open(path, "rb") as f:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            array = None
            if info.compress_type == zipfile.ZIP_STORED:
                f.seek(info.header_offset)
                local = f.read(_ZIP_LOCAL_HEADER_SIZE)
                if local[:4] == b"PK\x03\x04":
                    name_len = int.from_bytes(local[26:28], "little")
                    extra_len = int.from_bytes(local[28:30], "little")
                    data_start = (
                        info.header_offset
                        + _ZIP_LOCAL_HEADER_SIZE
                        + name_len
                        + extra_len
                    )
                    array = _mmap_member(path, f, data_start)
            if array is None:
                eager.append(info.filename)
            else:
                out[name] = array
    if eager:
        with np.load(path) as bundle:
            for filename in eager:
                name = filename[: -len(".npy")] if filename.endswith(".npy") else filename
                out[name] = bundle[name]
    return out


def save_backend(backend: IndexBackend, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a built :class:`~repro.index.backends.IndexBackend` to one
    self-describing ``.npz`` (backend name + format version travel inside
    the archive)."""
    arrays = dict(backend.export_arrays())
    for reserved in (_META_BACKEND, _META_FORMAT):
        if reserved in arrays:
            raise ValueError(
                f"backend export uses reserved key {reserved!r}"
            )
    arrays[_META_BACKEND] = np.array(backend.name)
    arrays[_META_FORMAT] = np.array([FORMAT_VERSION], dtype=np.int64)
    return write_arrays(path, arrays)


def load_backend(path: str | pathlib.Path, mmap: bool = True) -> IndexBackend:
    """Load a :func:`save_backend` bundle back into a fresh, unattached
    backend instance of the recorded type."""
    from repro.index.backends import BACKENDS

    arrays = read_arrays(path, mmap=mmap)
    try:
        name = str(arrays.pop(_META_BACKEND)[()])
        version = int(arrays.pop(_META_FORMAT)[0])
    except KeyError:
        raise ValueError(
            f"{path!s} is not a backend bundle (missing metadata keys)"
        ) from None
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported backend bundle format {version} (this build "
            f"reads format {FORMAT_VERSION})"
        )
    try:
        backend = BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"bundle was written by unknown backend {name!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from None
    backend.import_arrays(arrays)
    return backend
