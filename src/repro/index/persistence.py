"""Zero-copy index persistence primitives.

Built indexes are flat array bundles (the packed backend is literally CSR
arrays), so persistence is array persistence: every saved object is one
uncompressed ``.npz`` holding named arrays, optionally next to a JSON
sidecar carrying the non-array state (spec, RNG state — written by
:func:`repro.api.save_index`, not here).

The point of this module is the *loading* discipline.  ``np.load`` on an
``.npz`` copies each member into fresh memory on access, so a serving
process would pay O(index size) on every cold start.  But ``np.savez``
stores members uncompressed (``ZIP_STORED``): each member is a verbatim
``.npy`` file at a known offset inside the archive, so we can parse the
zip's local headers ourselves and hand back :class:`numpy.memmap` views
directly into the file (:func:`read_arrays`).  Cold start is then O(1) in
the number of indexed points — file open + header parse — and the OS page
cache shares the table arrays between every process serving the same index,
which is what makes multi-worker sharded serving cheap.

Compressed or otherwise non-mappable members fall back to an in-memory
read, so the function degrades gracefully on foreign archives.
"""

from __future__ import annotations

import ast
import os
import pathlib
import tempfile
import zipfile

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - lazy cycle with backends.save()
    from repro.index.backends import IndexBackend

__all__ = [
    "FORMAT_VERSION",
    "write_arrays",
    "read_arrays",
    "save_backend",
    "load_backend",
]

#: On-disk format version for backend/index array bundles.  Bump on any
#: incompatible change to the array layout or sidecar schema.
FORMAT_VERSION = 1

# Keys reserved for bundle metadata inside the .npz itself, so a backend
# payload can be identified without a sidecar.
_META_BACKEND = "__backend__"
_META_FORMAT = "__format__"

_ZIP_LOCAL_HEADER_SIZE = 30
_NPY_MAGIC = b"\x93NUMPY"


def write_arrays(path: str | pathlib.Path, arrays: dict[str, np.ndarray]) -> pathlib.Path:
    """Write ``arrays`` as one *uncompressed* ``.npz`` (mmap-able members).

    ``np.savez`` (not ``savez_compressed``) on purpose: compression would
    make members unmappable and turn every cold start into a full decode.
    A missing ``.npz`` suffix is appended — compared case-insensitively
    via ``path.suffix``, so ``INDEX.NPZ`` is respected and names shorter
    than the suffix are handled (the write itself goes through a
    ``.npz``-suffixed temp file, so ``np.savez`` never silently renames
    and the returned path is always the real file).

    The write goes to a temporary file in the same directory and is
    ``os.replace``d over the target: crash-safe, and — critically — safe
    when some of ``arrays`` are memmap views into the target file itself
    (re-saving a loaded index): the views keep reading the old inode
    instead of a truncated file.
    """
    path = pathlib.Path(path)
    if path.suffix.lower() != ".npz":
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp.npz"
    )
    os.close(fd)
    try:
        np.savez(tmp_name, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _mmap_member(
    path: pathlib.Path, f, data_start: int
) -> np.ndarray | None:
    """Map the ``.npy`` member starting at byte ``data_start`` of ``path``.

    Returns ``None`` if the member is not a parseable v1/v2/v3 ``.npy``
    (caller falls back to an eager read).  Zero-size arrays are returned
    eagerly: ``np.memmap`` rejects empty maps.
    """
    f.seek(data_start)
    if f.read(6) != _NPY_MAGIC:
        return None
    major = f.read(1)[0]
    f.read(1)  # minor version
    header_len_size = 2 if major == 1 else 4
    header_len = int.from_bytes(f.read(header_len_size), "little")
    try:
        header = ast.literal_eval(
            f.read(header_len).decode("latin1").strip()
        )
        dtype = np.dtype(header["descr"])
        shape = tuple(header["shape"])
        order = "F" if header.get("fortran_order") else "C"
    except (ValueError, KeyError, SyntaxError):
        return None
    if dtype.hasobject:
        return None
    data_offset = data_start + 6 + 2 + header_len_size + header_len
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path, dtype=dtype, mode="r", offset=data_offset, shape=shape,
        order=order,
    )


def read_arrays(
    path: str | pathlib.Path, mmap: bool = True
) -> dict[str, np.ndarray]:
    """Read a :func:`write_arrays` bundle.

    With ``mmap=True`` (the default) each uncompressed member comes back as
    a read-only :class:`numpy.memmap` view into the archive — no bytes are
    copied until a page is actually touched.  ``mmap=False`` forces eager
    in-memory copies (useful when the file will be deleted or rewritten
    while the arrays are still alive).
    """
    path = pathlib.Path(path)
    if not mmap:
        with np.load(path) as bundle:
            return {name: bundle[name] for name in bundle.files}
    out: dict[str, np.ndarray] = {}
    eager: list[str] = []
    with zipfile.ZipFile(path) as archive, open(path, "rb") as f:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            array = None
            if info.compress_type == zipfile.ZIP_STORED:
                f.seek(info.header_offset)
                local = f.read(_ZIP_LOCAL_HEADER_SIZE)
                if local[:4] == b"PK\x03\x04":
                    name_len = int.from_bytes(local[26:28], "little")
                    extra_len = int.from_bytes(local[28:30], "little")
                    data_start = (
                        info.header_offset
                        + _ZIP_LOCAL_HEADER_SIZE
                        + name_len
                        + extra_len
                    )
                    array = _mmap_member(path, f, data_start)
            if array is None:
                eager.append(info.filename)
            else:
                out[name] = array
    if eager:
        with np.load(path) as bundle:
            for filename in eager:
                name = filename[: -len(".npy")] if filename.endswith(".npy") else filename
                out[name] = bundle[name]
    return out


def save_backend(backend: IndexBackend, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a built :class:`~repro.index.backends.IndexBackend` to one
    self-describing ``.npz`` (backend name + format version travel inside
    the archive)."""
    arrays = dict(backend.export_arrays())
    for reserved in (_META_BACKEND, _META_FORMAT):
        if reserved in arrays:
            raise ValueError(
                f"backend export uses reserved key {reserved!r}"
            )
    arrays[_META_BACKEND] = np.array(backend.name)
    arrays[_META_FORMAT] = np.array([FORMAT_VERSION], dtype=np.int64)
    return write_arrays(path, arrays)


def load_backend(path: str | pathlib.Path, mmap: bool = True) -> IndexBackend:
    """Load a :func:`save_backend` bundle back into a fresh, unattached
    backend instance of the recorded type."""
    from repro.index.backends import BACKENDS

    arrays = read_arrays(path, mmap=mmap)
    try:
        name = str(arrays.pop(_META_BACKEND)[()])
        version = int(arrays.pop(_META_FORMAT)[0])
    except KeyError:
        raise ValueError(
            f"{path!s} is not a backend bundle (missing metadata keys)"
        ) from None
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported backend bundle format {version} (this build "
            f"reads format {FORMAT_VERSION})"
        )
    try:
        backend = BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"bundle was written by unknown backend {name!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from None
    backend.import_arrays(arrays)
    return backend
