"""Approximate annulus search (Theorem 6.1, Definition 6.3, Theorem 6.4).

Given a unimodal DSH family whose CPF peaks inside a target proximity
interval, the Theorem 6.1 data structure retrieves — with probability at
least 1/2 — a point whose proximity to the query lies in the (slightly
wider) reporting interval, examining ``O(n^rho*)`` candidates where
``rho* = log(1/f(r)) / log n``.

The implementation is proximity-agnostic: pass any row-wise proximity
function (Euclidean distance, inner product, Hamming distance) plus the
reporting interval.  :func:`sphere_annulus_index` wires it to the
Section 6.2 sphere family for the Theorem 6.4 setting.

:class:`AnnulusIndex` is :class:`~repro.index.queryable.Queryable`:
:meth:`AnnulusIndex.query` streams candidates lazily (the literal Theorem
6.1 procedure, stopping hash work at the first in-interval hit), while
:meth:`AnnulusIndex.batch_query` routes a whole query block through the
backend's batched hits-with-multiplicity path and a vectorized proximity
check — element-for-element identical results, held together by the
differential batch-vs-loop parity suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.family import DSHFamily
from repro.families.annulus_sphere import AnnulusFamily
from repro.index.backends import IndexBackend, QueryStats
from repro.index.lsh_index import DSHIndex
from repro.index.queryable import QueryResult
from repro.utils.rng import ensure_rng

__all__ = [
    "AnnulusQueryResult",
    "AnnulusIndex",
    "sphere_annulus_index",
    "sphere_family_for_interval",
    "sphere_peak_placement",
]


@dataclass(frozen=True)
class AnnulusQueryResult(QueryResult):
    """Outcome of one annulus query.

    Attributes
    ----------
    stats:
        Retrieval work behind the answer: ``retrieved`` counts candidate
        hits consumed (with multiplicity, bounded by the ``8 L`` budget per
        the Theorem 6.1 proof), ``truncated`` flags a budget exhaustion
        without a hit.
    index:
        Index of a reported point with proximity inside the reporting
        interval, or ``None`` if the search failed / exhausted its budget.
    proximity:
        The reported point's proximity to the query (``nan`` when ``None``).
    """

    index: int | None
    proximity: float

    @property
    def found(self) -> bool:
        """Whether a valid point was reported."""
        return self.index is not None

    @property
    def candidates_examined(self) -> int:
        """Candidate retrievals consumed (with multiplicity) — legacy
        spelling of ``stats.retrieved``."""
        return self.stats.retrieved


class AnnulusIndex:
    """The Theorem 6.1 data structure.

    Parameters
    ----------
    points:
        Data set, shape ``(n, d)``.
    family:
        A DSH family whose CPF peaks inside the reporting interval (e.g.
        :class:`~repro.families.annulus_sphere.AnnulusFamily` on the sphere
        or a shifted Euclidean family).
    interval:
        Reporting interval ``(lo, hi)`` in proximity units.
    proximity:
        Vectorized proximity ``(query (d,), points (m, d)) -> (m,)`` —
        e.g. Euclidean distance or inner product.
    n_tables:
        Number of repetitions ``L``; pick ``~ceil(c / f(r))`` for target
        success probability ``1 - e^{-c}`` (the theorem uses ``L = 1/f(r)``
        for probability ``1/e``, then amplifies).
    budget_factor:
        Early termination after ``budget_factor * L`` retrievals (the
        theorem's Markov argument uses 8).
    rng:
        Seed or generator.
    backend:
        Storage backend forwarded to :class:`DSHIndex` (``"packed"`` by
        default; both backends return identical candidate streams).
    workers:
        Thread count for the build's per-table hashing (forwarded to
        :meth:`DSHIndex.build`); ``None`` hashes serially.
    """

    def __init__(
        self,
        points: np.ndarray,
        family: DSHFamily,
        interval: tuple[float, float],
        proximity: Callable[[np.ndarray, np.ndarray], np.ndarray],
        n_tables: int,
        budget_factor: float = 8.0,
        rng: int | np.random.Generator | None = None,
        backend: str | IndexBackend = "packed",
        workers: int | None = None,
    ) -> None:
        lo, hi = interval
        if not lo < hi:
            raise ValueError(f"interval must satisfy lo < hi, got {interval}")
        self.points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self.interval = (float(lo), float(hi))
        self.proximity = proximity
        if budget_factor <= 0:
            raise ValueError(f"budget_factor must be positive, got {budget_factor}")
        self.budget = int(np.ceil(budget_factor * n_tables))
        self._index = DSHIndex(
            family, n_tables, ensure_rng(rng), backend=backend
        ).build(self.points, workers=workers)

    @classmethod
    def _restore(
        cls,
        *,
        points: np.ndarray,
        interval: tuple[float, float],
        proximity: Callable[[np.ndarray, np.ndarray], np.ndarray],
        budget_factor: float,
        index: DSHIndex,
    ) -> "AnnulusIndex":
        """Persistence hook: revive an instance around an already-built
        (typically memory-mapped) :class:`DSHIndex` — no hashing, no point
        copies.  ``points`` may be a read-only memmap; every query path
        only reads it."""
        self = object.__new__(cls)
        self.points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self.interval = (float(interval[0]), float(interval[1]))
        self.proximity = proximity
        self.budget = int(np.ceil(budget_factor * index.n_tables))
        self._index = index
        return self

    @property
    def backend(self) -> str:
        """Name of the underlying storage backend."""
        return self._index.backend

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._index.n_points

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(family={type(self._index.family).__name__}, "
            f"L={self._index.n_tables}, backend={self.backend!r}, "
            f"n_points={self.n_points}, interval={self.interval})"
        )

    def _not_found(
        self, examined: int, unique: int, tables_probed: int, truncated: bool
    ) -> AnnulusQueryResult:
        return AnnulusQueryResult(
            stats=QueryStats(
                retrieved=examined,
                unique_candidates=unique,
                tables_probed=tables_probed,
                truncated=truncated,
            ),
            index=None,
            proximity=float("nan"),
        )

    def query(self, query_point: np.ndarray) -> AnnulusQueryResult:
        """Report one point with proximity in the interval, if found.

        Streams candidates in probe order, checking proximities one by one,
        and stops at the first hit or when the retrieval budget is spent —
        the exact procedure from the proof of Theorem 6.1.  Duplicate hits
        count toward the budget but their proximity is never recomputed.
        """
        query_point = np.asarray(query_point, dtype=np.float64).ravel()
        lo, hi = self.interval
        examined = 0
        seen: set[int] = set()
        last_table = 0
        truncated = False
        for idx, table in self._index.iter_candidates(query_point):
            examined += 1
            last_table = table
            if idx not in seen:
                seen.add(idx)
                value = float(
                    self.proximity(query_point, self.points[idx : idx + 1])[0]
                )
                if lo <= value <= hi:
                    return AnnulusQueryResult(
                        stats=QueryStats(
                            retrieved=examined,
                            unique_candidates=len(seen),
                            tables_probed=table + 1,
                        ),
                        index=idx,
                        proximity=value,
                    )
            if examined >= self.budget:
                truncated = True
                break
        tables_probed = last_table + 1 if truncated else self._index.n_tables
        return self._not_found(examined, len(seen), tables_probed, truncated)

    def batch_query(self, query_points: np.ndarray) -> list[AnnulusQueryResult]:
        """Run :meth:`query` for every row of ``query_points``, vectorized.

        All queries are hashed through each table's ``g`` in one call and
        every (query, table) bucket is resolved by the backend's batched
        hits-with-multiplicity path (one ``searchsorted`` + gather on the
        packed backend), already clipped to the per-query ``8 L`` budget at
        exact hit granularity.  Proximities are then evaluated once per
        *distinct* candidate per query.  Results — indices, stats,
        truncation — are element-for-element identical to a :meth:`query`
        loop (the batch-vs-loop parity suite enforces this on both
        backends); reported ``proximity`` values may differ from the
        single-query path in the last floating-point bit, because BLAS may
        order the reduction of a many-row proximity evaluation differently
        than a one-row one.
        """
        queries = np.atleast_2d(np.asarray(query_points, dtype=np.float64))
        block = self._index.batch_query_hits(queries, max_hits=self.budget)
        n_tables = self._index.n_tables
        lo, hi = self.interval
        results: list[AnnulusQueryResult] = []
        for i in range(queries.shape[0]):
            segment = block.segment(i)
            if segment.size == 0:
                results.append(self._not_found(0, 0, n_tables, False))
                continue
            unique, inverse = np.unique(segment, return_inverse=True)
            prox = np.asarray(
                self.proximity(queries[i], self.points[unique]), dtype=np.float64
            )
            in_range = (prox >= lo) & (prox <= hi)
            hit_positions = np.flatnonzero(in_range[inverse])
            if hit_positions.size:
                p = int(hit_positions[0])
                results.append(
                    AnnulusQueryResult(
                        stats=QueryStats(
                            retrieved=p + 1,
                            unique_candidates=int(
                                np.unique(segment[: p + 1]).size
                            ),
                            tables_probed=block.table_of(i, p) + 1,
                        ),
                        index=int(segment[p]),
                        proximity=float(prox[inverse[p]]),
                    )
                )
            else:
                truncated = bool(block.truncated[i])
                tables_probed = (
                    block.table_of(i, segment.size - 1) + 1
                    if truncated
                    else n_tables
                )
                results.append(
                    self._not_found(
                        int(segment.size), int(unique.size), tables_probed,
                        truncated,
                    )
                )
        return results

    def query_many(
        self, query_point: np.ndarray, k: int
    ) -> list[AnnulusQueryResult]:
        """Report up to ``k`` *distinct* in-interval points.

        Continues streaming candidates past the first hit (still within the
        retrieval budget), deduplicating indices — the natural extension for
        consumers like recommenders that want several diverse answers.
        Returns the hits found, possibly fewer than ``k``; each result's
        stats snapshot the work done up to that hit.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query_point = np.asarray(query_point, dtype=np.float64).ravel()
        lo, hi = self.interval
        examined = 0
        seen: set[int] = set()
        hits: list[AnnulusQueryResult] = []
        for idx, table in self._index.iter_candidates(query_point):
            examined += 1
            if idx not in seen:
                seen.add(idx)
                value = float(
                    self.proximity(query_point, self.points[idx : idx + 1])[0]
                )
                if lo <= value <= hi:
                    hits.append(
                        AnnulusQueryResult(
                            stats=QueryStats(
                                retrieved=examined,
                                unique_candidates=len(seen),
                                tables_probed=table + 1,
                            ),
                            index=idx,
                            proximity=value,
                        )
                    )
                    if len(hits) == k:
                        break
            if examined >= self.budget:
                break
        return hits


def _inner_product_proximity(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    return points @ query


def sphere_annulus_index(
    points: np.ndarray,
    alpha_interval: tuple[float, float],
    t: float,
    n_tables: int,
    rng: int | np.random.Generator | None = None,
    budget_factor: float = 8.0,
    backend: str | IndexBackend = "packed",
    workers: int | None = None,
) -> AnnulusIndex:
    """Theorem 6.4 instantiation: inner-product annuli on the unit sphere.

    The family peak ``alpha_max`` is placed at the *geometric* midpoint of
    the interval in the ``a(alpha) = (1-alpha)/(1+alpha)`` parameterization
    (Section 6.2), which is where the combined ``D+ (x) D-`` CPF is
    balanced.

    Parameters
    ----------
    points:
        Unit vectors, shape ``(n, d)``.
    alpha_interval:
        Reporting interval of inner products ``(beta_-, beta_+)``.
    t:
        Filter threshold ``t_+`` (sharpness / cost knob).
    n_tables, rng, budget_factor, backend:
        As in :class:`AnnulusIndex`.
    """
    family = sphere_family_for_interval(
        np.atleast_2d(points).shape[1], alpha_interval, t
    )
    return AnnulusIndex(
        points,
        family,
        interval=alpha_interval,
        proximity=_inner_product_proximity,
        n_tables=n_tables,
        budget_factor=budget_factor,
        rng=rng,
        backend=backend,
        workers=workers,
    )


def sphere_family_for_interval(
    d: int, alpha_interval: tuple[float, float], t: float
) -> AnnulusFamily:
    """The Theorem 6.4 family for a reporting interval: peak at the
    :func:`sphere_peak_placement` midpoint, threshold ``t``.  THE single
    construction shared by :func:`sphere_annulus_index` (build) and index
    persistence (revive) — a loaded index must regenerate its hash pairs
    from *exactly* the family that populated the stored tables, so this
    mapping is defined once."""
    return AnnulusFamily(
        d, alpha_max=sphere_peak_placement(alpha_interval), t=t
    )


def sphere_peak_placement(alpha_interval: tuple[float, float]) -> float:
    """The Theorem 6.4 peak placement: ``alpha_max`` at the geometric
    midpoint of the reporting interval in the ``a(alpha)``
    parameterization.  Exposed so spec-driven construction
    (:mod:`repro.api`) can fill in a family's peak from an interval.
    Validates that the interval is a legal inner-product band."""
    beta_minus, beta_plus = alpha_interval
    if not -1.0 < beta_minus < beta_plus < 1.0:
        raise ValueError(f"need -1 < beta_- < beta_+ < 1, got {alpha_interval}")
    a_lo = (1.0 - beta_plus) / (1.0 + beta_plus)
    a_hi = (1.0 - beta_minus) / (1.0 + beta_minus)
    a_mid = float(np.sqrt(a_lo * a_hi))
    return (1.0 - a_mid) / (1.0 + a_mid)
