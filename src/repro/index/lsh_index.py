"""Generic asymmetric hashing index.

The data-structure skeleton shared by every Section 6 application, directly
following the proof of Theorem 6.1: sample ``L`` independent pairs
``(h_i, g_i)`` from a DSH family, store each data point ``x`` in table ``i``
under key ``h_i(x)``, and probe a query ``y`` at key ``g_i(y)``.  The
probability that a specific point is retrieved in one table is exactly the
family's CPF at their distance, so retrieval statistics (candidates,
duplicates) are the empirical face of everything the paper proves about
CPFs.

Storage is pluggable (:mod:`repro.index.backends`): the ``"dict"`` backend
buckets serialized component rows in per-table hash maps (the reference
layout), the ``"packed"`` backend mixes rows to uint64 fingerprints and
stores CSR-style sorted arrays probed with ``np.searchsorted`` (the
vectorized production layout).  Both return identical candidates, order,
and stats.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import DSHFamily, HashPair
from repro.index.backends import IndexBackend, QueryStats, make_backend
from repro.utils.rng import ensure_rng

__all__ = ["QueryStats", "DSHIndex"]


class DSHIndex:
    """``L``-table asymmetric hashing index over a fixed point set.

    Parameters
    ----------
    family:
        Any DSH family; data points are hashed with the ``h`` side and
        queries with the ``g`` side of each sampled pair.
    n_tables:
        Number ``L`` of independent repetitions.
    rng:
        Seed or generator for sampling the ``L`` pairs.
    backend:
        Storage layout: ``"dict"`` (reference, exact byte keys) or
        ``"packed"`` (vectorized CSR over uint64 fingerprints), a backend
        class, or a ready :class:`~repro.index.backends.IndexBackend`
        instance.

    Notes
    -----
    The index stores point *indices*; callers keep the point array.  Build
    cost is ``O(L n)`` hash evaluations; the per-table layout is chosen by
    ``backend``.
    """

    def __init__(
        self,
        family: DSHFamily,
        n_tables: int,
        rng: int | np.random.Generator | None = None,
        backend: str | IndexBackend | type[IndexBackend] = "dict",
    ):
        if n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {n_tables}")
        self.family = family
        self.n_tables = int(n_tables)
        self._pairs: list[HashPair] = family.sample_pairs(n_tables, ensure_rng(rng))
        self._backend: IndexBackend = make_backend(backend)
        if self._backend._bound:
            raise ValueError(
                "backend instance is already attached to another DSHIndex; "
                "pass the backend name or class to get a fresh instance"
            )
        self._backend._bound = True
        self._n_points = 0
        self._built = False

    @property
    def backend(self) -> str:
        """Name of the active storage backend."""
        return self._backend.name

    def build(self, points: np.ndarray) -> "DSHIndex":
        """Hash all ``points`` (shape ``(n, d)``) into the ``L`` tables."""
        points = np.atleast_2d(np.asarray(points))
        self._n_points = points.shape[0]
        self._backend.build([pair.hash_data(points) for pair in self._pairs])
        self._built = True
        return self

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._n_points

    def bucket_sizes(self) -> list[int]:
        """All bucket sizes across tables (for load diagnostics)."""
        self._require_built()
        return self._backend.bucket_sizes()

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("index not built; call build(points) first")

    def _query_components(self, query: np.ndarray) -> list[np.ndarray]:
        """Hash one or more query rows through every table's ``g``."""
        return [pair.hash_query(query) for pair in self._pairs]

    @staticmethod
    def _single_query(query: np.ndarray) -> np.ndarray:
        query = np.atleast_2d(np.asarray(query))
        if query.shape[0] != 1:
            raise ValueError(f"query must be a single point, got {query.shape[0]}")
        return query

    def query_candidates(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> tuple[list[int], QueryStats]:
        """Retrieve candidate indices for a single query point.

        Parameters
        ----------
        query:
            One point, shape ``(d,)`` or ``(1, d)``.
        max_retrieved:
            Optional budget on total retrievals (with multiplicity); probing
            stops once exceeded (the ``8L`` early-termination device in the
            proof of Theorem 6.1).

        Returns
        -------
        (list[int], QueryStats)
            Distinct candidate indices in first-seen order, plus stats.

        Notes
        -----
        Hashing is lazy per table (a generator feeds the backend), so a
        truncating budget also stops hash evaluation at the truncating
        table — hash work for tables beyond it is never spent.
        """
        self._require_built()
        query = self._single_query(query)
        return self._backend.query(
            (pair.hash_query(query) for pair in self._pairs), max_retrieved
        )

    def iter_candidates(self, query: np.ndarray):
        """Yield ``(index, table_number)`` hits lazily in probe order,
        *with* duplicates — callers wanting streaming early termination
        (annulus search) consume as much as they need.  Hashing stays lazy:
        table ``i`` is only hashed/probed if the consumer reaches it."""
        self._require_built()
        query = self._single_query(query)
        for table_number, pair in enumerate(self._pairs):
            bucket = self._backend.bucket(table_number, pair.hash_query(query))
            for idx in bucket:
                yield int(idx), table_number

    def query_hits(self, query: np.ndarray) -> np.ndarray:
        """All hits for one query as a flat int64 index array in probe
        order, duplicates preserved — the bulk counterpart of
        :meth:`iter_candidates` for consumers that always drain every table
        (range reporting)."""
        self._require_built()
        query = self._single_query(query)
        return self._backend.query_hits(self._query_components(query))

    def batch_query(
        self, queries: np.ndarray, max_retrieved: int | None = None
    ) -> list[tuple[list[int], QueryStats]]:
        """Run :meth:`query_candidates` for each row of ``queries``.

        Hashes all queries through each table's ``g`` in one vectorized
        call, then hands the component block to the backend: the dict
        backend walks buckets per query through the same probe routine as
        :meth:`query_candidates`; the packed backend resolves all
        ``(query, table)`` buckets with batched ``searchsorted`` + one
        gather and dedups per query with ``np.unique``.
        """
        self._require_built()
        queries = np.atleast_2d(np.asarray(queries))
        return self._backend.batch_query(self._query_components(queries), max_retrieved)
