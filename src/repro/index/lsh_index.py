"""Generic asymmetric hashing index.

The data-structure skeleton shared by every Section 6 application, directly
following the proof of Theorem 6.1: sample ``L`` independent pairs
``(h_i, g_i)`` from a DSH family, store each data point ``x`` in table ``i``
under key ``h_i(x)``, and probe a query ``y`` at key ``g_i(y)``.  The
probability that a specific point is retrieved in one table is exactly the
family's CPF at their distance, so retrieval statistics (candidates,
duplicates) are the empirical face of everything the paper proves about
CPFs.

Storage is pluggable (:mod:`repro.index.backends`): the ``"dict"`` backend
buckets serialized component rows in per-table hash maps (the reference
layout), the ``"packed"`` backend mixes rows to uint64 fingerprints and
stores CSR-style sorted arrays probed with ``np.searchsorted`` (the
vectorized production layout).  Both return identical candidates, order,
and stats.

The query surface follows the repo-wide :class:`~repro.index.queryable.Queryable`
convention: :meth:`DSHIndex.query` for one point, :meth:`DSHIndex.batch_query`
for a batch, both returning :class:`~repro.index.backends.CandidateResult`
(tuple-compatible with the legacy ``(candidates, stats)`` pairs).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.family import DSHFamily, HashPair
from repro.index.backends import (
    BatchHits,
    CandidateResult,
    IndexBackend,
    QueryStats,
    make_backend,
)
from repro.utils.rng import ensure_rng

__all__ = ["QueryStats", "CandidateResult", "DSHIndex"]


class DSHIndex:
    """``L``-table asymmetric hashing index over a fixed point set.

    Parameters
    ----------
    family:
        Any DSH family; data points are hashed with the ``h`` side and
        queries with the ``g`` side of each sampled pair.
    n_tables:
        Number ``L`` of independent repetitions.
    rng:
        Seed or generator for sampling the ``L`` pairs.
    backend:
        Storage layout: ``"dict"`` (reference, exact byte keys) or
        ``"packed"`` (vectorized CSR over uint64 fingerprints), a backend
        class, or a ready :class:`~repro.index.backends.IndexBackend`
        instance.

    Notes
    -----
    The index stores point *indices*; callers keep the point array.  Build
    cost is ``O(L n)`` hash evaluations; the per-table layout is chosen by
    ``backend``.
    """

    def __init__(
        self,
        family: DSHFamily,
        n_tables: int,
        rng: int | np.random.Generator | None = None,
        backend: str | IndexBackend | type[IndexBackend] = "dict",
    ):
        if n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {n_tables}")
        self.family = family
        self.n_tables = int(n_tables)
        self._pairs: list[HashPair] = family.sample_pairs(n_tables, ensure_rng(rng))
        self._backend: IndexBackend = make_backend(backend)
        if self._backend._bound:
            raise ValueError(
                "backend instance is already attached to another DSHIndex; "
                "pass the backend name or class to get a fresh instance"
            )
        self._backend._bound = True
        self._n_points = 0
        self._dim: int | None = None
        self._built = False

    @property
    def backend(self) -> str:
        """Name of the active storage backend."""
        return self._backend.name

    def __repr__(self) -> str:
        built = (
            f"n_points={self._n_points}, d={self._dim}"
            if self._built
            else "unbuilt"
        )
        return (
            f"{type(self).__name__}(family={type(self.family).__name__}, "
            f"L={self.n_tables}, backend={self.backend!r}, {built})"
        )

    def build(self, points: np.ndarray) -> "DSHIndex":
        """Hash all ``points`` (shape ``(n, d)``) into the ``L`` tables."""
        points = np.atleast_2d(np.asarray(points))
        self._n_points = points.shape[0]
        self._dim = points.shape[1]
        self._backend.build([pair.hash_data(points) for pair in self._pairs])
        self._built = True
        return self

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._n_points

    @property
    def dim(self) -> int | None:
        """Dimensionality of the built point set (``None`` before build)."""
        return self._dim

    def bucket_sizes(self) -> list[int]:
        """All bucket sizes across tables (for load diagnostics)."""
        self._require_built()
        return self._backend.bucket_sizes()

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("index not built; call build(points) first")

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        """Normalize a query block to ``(n, d)`` and validate ``d`` against
        the built point set — a mismatched query would otherwise fail deep
        inside a family's hash closure or, for families that slice
        coordinates, silently mis-hash."""
        queries = np.atleast_2d(np.asarray(queries))
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be one point (d,) or a block (n, d), "
                f"got shape {queries.shape}"
            )
        if self._dim is not None and queries.shape[1] != self._dim:
            raise ValueError(
                f"query dimensionality {queries.shape[1]} does not match "
                f"the built point set (d={self._dim})"
            )
        return queries

    def _query_components(self, query: np.ndarray) -> list[np.ndarray]:
        """Hash one or more query rows through every table's ``g``."""
        return [pair.hash_query(query) for pair in self._pairs]

    def _single_query(self, query: np.ndarray) -> np.ndarray:
        query = self._check_queries(query)
        if query.shape[0] != 1:
            raise ValueError(f"query must be a single point, got {query.shape[0]}")
        return query

    def query(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> CandidateResult:
        """Retrieve candidate indices for a single query point.

        Parameters
        ----------
        query:
            One point, shape ``(d,)`` or ``(1, d)``.
        max_retrieved:
            Optional budget on total retrievals (with multiplicity); probing
            stops once exceeded (the ``8L`` early-termination device in the
            proof of Theorem 6.1).

        Returns
        -------
        CandidateResult
            Distinct candidate indices in first-seen order, plus stats
            (unpacks as the legacy ``(candidates, stats)`` tuple).

        Notes
        -----
        Hashing is lazy per table (a generator feeds the backend), so a
        truncating budget also stops hash evaluation at the truncating
        table — hash work for tables beyond it is never spent.
        """
        self._require_built()
        query = self._single_query(query)
        return self._backend.query(
            (pair.hash_query(query) for pair in self._pairs), max_retrieved
        )

    def query_candidates(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> CandidateResult:
        """Deprecated spelling of :meth:`query` (kept as a shim; identical
        result object)."""
        warnings.warn(
            "DSHIndex.query_candidates is deprecated; use DSHIndex.query "
            "(same arguments, same tuple-compatible result)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(query, max_retrieved)

    def iter_candidates(self, query: np.ndarray):
        """Yield ``(index, table_number)`` hits lazily in probe order,
        *with* duplicates — callers wanting streaming early termination
        (annulus search) consume as much as they need.  Hashing stays lazy:
        table ``i`` is only hashed/probed if the consumer reaches it."""
        self._require_built()
        query = self._single_query(query)
        for table_number, pair in enumerate(self._pairs):
            bucket = self._backend.bucket(table_number, pair.hash_query(query))
            for idx in bucket:
                yield int(idx), table_number

    def query_hits(self, query: np.ndarray) -> np.ndarray:
        """All hits for one query as a flat int64 index array in probe
        order, duplicates preserved — the bulk counterpart of
        :meth:`iter_candidates` for consumers that always drain every table
        (range reporting)."""
        self._require_built()
        query = self._single_query(query)
        return self._backend.query_hits(self._query_components(query))

    def batch_query(
        self, queries: np.ndarray, max_retrieved: int | None = None
    ) -> list[CandidateResult]:
        """Run :meth:`query` for each row of ``queries``.

        Hashes all queries through each table's ``g`` in one vectorized
        call, then hands the component block to the backend: the dict
        backend walks buckets per query through the same probe routine as
        :meth:`query`; the packed backend resolves all ``(query, table)``
        buckets with batched ``searchsorted`` + one gather and dedups per
        query with a stamp pass.
        """
        self._require_built()
        queries = self._check_queries(queries)
        return self._backend.batch_query(self._query_components(queries), max_retrieved)

    def batch_query_hits(
        self, queries: np.ndarray, max_hits: int | None = None
    ) -> BatchHits:
        """Bulk hit streams (duplicates preserved, probe order) for a block
        of queries — the batched counterpart of :meth:`query_hits` that the
        application layers' ``batch_query`` paths are built on.  ``max_hits``
        cuts each stream at exactly that many hits (hit granularity, unlike
        ``max_retrieved``'s table granularity)."""
        self._require_built()
        queries = self._check_queries(queries)
        return self._backend.batch_query_hits(
            self._query_components(queries), max_hits
        )
