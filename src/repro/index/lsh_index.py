"""Generic asymmetric hashing index.

The data-structure skeleton shared by every Section 6 application, directly
following the proof of Theorem 6.1: sample ``L`` independent pairs
``(h_i, g_i)`` from a DSH family, store each data point ``x`` in table ``i``
under key ``h_i(x)``, and probe a query ``y`` at key ``g_i(y)``.  The
probability that a specific point is retrieved in one table is exactly the
family's CPF at their distance, so retrieval statistics (candidates,
duplicates) are the empirical face of everything the paper proves about
CPFs.

Multi-component hash rows are serialized to ``bytes`` for bucketing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.family import DSHFamily, HashPair, rows_to_keys
from repro.utils.rng import ensure_rng

__all__ = ["QueryStats", "DSHIndex"]


@dataclass
class QueryStats:
    """Instrumentation for one query.

    Attributes
    ----------
    retrieved:
        Total number of (point, table) hits — counts duplicates, i.e. the
        work the query performs.
    unique_candidates:
        Number of distinct data points retrieved.
    tables_probed:
        Tables inspected before termination (== L unless stopped early).
    truncated:
        Whether an early-termination candidate budget stopped the scan.
    """

    retrieved: int = 0
    unique_candidates: int = 0
    tables_probed: int = 0
    truncated: bool = False

    @property
    def duplicates(self) -> int:
        """Redundant retrievals — the waste Theorem 6.5 is about."""
        return self.retrieved - self.unique_candidates


class DSHIndex:
    """``L``-table asymmetric hashing index over a fixed point set.

    Parameters
    ----------
    family:
        Any DSH family; data points are hashed with the ``h`` side and
        queries with the ``g`` side of each sampled pair.
    n_tables:
        Number ``L`` of independent repetitions.
    rng:
        Seed or generator for sampling the ``L`` pairs.

    Notes
    -----
    The index stores point *indices*; callers keep the point array.  Build
    cost is ``O(L n)`` hash evaluations, the per-table layout is a plain
    ``dict[bytes, list[int]]``.
    """

    def __init__(
        self,
        family: DSHFamily,
        n_tables: int,
        rng: int | np.random.Generator | None = None,
    ):
        if n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {n_tables}")
        self.family = family
        self.n_tables = int(n_tables)
        self._pairs: list[HashPair] = family.sample_pairs(n_tables, ensure_rng(rng))
        self._tables: list[dict[bytes, list[int]]] = []
        self._n_points = 0
        self._built = False

    def build(self, points: np.ndarray) -> "DSHIndex":
        """Hash all ``points`` (shape ``(n, d)``) into the ``L`` tables."""
        points = np.atleast_2d(np.asarray(points))
        self._tables = []
        self._n_points = points.shape[0]
        for pair in self._pairs:
            table: dict[bytes, list[int]] = {}
            keys = rows_to_keys(pair.hash_data(points))
            for idx, key in enumerate(keys):
                table.setdefault(key, []).append(idx)
            self._tables.append(table)
        self._built = True
        return self

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._n_points

    def bucket_sizes(self) -> list[int]:
        """All bucket sizes across tables (for load diagnostics)."""
        self._require_built()
        return [len(bucket) for table in self._tables for bucket in table.values()]

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("index not built; call build(points) first")

    def query_candidates(
        self, query: np.ndarray, max_retrieved: int | None = None
    ) -> tuple[list[int], QueryStats]:
        """Retrieve candidate indices for a single query point.

        Parameters
        ----------
        query:
            One point, shape ``(d,)`` or ``(1, d)``.
        max_retrieved:
            Optional budget on total retrievals (with multiplicity); probing
            stops once exceeded (the ``8L`` early-termination device in the
            proof of Theorem 6.1).

        Returns
        -------
        (list[int], QueryStats)
            Distinct candidate indices in first-seen order, plus stats.
        """
        self._require_built()
        query = np.atleast_2d(np.asarray(query))
        if query.shape[0] != 1:
            raise ValueError(f"query must be a single point, got {query.shape[0]}")
        stats = QueryStats()
        seen: set[int] = set()
        ordered: list[int] = []
        for pair, table in zip(self._pairs, self._tables):
            key = rows_to_keys(pair.hash_query(query))[0]
            bucket = table.get(key, ())
            stats.retrieved += len(bucket)
            for idx in bucket:
                if idx not in seen:
                    seen.add(idx)
                    ordered.append(idx)
            stats.tables_probed += 1
            if max_retrieved is not None and stats.retrieved >= max_retrieved:
                stats.truncated = True
                break
        stats.unique_candidates = len(ordered)
        return ordered, stats

    def iter_candidates(self, query: np.ndarray):
        """Yield ``(index, table_number)`` hits lazily in probe order,
        *with* duplicates — callers wanting streaming early termination
        (annulus search) consume as much as they need."""
        self._require_built()
        query = np.atleast_2d(np.asarray(query))
        for table_number, (pair, table) in enumerate(zip(self._pairs, self._tables)):
            key = rows_to_keys(pair.hash_query(query))[0]
            for idx in table.get(key, ()):
                yield idx, table_number

    def batch_query(
        self, queries: np.ndarray, max_retrieved: int | None = None
    ) -> list[tuple[list[int], QueryStats]]:
        """Run :meth:`query_candidates` for each row of ``queries``.

        Hashes all queries through each table's ``g`` in one vectorized
        call, then walks buckets per query — the hashing (usually the
        expensive part for projection-based families) is amortized.
        """
        self._require_built()
        queries = np.atleast_2d(np.asarray(queries))
        n = queries.shape[0]
        per_query_keys: list[list[bytes]] = [[] for _ in range(n)]
        for pair in self._pairs:
            keys = rows_to_keys(pair.hash_query(queries))
            for i, key in enumerate(keys):
                per_query_keys[i].append(key)
        results: list[tuple[list[int], QueryStats]] = []
        for i in range(n):
            stats = QueryStats()
            seen: set[int] = set()
            ordered: list[int] = []
            for key, table in zip(per_query_keys[i], self._tables):
                bucket = table.get(key, ())
                stats.retrieved += len(bucket)
                for idx in bucket:
                    if idx not in seen:
                        seen.add(idx)
                        ordered.append(idx)
                stats.tables_probed += 1
                if max_retrieved is not None and stats.retrieved >= max_retrieved:
                    stats.truncated = True
                    break
            stats.unique_candidates = len(ordered)
            results.append((ordered, stats))
        return results
