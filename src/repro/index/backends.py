"""Pluggable storage backends for :class:`~repro.index.lsh_index.DSHIndex`.

The Theorem 6.1 index needs one operation from its storage layer: map the
``(n, c)`` int64 hash components of a point to a bucket and retrieve buckets
in table order at query time.  Two interchangeable layouts implement it:

* :class:`DictBackend` — the reference layout: one ``dict[bytes, list[int]]``
  per table keyed by the exact serialized component row
  (:func:`~repro.core.family.rows_to_keys`).  Injective keys, simple code,
  Python-loop speed.  Single and batched queries share one probe routine so
  the two paths cannot drift apart.
* :class:`PackedBackend` — the throughput layout: component rows are mixed
  to uint64 fingerprints (:func:`~repro.core.family.rows_to_fingerprints`)
  and each table is stored CSR-style as a sorted unique-fingerprint array,
  an offsets array, and a point-index array grouped by fingerprint
  (``np.argsort``/``np.unique`` at build, ``np.searchsorted`` at probe).
  :meth:`~PackedBackend.batch_query` is vectorized end-to-end across queries
  *and* tables; per-query dedup preserves first-seen candidate order, so the
  results are element-for-element identical to :class:`DictBackend` (up to
  64-bit fingerprint collisions, see the collision bound documented on
  ``rows_to_fingerprints``).

Both backends produce identical candidate lists, candidate order, and
:class:`QueryStats`; ``tests/test_index_backends_parity.py`` enforces this
differentially across families and seeds.
"""

from __future__ import annotations

import pathlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Mapping, NamedTuple

import numpy as np

from repro.core.family import rows_to_fingerprints, rows_to_keys

__all__ = [
    "QueryStats",
    "CandidateResult",
    "BatchHits",
    "IndexBackend",
    "DictBackend",
    "PackedBackend",
    "make_backend",
    "budget_truncation",
    "first_seen_dedup",
    "clip_batch_hits",
    "BACKENDS",
]


@dataclass
class QueryStats:
    """Instrumentation for one query.

    Attributes
    ----------
    retrieved:
        Total number of (point, table) hits — counts duplicates, i.e. the
        work the query performs.
    unique_candidates:
        Number of distinct data points retrieved.
    tables_probed:
        Tables inspected before termination (== L unless stopped early).
    truncated:
        Whether an early-termination candidate budget stopped the scan.
    degraded:
        Whether the result was served in degraded mode — one or more
        shards of a :class:`~repro.serving.sharded.ShardedIndex` failed
        and only the surviving shards contributed (exactly).  Always
        ``False`` for single-index queries and healthy sharded serving;
        the failed-shard list rides in ``ShardedIndex.last_health``.
    """

    retrieved: int = 0
    unique_candidates: int = 0
    tables_probed: int = 0
    truncated: bool = False
    degraded: bool = False

    @property
    def duplicates(self) -> int:
        """Redundant retrievals — the waste Theorem 6.5 is about."""
        return self.retrieved - self.unique_candidates


class CandidateResult(NamedTuple):
    """Outcome of one raw candidate query: distinct candidate indices in
    first-seen order plus :class:`QueryStats`.

    A ``NamedTuple`` on purpose: it compares equal to — and unpacks like —
    the plain ``(candidates, stats)`` tuples the pre-registry API returned,
    so ``candidates, stats = index.query(q)`` and ``result.indices`` /
    ``result.stats`` are both valid spellings of the same object.
    """

    indices: list[int]
    stats: QueryStats


@dataclass(frozen=True)
class BatchHits:
    """All (point, table) hits for a batch of queries, with multiplicity.

    The bulk counterpart of :meth:`IndexBackend.query_hits`: the raw
    retrieval stream the Section 6 application layers consume — annulus
    search examines it in probe order until a proximity check passes,
    range reporting drains it and counts multiplicities.

    Attributes
    ----------
    hits:
        Flat point-index array, query-major; within a query, hits are in
        probe order (table by table, insertion order inside a bucket).
    offsets:
        Shape ``(n_queries + 1,)``; query ``i`` owns
        ``hits[offsets[i]:offsets[i + 1]]``.
    table_counts:
        Shape ``(n_queries, L)``: how many of query ``i``'s hits came from
        each table (after ``max_hits`` truncation), so consumers can
        recover the table of any hit position without storing a parallel
        table array.
    truncated:
        Shape ``(n_queries,)`` bool: whether the query's stream was cut by
        ``max_hits`` — i.e. exactly ``max_hits`` hits were gathered (a
        lazily-consuming caller cannot know whether more would have come,
        so reaching the cap *is* the truncation signal, matching the
        streaming single-query semantics).
    full_table_counts:
        ``None`` when the stream is unclipped (``table_counts`` already
        *are* the full counts).  When a producer clipped the stream
        (``max_hits`` here, or the worker-side ``max_retrieved`` clip in
        :func:`clip_batch_hits`), this carries the **pre-clip** per-table
        retrieval counts for every table, so a downstream merge can apply
        table-granularity budget semantics on the counts the unclipped
        stream *would* have had — the contract that lets sharded pool
        workers ship clipped hits while the merged
        :func:`budget_truncation` stays bit-identical to the unsharded
        index.
    """

    hits: np.ndarray
    offsets: np.ndarray
    table_counts: np.ndarray
    truncated: np.ndarray
    full_table_counts: np.ndarray | None = None

    @property
    def n_queries(self) -> int:
        """Number of query segments in this block."""
        return self.offsets.size - 1

    @property
    def pre_clip_table_counts(self) -> np.ndarray:
        """The full (pre-clip) per-table counts: ``full_table_counts`` when
        a clip recorded them, else ``table_counts`` (nothing was clipped)."""
        return (
            self.table_counts
            if self.full_table_counts is None
            else self.full_table_counts
        )

    def segment(self, i: int) -> np.ndarray:
        """Query ``i``'s hits in probe order (duplicates preserved)."""
        return self.hits[self.offsets[i] : self.offsets[i + 1]]

    def table_of(self, i: int, position: int) -> int:
        """Table number that produced hit ``position`` (0-based, within
        query ``i``'s segment)."""
        return int(
            np.searchsorted(
                np.cumsum(self.table_counts[i]), position, side="right"
            )
        )


def budget_truncation(
    counts: np.ndarray, n_tables: int, max_retrieved: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """THE Theorem 6.1 early-termination device, vectorized: given a
    ``(n_queries, L)`` per-table retrieval-count matrix, a query stops
    after the first table at which its cumulative count reaches
    ``max_retrieved``.  Returns ``(tables_probed, truncated)``, both
    ``(n_queries,)``.  Shared by :meth:`PackedBackend.batch_query` and the
    sharded merge (:mod:`repro.serving.sharded`) so the truncation
    semantics — which the parity suites hold bit-identical to the
    reference ``_scan`` — are defined exactly once."""
    n_queries = counts.shape[0]
    if max_retrieved is None:
        return (
            np.full(n_queries, n_tables, dtype=np.int64),
            np.zeros(n_queries, dtype=bool),
        )
    over = np.cumsum(counts, axis=1) >= max_retrieved
    truncated = over.any(axis=1)
    tables_probed = np.where(
        truncated, np.argmax(over, axis=1) + 1, n_tables
    )
    return tables_probed, truncated


def first_seen_dedup(
    segment: np.ndarray, stamp: np.ndarray, positions_all: np.ndarray
) -> list[int]:
    """First-seen dedup without sorting: stamp each point id with the
    position of its first occurrence in ``segment`` (reversed fancy-index
    write, so the earliest position wins), then keep hits whose own
    position carries the stamp.  O(len(segment)), and ``stamp`` — a
    caller-owned scratch array over the id space — needs no reset between
    calls: only just-stamped entries are ever read.  The companion of
    :func:`budget_truncation`, shared by the packed backend and the
    sharded merge."""
    if not segment.size:
        return []
    positions = positions_all[: segment.size]
    stamp[segment[::-1]] = positions[::-1]
    return segment[stamp[segment] == positions].tolist()


def clip_batch_hits(
    block: BatchHits, n_tables: int, max_retrieved: int | None
) -> BatchHits:
    """Apply the Theorem 6.1 table-granularity ``max_retrieved`` budget to
    an *unclipped* :class:`BatchHits` stream, keeping the pre-clip counts.

    The exactness-preserving device behind worker-side clipping in sharded
    serving: a query's merged scan stops after the first table where the
    *merged* cumulative count reaches the budget, and since every shard's
    own cumulative counts are bounded by the merged ones, the merged
    stopping table can never lie beyond the shard-local one.  Clipping each
    shard's stream at its own :func:`budget_truncation` table therefore
    discards only hits the merge could never use, while the recorded
    ``full_table_counts`` let the merge compute the exact merged stopping
    table and stats.  Within a query's segment hits are table-major, so the
    kept hits are a per-query prefix.

    ``block`` must be unclipped (``full_table_counts is None``); returns it
    unchanged when ``max_retrieved`` is ``None``.
    """
    if max_retrieved is None:
        return block
    if block.full_table_counts is not None:
        raise ValueError(
            "clip_batch_hits needs an unclipped stream; this block already "
            "carries full_table_counts"
        )
    full = np.asarray(block.table_counts, dtype=np.int64)
    tables_probed, truncated = budget_truncation(
        full, n_tables, max_retrieved
    )
    included = np.arange(n_tables)[None, :] < tables_probed[:, None]
    clipped = np.where(included, full, 0)
    keep = clipped.sum(axis=1)
    offsets = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(keep, out=offsets[1:])
    total = int(offsets[-1])
    if total == block.hits.size:
        hits = block.hits
    else:
        ends = offsets[1:]
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(ends - keep, keep)
            + np.repeat(np.asarray(block.offsets[:-1], dtype=np.int64), keep)
        )
        hits = np.asarray(block.hits)[gather]
    return BatchHits(
        hits=hits,
        offsets=offsets,
        table_counts=clipped,
        truncated=truncated,
        full_table_counts=full,
    )


class IndexBackend(ABC):
    """Storage layout behind a :class:`DSHIndex`.

    Component arrays flow in from the index, which owns the hash pairs: the
    backend never hashes points, it only buckets already-computed ``(n, c)``
    int64 components.  ``comps`` arguments are lists with one entry per
    table, each of shape ``(n_queries, c)``.
    """

    name: str = "abstract"

    # A storage object holds exactly one index's tables; attach() flips
    # this so a second owner cannot silently clobber the first build.
    _attached: bool = False

    def attach(self) -> "IndexBackend":
        """Claim this instance for one owning index.

        An :class:`IndexBackend` holds exactly one index's tables, so the
        owner (``DSHIndex``, or a loader reviving a saved index) must call
        this exactly once before using the instance; a second ``attach``
        raises instead of letting a later ``build`` clobber the first
        owner's data.  Returns ``self`` so construction chains.
        """
        if self._attached:
            raise ValueError(
                f"{type(self).__name__} instance is already attached to an "
                "index; pass the backend name or class to get a fresh "
                "instance"
            )
        self._attached = True
        return self

    @property
    def attached(self) -> bool:
        """Whether an index has claimed this instance via :meth:`attach`."""
        return self._attached

    @abstractmethod
    def build(self, tables: list[np.ndarray]) -> None:
        """Ingest the data-side components, one ``(n, c)`` array per table."""

    # -- persistence -----------------------------------------------------

    @abstractmethod
    def export_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the built tables to named arrays (the persistence
        payload).  Keys must be valid ``.npz`` member names; the inverse is
        :meth:`import_arrays`."""

    @abstractmethod
    def import_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Restore tables from an :meth:`export_arrays` payload.  Arrays
        may be read-only memmaps: backends must treat imported storage as
        immutable, which every query path already does."""

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist the built tables as one uncompressed ``.npz`` whose
        members can be memory-mapped back (see
        :mod:`repro.index.persistence`)."""
        from repro.index.persistence import save_backend

        return save_backend(self, path)

    @classmethod
    def load(
        cls, path: str | pathlib.Path, mmap: bool = True
    ) -> "IndexBackend":
        """Load a :meth:`save` bundle into a fresh, unattached instance.

        With ``mmap=True`` the table arrays are zero-copy views into the
        file — cold start is O(1) in the number of indexed points.  When
        called on a concrete subclass, the bundle's recorded backend type
        must match.
        """
        from repro.index.persistence import load_backend

        backend = load_backend(path, mmap=mmap)
        if cls is not IndexBackend and not isinstance(backend, cls):
            raise ValueError(
                f"{path!s} holds a {type(backend).__name__} bundle, not "
                f"{cls.__name__}"
            )
        return backend

    @abstractmethod
    def bucket(self, table: int, components: np.ndarray) -> np.ndarray:
        """Point indices in ``table`` under one query's component row
        (shape ``(1, c)``), in insertion (= increasing point index) order,
        always as an **int64** array — backends that store narrowed ids
        internally must widen here so callers never see dtype drift."""

    @abstractmethod
    def bucket_sizes(self) -> list[int]:
        """All bucket sizes across tables (for load diagnostics)."""

    @abstractmethod
    def batch_query(
        self, comps: list[np.ndarray], max_retrieved: int | None = None
    ) -> list[CandidateResult]:
        """Probe all tables for every query row; one :class:`CandidateResult`
        per query, candidates distinct and in first-seen order."""

    def _scan(
        self, buckets, max_retrieved: int | None
    ) -> CandidateResult:
        """THE reference probe routine (first-seen dedup + the Theorem 6.1
        early-termination budget) over a lazily-consumed iterable of
        buckets, one per table in table order.  Every non-vectorized query
        path funnels through here so the semantics cannot drift; the
        packed ``batch_query`` override is held to it differentially by
        the backend-parity suite."""
        stats = QueryStats()
        seen: set[int] = set()
        ordered: list[int] = []
        for bucket in buckets:
            stats.retrieved += len(bucket)
            for idx in bucket:
                idx = int(idx)
                if idx not in seen:
                    seen.add(idx)
                    ordered.append(idx)
            stats.tables_probed += 1
            if max_retrieved is not None and stats.retrieved >= max_retrieved:
                stats.truncated = True
                break
        stats.unique_candidates = len(ordered)
        return CandidateResult(ordered, stats)

    def query(
        self,
        comps: Iterable[np.ndarray],
        max_retrieved: int | None = None,
    ) -> CandidateResult:
        """Single-query probe.  ``comps`` may be any iterable of per-table
        ``(1, c)`` component rows and is consumed lazily, so a truncating
        budget also stops upstream hash evaluation (the caller can pass a
        generator that hashes table ``i`` on demand)."""
        return self._scan(
            (self.bucket(t, c) for t, c in enumerate(comps)), max_retrieved
        )

    def query_hits(self, comps: list[np.ndarray]) -> np.ndarray:
        """All (point, table) hits for one query as a flat int64 array in
        probe order, duplicates preserved."""
        parts = [
            np.asarray(self.bucket(t, c), dtype=np.int64)
            for t, c in enumerate(comps)
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def batch_query_hits(
        self, comps: list[np.ndarray], max_hits: int | None = None
    ) -> BatchHits:
        """Bulk hit streams for every query row: the batched counterpart of
        :meth:`query_hits`, feeding the application-layer ``batch_query``
        paths.

        Unlike :meth:`batch_query`'s ``max_retrieved`` (the Theorem 6.1
        device, which truncates at *table* granularity), ``max_hits`` cuts
        each query's stream at exactly ``max_hits`` hits — the semantics of
        a consumer that counts every hit it examines and stops mid-bucket
        (annulus search under its ``8L`` budget).

        This reference implementation walks buckets per query in Python;
        :class:`PackedBackend` overrides it with one batched
        ``searchsorted`` + gather.  Under ``max_hits`` the pre-clip
        per-table counts are recorded in ``full_table_counts`` (every
        bucket is still *counted*, only the gather stops at the cap).
        """
        n_tables = len(comps)
        n_queries = comps[0].shape[0] if n_tables else 0
        table_counts = np.zeros((n_queries, n_tables), dtype=np.int64)
        full_counts = (
            None
            if max_hits is None
            else np.zeros((n_queries, n_tables), dtype=np.int64)
        )
        truncated = np.zeros(n_queries, dtype=bool)
        parts: list[np.ndarray] = []
        lengths = np.zeros(n_queries, dtype=np.int64)
        for i in range(n_queries):
            gathered = 0
            for t in range(n_tables):
                bucket = np.asarray(
                    self.bucket(t, comps[t][i : i + 1]), dtype=np.int64
                )
                if full_counts is not None:
                    full_counts[i, t] = bucket.size
                if max_hits is not None and gathered + bucket.size > max_hits:
                    bucket = bucket[: max_hits - gathered]
                table_counts[i, t] = bucket.size
                gathered += bucket.size
                if bucket.size:
                    parts.append(bucket)
            lengths[i] = gathered
            truncated[i] = max_hits is not None and gathered == max_hits
        offsets = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        hits = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        return BatchHits(
            hits=hits,
            offsets=offsets,
            table_counts=table_counts,
            truncated=truncated,
            full_table_counts=full_counts,
        )


class DictBackend(IndexBackend):
    """Reference layout: ``dict[bytes, list[int]]`` per table."""

    name = "dict"

    def __init__(self) -> None:
        self._tables: list[dict[bytes, list[int]]] = []

    def build(self, tables: list[np.ndarray]) -> None:
        """Bucket each table's component rows by exact serialized key."""
        self._tables = []
        for comps in tables:
            table: dict[bytes, list[int]] = {}
            for idx, key in enumerate(rows_to_keys(comps)):
                table.setdefault(key, []).append(idx)
            self._tables.append(table)

    def bucket(self, table: int, components: np.ndarray) -> np.ndarray:
        """Exact-key lookup; always returns an int64 id array."""
        key = rows_to_keys(components)[0]
        return np.asarray(self._tables[table].get(key, []), dtype=np.int64)

    def bucket_sizes(self) -> list[int]:
        """All bucket sizes across tables (for load diagnostics)."""
        return [len(bucket) for table in self._tables for bucket in table.values()]

    def batch_query(
        self, comps: list[np.ndarray], max_retrieved: int | None = None
    ) -> list[CandidateResult]:
        """Per-query reference ``_scan`` over precomputed key rows."""
        per_table_keys = [rows_to_keys(c) for c in comps]
        n_queries = len(per_table_keys[0]) if per_table_keys else 0
        return [
            self._scan(
                (
                    table.get(keys[i], ())
                    for keys, table in zip(per_table_keys, self._tables)
                ),
                max_retrieved,
            )
            for i in range(n_queries)
        ]

    def export_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the per-table dicts: concatenated key bytes (fixed width
        per table), bucket sizes in iteration (= first-insertion) order,
        and the concatenated bucket id lists.  Iteration order is part of
        the payload, so a round trip rebuilds *identical* dicts."""
        key_parts: list[bytes] = []
        id_parts: list[np.ndarray] = []
        bucket_counts: list[int] = []
        table_buckets = np.zeros(len(self._tables), dtype=np.int64)
        key_widths = np.zeros(len(self._tables), dtype=np.int64)
        for t, table in enumerate(self._tables):
            table_buckets[t] = len(table)
            for key, ids in table.items():
                key_widths[t] = len(key)
                key_parts.append(key)
                bucket_counts.append(len(ids))
                id_parts.append(np.asarray(ids, dtype=np.int64))
        key_bytes = (
            np.frombuffer(b"".join(key_parts), dtype=np.uint8)
            if key_parts
            else np.empty(0, dtype=np.uint8)
        )
        return {
            "key_bytes": key_bytes,
            "key_widths": key_widths,
            "table_buckets": table_buckets,
            "bucket_counts": np.asarray(bucket_counts, dtype=np.int64),
            "ids": (
                np.concatenate(id_parts)
                if id_parts
                else np.empty(0, dtype=np.int64)
            ),
        }

    def import_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Rebuild identical per-table dicts from the flattened payload."""
        key_bytes = np.asarray(arrays["key_bytes"], dtype=np.uint8).tobytes()
        key_widths = np.asarray(arrays["key_widths"], dtype=np.int64)
        table_buckets = np.asarray(arrays["table_buckets"], dtype=np.int64)
        bucket_counts = np.asarray(arrays["bucket_counts"], dtype=np.int64)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        self._tables = []
        bucket = 0
        key_pos = 0
        id_pos = 0
        for t in range(table_buckets.size):
            table: dict[bytes, list[int]] = {}
            width = int(key_widths[t])
            for _ in range(int(table_buckets[t])):
                key = key_bytes[key_pos : key_pos + width]
                key_pos += width
                count = int(bucket_counts[bucket])
                bucket += 1
                table[key] = [int(i) for i in ids[id_pos : id_pos + count]]
                id_pos += count
            self._tables.append(table)


class PackedBackend(IndexBackend):
    """CSR-style layout over uint64 fingerprints, fully vectorized.

    Per table ``t`` the build stores

    * ``_unique[t]`` — sorted distinct fingerprints, shape ``(B_t,)``;
    * ``_offsets[t]`` — bucket boundaries into the point-index array,
      shape ``(B_t + 1,)``;
    * a slice of the shared ``_ids`` array holding point indices grouped by
      fingerprint (stable argsort, so within a bucket indices are in
      insertion order, matching :class:`DictBackend`).
    """

    name = "packed"

    def __init__(self) -> None:
        self._unique: list[np.ndarray] = []
        self._offsets: list[np.ndarray] = []
        self._base: np.ndarray = np.empty(0, dtype=np.int64)
        self._ids: np.ndarray = np.empty(0, dtype=np.int64)
        self._n_points = 0

    def build(self, tables: list[np.ndarray]) -> None:
        """Fingerprint, sort, and pack each table into the CSR layout."""
        self._n_points = tables[0].shape[0] if tables else 0
        # Narrow point ids to int32 when they fit — halves the memory
        # traffic of the query-time gather and dedup passes.
        ids_dtype = (
            np.int32 if self._n_points <= np.iinfo(np.int32).max else np.int64
        )
        self._unique = []
        self._offsets = []
        base = []
        id_parts = []
        position = 0
        for comps in tables:
            fps = rows_to_fingerprints(comps)
            order = np.argsort(fps, kind="stable").astype(ids_dtype)
            sorted_fps = fps[order]
            unique, starts = np.unique(sorted_fps, return_index=True)
            self._unique.append(unique)
            self._offsets.append(
                np.append(starts, sorted_fps.size).astype(np.int64)
            )
            id_parts.append(order)
            base.append(position)
            position += order.size
        self._base = np.asarray(base, dtype=np.int64)
        self._ids = (
            np.concatenate(id_parts) if id_parts else np.empty(0, dtype=ids_dtype)
        )

    def bucket(self, table: int, components: np.ndarray) -> np.ndarray:
        """Fingerprint ``searchsorted`` lookup; widens ids to int64."""
        unique = self._unique[table]
        if unique.size == 0:
            return np.empty(0, dtype=np.int64)
        fp = rows_to_fingerprints(components)[0]
        pos = int(np.searchsorted(unique, fp))
        if pos >= unique.size or unique[pos] != fp:
            return np.empty(0, dtype=np.int64)
        offsets = self._offsets[table]
        lo = self._base[table] + offsets[pos]
        hi = self._base[table] + offsets[pos + 1]
        # _ids may be narrowed to int32; the bucket() contract is int64, so
        # widen here rather than leak a build-dependent dtype to callers.
        return np.asarray(self._ids[lo:hi], dtype=np.int64)

    def bucket_sizes(self) -> list[int]:
        """All bucket sizes across tables (for load diagnostics)."""
        return [
            int(size)
            for offsets in self._offsets
            for size in np.diff(offsets)
        ]

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The CSR arrays, verbatim: per-table ``unique``/``offsets``
        concatenated (sizes recorded so import can re-split), the shared
        ``ids``/``base`` arrays as-is.  ``ids`` keeps its build-time dtype
        (int32 when point ids fit), so the file is as small as the live
        index."""
        n_tables = len(self._unique)
        return {
            "unique": (
                np.concatenate(self._unique)
                if n_tables
                else np.empty(0, dtype=np.uint64)
            ),
            "unique_sizes": np.asarray(
                [u.size for u in self._unique], dtype=np.int64
            ),
            "offsets": (
                np.concatenate(self._offsets)
                if n_tables
                else np.empty(0, dtype=np.int64)
            ),
            "base": self._base,
            "ids": self._ids,
            "n_points": np.asarray([self._n_points], dtype=np.int64),
        }

    def import_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Rebind the CSR arrays from a payload without copying: per-table
        views are slices of the (possibly memory-mapped) concatenated
        arrays, so loading is O(L) header work regardless of ``n``."""
        sizes = np.asarray(arrays["unique_sizes"], dtype=np.int64)
        unique = arrays["unique"]
        offsets = arrays["offsets"]
        self._unique = (
            list(np.split(unique, np.cumsum(sizes)[:-1]))
            if sizes.size
            else []
        )
        self._offsets = (
            list(np.split(offsets, np.cumsum(sizes + 1)[:-1]))
            if sizes.size
            else []
        )
        self._base = arrays["base"]
        self._ids = arrays["ids"]
        self._n_points = int(np.asarray(arrays["n_points"])[0])

    def _lookup(
        self, comps: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve every (table, query) bucket in one ``searchsorted`` per
        table: returns ``(starts, counts)``, both shape ``(L, n_queries)``,
        giving each bucket's slice of the shared ``_ids`` array."""
        n_tables = len(comps)
        # (L, nq): one fingerprint per (table, query).
        qfps = np.stack([rows_to_fingerprints(c) for c in comps])
        n_queries = qfps.shape[1]
        starts = np.zeros((n_tables, n_queries), dtype=np.int64)
        counts = np.zeros((n_tables, n_queries), dtype=np.int64)
        for t in range(n_tables):
            unique = self._unique[t]
            if unique.size == 0:
                continue
            offsets = self._offsets[t]
            pos = np.searchsorted(unique, qfps[t])
            pos_c = np.minimum(pos, unique.size - 1)
            found = unique[pos_c] == qfps[t]
            lo = offsets[pos_c]
            starts[t] = np.where(found, lo + self._base[t], 0)
            counts[t] = np.where(found, offsets[pos_c + 1] - lo, 0)
        return starts, counts

    def _gather(
        self, flat_starts: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """One flat gather of many variable-length ``_ids`` slices,
        concatenated in order."""
        total = int(lengths.sum())
        if not total:
            return np.empty(0, dtype=self._ids.dtype)
        ends = np.cumsum(lengths)
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(ends - lengths, lengths)
            + np.repeat(flat_starts, lengths)
        )
        return self._ids[gather]

    def batch_query(
        self, comps: list[np.ndarray], max_retrieved: int | None = None
    ) -> list[CandidateResult]:
        """Vectorized probe: one lookup + gather, then per-query dedup."""
        n_tables = len(comps)
        starts, counts = self._lookup(comps)
        n_queries = counts.shape[1]

        tables_probed, truncated = budget_truncation(
            counts.T, n_tables, max_retrieved
        )
        included = np.arange(n_tables)[:, None] < tables_probed[None, :]
        counts = np.where(included, counts, 0)
        retrieved = counts.sum(axis=0)

        # One gather for all (query, table) buckets, query-major so each
        # query's hits are contiguous and in table order.
        hits = self._gather(starts.T.ravel(), counts.T.ravel())
        query_ends = np.cumsum(retrieved)

        # Per-query first-seen dedup via the shared stamp idiom; the
        # scratch array spans the id space and is reused across queries.
        stamp = np.empty(self._n_points, dtype=self._ids.dtype)
        all_positions = np.arange(
            int(retrieved.max(initial=0)), dtype=self._ids.dtype
        )
        results: list[CandidateResult] = []
        for i in range(n_queries):
            segment = hits[query_ends[i] - retrieved[i] : query_ends[i]]
            ordered = first_seen_dedup(segment, stamp, all_positions)
            results.append(
                CandidateResult(
                    ordered,
                    QueryStats(
                        retrieved=int(retrieved[i]),
                        unique_candidates=len(ordered),
                        tables_probed=int(tables_probed[i]),
                        truncated=bool(truncated[i]),
                    ),
                )
            )
        return results

    def batch_query_hits(
        self, comps: list[np.ndarray], max_hits: int | None = None
    ) -> BatchHits:
        """Vectorized bulk hit streams: batched ``searchsorted`` over all
        (table, query) buckets, exact per-hit ``max_hits`` clipping computed
        on the count matrix (so clipped tails are never even gathered), and
        one flat gather for every query's stream."""
        starts, counts = self._lookup(comps)
        n_queries = counts.shape[1]
        if max_hits is None:
            allowed = counts
            truncated = np.zeros(n_queries, dtype=bool)
            full_counts = None
        else:
            full_counts = counts.T.copy()
            # Hits remaining in each query's budget when table t begins:
            # clip each bucket to it, cutting the stream mid-bucket at
            # exactly max_hits hits.
            before = np.cumsum(counts, axis=0) - counts
            allowed = np.minimum(
                counts, np.clip(max_hits - before, 0, None)
            )
            truncated = allowed.sum(axis=0) == max_hits
        lengths = allowed.sum(axis=0)
        hits = self._gather(starts.T.ravel(), allowed.T.ravel())
        offsets = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return BatchHits(
            hits=np.asarray(hits, dtype=np.int64),
            offsets=offsets,
            table_counts=allowed.T.copy(),
            truncated=truncated,
            full_table_counts=full_counts,
        )


BACKENDS: dict[str, type[IndexBackend]] = {
    DictBackend.name: DictBackend,
    PackedBackend.name: PackedBackend,
}


def make_backend(spec: str | IndexBackend | type[IndexBackend]) -> IndexBackend:
    """Resolve a backend spec: a name (``"dict"``/``"packed"``), an
    :class:`IndexBackend` subclass, or a ready instance."""
    if isinstance(spec, IndexBackend):
        return spec
    if isinstance(spec, type) and issubclass(spec, IndexBackend):
        return spec()
    if isinstance(spec, str):
        try:
            return BACKENDS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown index backend {spec!r}; available: {sorted(BACKENDS)}"
            ) from None
    raise TypeError(f"backend must be a name, class, or instance, got {spec!r}")
