"""Output-sensitive spherical range reporting (Section 6.3, Theorem 6.5).

Report *all* points within distance ``r`` of a query.  With a classical
(monotone decreasing) LSH the very closest points collide in almost every
repetition, so each is retrieved ``~L`` times — pure waste.  A
*step-function* CPF (flat at ``f_min ~ f_max`` on ``[0, r]``) retrieves
every near point with roughly equal probability per table, so the expected
number of duplicate retrievals per reported point is ``O(f_max / f_min)``
(Theorem 6.5): constant when the step is flat.

:class:`RangeReportingIndex` runs the ``L = ceil(c / f_min)`` repetitions
and reports duplicate statistics so the benchmark can compare step CPFs
against classical LSH head-to-head.  It is
:class:`~repro.index.queryable.Queryable`: :meth:`RangeReportingIndex.query`
drains the hit stream for one query, :meth:`RangeReportingIndex.batch_query`
drains a whole block through the backend's batched hits-with-multiplicity
path with identical per-query results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.family import DSHFamily
from repro.index.backends import IndexBackend, QueryStats
from repro.index.lsh_index import DSHIndex
from repro.index.queryable import QueryResult
from repro.utils.rng import ensure_rng

__all__ = ["RangeReport", "RangeReportingIndex"]


@dataclass(frozen=True)
class RangeReport(QueryResult):
    """Result of one range-reporting query.

    The Theorem 6.5 cost model is
    ``O(d n^rho* + d |S| f_max / f_min)``: the first term pays for
    far-candidate noise, the second for re-retrieving in-range points.  The
    report separates the two so the ``f_max / f_min`` effect is measurable.

    Attributes
    ----------
    stats:
        Retrieval work: ``retrieved`` counts all candidate retrievals with
        multiplicity, ``unique_candidates`` the distinct candidates
        (reported or not).
    indices:
        Distinct reported point indices (distance ``<= r_report``).
    in_range_retrievals:
        Retrievals (with multiplicity) of reported points only.
    retrievals_per_report:
        ``in_range_retrievals / max(1, |S|)`` — the empirical
        output-sensitivity figure, ``<= L f_max`` and within a factor
        ``f_max / f_min`` of the minimum possible for recall ``1 - e^{-L
        f_min}``.
    """

    indices: tuple[int, ...]
    in_range_retrievals: int

    @property
    def retrievals_per_report(self) -> float:
        """In-range retrievals amortized over reported points (Theorem 6.5
        charges ``O(f_max / f_min)`` per report)."""
        return self.in_range_retrievals / max(1, len(self.indices))

    @property
    def far_retrievals(self) -> int:
        """Retrievals of out-of-range candidates (the ``n^rho*`` term)."""
        return self.retrieved - self.in_range_retrievals


class RangeReportingIndex:
    """Report all points within distance ``r_report`` of a query.

    Parameters
    ----------
    points:
        Data set, shape ``(n, d)``.
    family:
        DSH family; a step-CPF family (:mod:`repro.families.step`) gives
        output-sensitive behaviour, a classical LSH gives the wasteful
        baseline.
    r_report:
        Reporting radius: every retrieved candidate within this distance is
        returned (Theorem 6.5's ``r_+`` filtering happens implicitly: far
        candidates are discarded after the distance check).
    distance:
        Vectorized ``(query (d,), points (m, d)) -> (m,)`` distance.
    n_tables:
        Number of repetitions ``L`` (``~ceil(c / f_min)`` for recall
        ``1 - e^{-c}`` on the flat region).
    rng:
        Seed or generator.
    backend:
        Storage backend forwarded to :class:`DSHIndex` (``"packed"`` by
        default).
    workers:
        Thread count for the build's per-table hashing (forwarded to
        :meth:`DSHIndex.build`); ``None`` hashes serially.
    """

    def __init__(
        self,
        points: np.ndarray,
        family: DSHFamily,
        r_report: float,
        distance: Callable[[np.ndarray, np.ndarray], np.ndarray],
        n_tables: int,
        rng: int | np.random.Generator | None = None,
        backend: str | IndexBackend = "packed",
        workers: int | None = None,
    ) -> None:
        if r_report <= 0:
            raise ValueError(f"r_report must be positive, got {r_report}")
        self.points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self.r_report = float(r_report)
        self.distance = distance
        self._index = DSHIndex(
            family, n_tables, ensure_rng(rng), backend=backend
        ).build(self.points, workers=workers)

    @classmethod
    def _restore(
        cls,
        *,
        points: np.ndarray,
        r_report: float,
        distance: Callable[[np.ndarray, np.ndarray], np.ndarray],
        index: DSHIndex,
    ) -> "RangeReportingIndex":
        """Persistence hook: revive an instance around an already-built
        (typically memory-mapped) :class:`DSHIndex` — no hashing, no point
        copies."""
        self = object.__new__(cls)
        self.points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self.r_report = float(r_report)
        self.distance = distance
        self._index = index
        return self

    @property
    def backend(self) -> str:
        """Name of the underlying storage backend."""
        return self._index.backend

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._index.n_points

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(family={type(self._index.family).__name__}, "
            f"L={self._index.n_tables}, backend={self.backend!r}, "
            f"n_points={self.n_points}, r_report={self.r_report})"
        )

    def _report_from_hits(
        self, query_point: np.ndarray, hits: np.ndarray
    ) -> RangeReport:
        """Turn one query's raw hit stream (duplicates preserved, probe
        order) into a :class:`RangeReport`: count multiplicities with one
        ``np.unique``, keep first-seen candidate order, distance-check the
        distinct candidates."""
        if hits.size:
            unique, first_seen, multiplicity = np.unique(
                hits, return_index=True, return_counts=True
            )
            order = np.argsort(first_seen, kind="stable")
            cand = unique[order]
            multiplicity = multiplicity[order]
            dists = self.distance(query_point, self.points[cand])
            in_range = dists <= self.r_report
            reported = tuple(int(i) for i in cand[in_range])
            in_range_retrievals = int(multiplicity[in_range].sum())
            n_unique = int(unique.size)
        else:
            reported = ()
            in_range_retrievals = 0
            n_unique = 0
        return RangeReport(
            stats=QueryStats(
                retrieved=int(hits.size),
                unique_candidates=n_unique,
                tables_probed=self._index.n_tables,
            ),
            indices=reported,
            in_range_retrievals=in_range_retrievals,
        )

    def query(self, query_point: np.ndarray) -> RangeReport:
        """Retrieve candidates from all tables, report those within range.

        Range reporting always drains every table, so the candidate stream
        comes from :meth:`DSHIndex.query_hits` in bulk.
        """
        query_point = np.asarray(query_point, dtype=np.float64).ravel()
        hits = self._index.query_hits(query_point)
        return self._report_from_hits(query_point, hits)

    def batch_query(self, query_points: np.ndarray) -> list[RangeReport]:
        """Run :meth:`query` for every row of ``query_points``, vectorized.

        All queries are hashed per table in one call and every
        (query, table) bucket is resolved through the backend's batched
        hits-with-multiplicity path (one ``searchsorted`` + flat gather on
        the packed backend); per-query reports are then identical to the
        single-query loop (enforced by the batch-vs-loop parity suite)."""
        queries = np.atleast_2d(np.asarray(query_points, dtype=np.float64))
        block = self._index.batch_query_hits(queries)
        return [
            self._report_from_hits(queries[i], block.segment(i))
            for i in range(queries.shape[0])
        ]

    def recall(self, query_point: np.ndarray, true_indices: set[int]) -> float:
        """Fraction of ``true_indices`` (ground-truth in-range points)
        recovered by one query."""
        if not true_indices:
            return 1.0
        report = self.query(query_point)
        return len(set(report.indices) & true_indices) / len(true_indices)
