"""The common query surface shared by every Section 6 application.

All application indexes (raw candidate retrieval, annulus search,
hyperplane queries, range reporting) expose the same two entry points:

* ``query(point) -> Result`` — one query point, one result;
* ``batch_query(points) -> list[Result]`` — a ``(n, d)`` block of query
  points, vectorized end to end where the backend supports it, with results
  **identical** to running ``query`` in a loop (enforced differentially by
  ``tests/test_app_batch_parity.py``).

Every result carries a :class:`~repro.index.backends.QueryStats` describing
the retrieval work the query performed — ``retrieved`` (hits with
multiplicity), ``unique_candidates``, ``tables_probed``, ``truncated`` —
so cost accounting is uniform across applications.  :class:`QueryResult` is
the dataclass base the application results extend;
:class:`~repro.index.backends.CandidateResult` (the raw-index result) is a
tuple-compatible ``NamedTuple`` for backward compatibility but satisfies
the same ``.stats`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol, runtime_checkable

import numpy as np

from repro.index.backends import CandidateResult, QueryStats

__all__ = ["QueryStats", "QueryResult", "Queryable", "CandidateResult"]


@dataclass(frozen=True)
class QueryResult:
    """Base class for application query results: carries the
    :class:`QueryStats` of the retrieval work behind the answer."""

    stats: QueryStats

    @property
    def retrieved(self) -> int:
        """Hits examined, with multiplicity (the query's work)."""
        return self.stats.retrieved

    @property
    def unique_candidates(self) -> int:
        """Distinct data points among the examined hits."""
        return self.stats.unique_candidates


@runtime_checkable
class Queryable(Protocol):
    """Structural protocol every application index satisfies.

    ``isinstance(index, Queryable)`` holds for :class:`DSHIndex`,
    :class:`AnnulusIndex`, :class:`HyperplaneIndex`, and
    :class:`RangeReportingIndex`; each ``query`` returns an object with a
    ``.stats`` attribute and ``batch_query`` returns one such object per
    query row, element-for-element identical to a ``query`` loop.
    """

    def query(
        self, query_point: np.ndarray
    ) -> Any:  # pragma: no cover - protocol
        """One query point → one ``.stats``-carrying result."""
        ...

    def batch_query(
        self, query_points: np.ndarray
    ) -> Iterable[Any]:  # pragma: no cover - protocol
        """``(n, d)`` query block → one result per row, loop-identical."""
        ...
