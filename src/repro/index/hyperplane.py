"""Hyperplane queries (Section 6.1).

Searching a set of unit vectors for one (approximately) orthogonal to a
query — i.e. closest to the query's hyperplane — is the annulus problem
with the interval centered at inner product 0.  This was previously solved
with ad-hoc asymmetric LSH [52]; in the DSH framework it falls out of the
Section 6.2 family with ``alpha_max = 0``, achieving
``rho* = (1 - alpha^2)/(1 + alpha^2)`` for reporting tolerance ``alpha``
(Section 6.1 discussion).

:class:`HyperplaneIndex` is :class:`~repro.index.queryable.Queryable`:
``query`` / ``batch_query`` delegate to the underlying annulus machinery,
so batched hyperplane queries ride the same vectorized multi-query path.
"""

from __future__ import annotations

import numpy as np

from repro.index.annulus import AnnulusIndex, AnnulusQueryResult, sphere_annulus_index
from repro.index.backends import IndexBackend
from repro.utils.validation import check_in_open_interval

__all__ = ["HyperplaneIndex", "hyperplane_rho"]


def hyperplane_rho(alpha: float) -> float:
    """The query exponent ``rho = (1 - alpha^2)/(1 + alpha^2)`` promised in
    Section 6.1 for returning a vector with ``|<x, q>| <= alpha`` whenever
    an orthogonal vector exists."""
    check_in_open_interval(alpha, 0.0, 1.0, "alpha")
    return (1.0 - alpha**2) / (1.0 + alpha**2)


class HyperplaneIndex:
    """Find data vectors approximately orthogonal to a query vector.

    Parameters
    ----------
    points:
        Unit vectors, shape ``(n, d)``.
    alpha:
        Reporting tolerance: returned points satisfy ``|<x, q>| <= alpha``.
    t:
        Filter threshold of the underlying annulus family.
    n_tables:
        Repetition count ``L``.
    budget_factor:
        Early termination after ``budget_factor * L`` retrievals
        (forwarded to :class:`AnnulusIndex`; the Theorem 6.1 proof uses 8).
    rng:
        Seed or generator.
    backend:
        Storage backend forwarded to the underlying index (``"packed"`` by
        default).
    workers:
        Thread count for the build's per-table hashing; ``None`` hashes
        serially.
    """

    def __init__(
        self,
        points: np.ndarray,
        alpha: float,
        t: float,
        n_tables: int,
        budget_factor: float = 8.0,
        rng: int | np.random.Generator | None = None,
        backend: str | IndexBackend = "packed",
        workers: int | None = None,
    ) -> None:
        check_in_open_interval(alpha, 0.0, 1.0, "alpha")
        self.alpha = float(alpha)
        self._annulus: AnnulusIndex = sphere_annulus_index(
            points,
            alpha_interval=(-alpha, alpha),
            t=t,
            n_tables=n_tables,
            budget_factor=budget_factor,
            rng=rng,
            backend=backend,
            workers=workers,
        )

    @classmethod
    def _restore(cls, *, alpha: float, annulus: AnnulusIndex) -> "HyperplaneIndex":
        """Persistence hook: wrap an already-revived annulus index."""
        self = object.__new__(cls)
        self.alpha = float(alpha)
        self._annulus = annulus
        return self

    @property
    def backend(self) -> str:
        """Name of the underlying storage backend."""
        return self._annulus.backend

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._annulus.n_points

    def __repr__(self) -> str:
        inner = self._annulus._index
        return (
            f"{type(self).__name__}(family={type(inner.family).__name__}, "
            f"L={inner.n_tables}, backend={self.backend!r}, "
            f"n_points={self.n_points}, alpha={self.alpha})"
        )

    def query(self, query_point: np.ndarray) -> AnnulusQueryResult:
        """Return a point with ``|<x, q>| <= alpha`` if the search succeeds."""
        return self._annulus.query(np.asarray(query_point, dtype=np.float64))

    def batch_query(self, query_points: np.ndarray) -> list[AnnulusQueryResult]:
        """Run :meth:`query` for every row of ``query_points`` through the
        vectorized annulus multi-query path (identical results to a loop)."""
        return self._annulus.batch_query(query_points)
