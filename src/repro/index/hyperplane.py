"""Hyperplane queries (Section 6.1).

Searching a set of unit vectors for one (approximately) orthogonal to a
query — i.e. closest to the query's hyperplane — is the annulus problem
with the interval centered at inner product 0.  This was previously solved
with ad-hoc asymmetric LSH [52]; in the DSH framework it falls out of the
Section 6.2 family with ``alpha_max = 0``, achieving
``rho* = (1 - alpha^2)/(1 + alpha^2)`` for reporting tolerance ``alpha``
(Section 6.1 discussion).
"""

from __future__ import annotations

import numpy as np

from repro.index.annulus import AnnulusIndex, AnnulusQueryResult, sphere_annulus_index
from repro.index.backends import IndexBackend
from repro.utils.validation import check_in_open_interval

__all__ = ["HyperplaneIndex", "hyperplane_rho"]


def hyperplane_rho(alpha: float) -> float:
    """The query exponent ``rho = (1 - alpha^2)/(1 + alpha^2)`` promised in
    Section 6.1 for returning a vector with ``|<x, q>| <= alpha`` whenever
    an orthogonal vector exists."""
    check_in_open_interval(alpha, 0.0, 1.0, "alpha")
    return (1.0 - alpha**2) / (1.0 + alpha**2)


class HyperplaneIndex:
    """Find data vectors approximately orthogonal to a query vector.

    Parameters
    ----------
    points:
        Unit vectors, shape ``(n, d)``.
    alpha:
        Reporting tolerance: returned points satisfy ``|<x, q>| <= alpha``.
    t:
        Filter threshold of the underlying annulus family.
    n_tables:
        Repetition count ``L``.
    rng:
        Seed or generator.
    backend:
        Storage backend forwarded to the underlying index (``"packed"`` by
        default).
    """

    def __init__(
        self,
        points: np.ndarray,
        alpha: float,
        t: float,
        n_tables: int,
        rng: int | np.random.Generator | None = None,
        backend: str | IndexBackend = "packed",
    ):
        check_in_open_interval(alpha, 0.0, 1.0, "alpha")
        self.alpha = float(alpha)
        self._annulus: AnnulusIndex = sphere_annulus_index(
            points,
            alpha_interval=(-alpha, alpha),
            t=t,
            n_tables=n_tables,
            rng=rng,
            backend=backend,
        )

    def query(self, query_point: np.ndarray) -> AnnulusQueryResult:
        """Return a point with ``|<x, q>| <= alpha`` if the search succeeds."""
        return self._annulus.query(np.asarray(query_point, dtype=np.float64))
