"""Euclidean DSH via shifted random-projection buckets (Section 4.2).

Equation (2) of the paper extends the classical p-stable LSH of Datar et
al. [23] with a bucket shift ``k``:

    h(x) = floor((<a, x> + b) / w),      g(y) = floor((<a, y> + b) / w) + k,

with ``a ~ N(0, I_d)`` Gaussian and ``b ~ U[0, w)``.  A collision
``h(x) = g(y)`` requires the projected difference ``s = <a, x - y>``
(distributed ``N(0, Delta^2)`` at distance ``Delta``) to land near ``k w``;
averaging over ``b`` gives the triangular window

    f(Delta) = E_s[ max(0, 1 - |s - k w| / w) ],

which has the closed form implemented by :func:`shifted_collision_probability`
(derived with standard Gaussian integrals; equals Datar et al.'s formula at
``k = 0``).  For ``k >= 1`` the CPF is *unimodal* — zero at distance 0,
peaked where ``N(0, Delta^2)`` puts the most mass near ``k w``, and slowly
decaying for large ``Delta`` — exactly Figure 1 (``k = 3, w = 1``).

Theorem 4.1: with ``w = w(c) <= sqrt(2 pi) / (2 c)`` and growing ``k``,

    rho_- = ln(1/f(r)) / ln(1/f(r/c)) = (1/c^2) (1 + O(1/k)),

a near-optimal collision gap towards small distances.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.core.cpf import CPF
from repro.core.family import DSHFamily, HashPair
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "shifted_collision_probability",
    "log_shifted_collision_probability",
    "ShiftedEuclideanCPF",
    "ShiftedGaussianProjection",
    "theorem41_w",
    "theorem41_rho_minus",
]


def shifted_collision_probability(
    delta: float | np.ndarray, k: int, w: float
) -> float | np.ndarray:
    """Closed-form CPF of the equation-(2) family at distance ``delta``.

    ``f(Delta) = int phi_Delta(s) max(0, 1 - |s - k w|/w) ds`` with
    ``phi_Delta`` the ``N(0, Delta^2)`` density.  Vectorized over ``delta``.

    At ``Delta = 0`` the value is ``1`` for ``k = 0`` and ``0`` otherwise
    (coinciding points always share a bucket, and can never be ``k`` apart).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    check_positive(w, "w")
    delta_arr = np.atleast_1d(np.asarray(delta, dtype=np.float64))
    if np.any(delta_arr < 0):
        raise ValueError("distances must be non-negative")
    out = np.empty_like(delta_arr)
    center = k * w
    zero_mask = delta_arr == 0.0
    out[zero_mask] = 1.0 if k == 0 else 0.0
    sigma = delta_arr[~zero_mask]
    if sigma.size:
        lo, mid, hi = center - w, center, center + w
        cdf = lambda v: norm.cdf(v / sigma)  # noqa: E731
        pdf = lambda v: norm.pdf(v / sigma)  # noqa: E731
        left = (1.0 - center / w) * (cdf(mid) - cdf(lo)) + (sigma / w) * (
            pdf(lo) - pdf(mid)
        )
        right = (1.0 + center / w) * (cdf(hi) - cdf(mid)) - (sigma / w) * (
            pdf(mid) - pdf(hi)
        )
        out[~zero_mask] = left + right
    result = np.clip(out, 0.0, 1.0)
    return result if np.ndim(delta) else float(result[0])


def log_shifted_collision_probability(delta: float, k: int, w: float) -> float:
    """``ln f(Delta)`` for the equation-(2) family, stable in the far tail.

    The Theorem 4.1 regime pushes the triangular window ``[k w - w, k w + w]``
    deep into the tail of ``N(0, Delta^2)`` where the closed form underflows
    (``f`` can be ``e^{-800}``).  This evaluates

        ln f = M + ln( int exp(-s^2/(2 Delta^2) - M) tri(s) ds / (sqrt(2 pi) Delta) )

    with ``M`` the maximum exponent over the window, by trapezoidal
    integration on a fine grid — accurate to ~1e-6 in ``ln f``, which is
    ample for rho ratios.
    """
    if k < 1:
        raise ValueError(f"log-space evaluation requires k >= 1, got {k}")
    check_positive(w, "w")
    check_positive(delta, "delta")
    lo, hi = (k - 1) * w, (k + 1) * w
    grid = np.linspace(lo, hi, 8001)
    exponent = -(grid**2) / (2.0 * delta**2)
    m = float(exponent.max())
    tri = 1.0 - np.abs(grid - k * w) / w
    integrand = np.exp(exponent - m) * tri
    integral = float(np.trapezoid(integrand, grid))
    if integral <= 0.0:
        raise ValueError(f"vanishing collision probability at delta={delta}")
    return m + np.log(integral) - 0.5 * np.log(2 * np.pi) - np.log(delta)


class ShiftedEuclideanCPF(CPF):
    """Analytic CPF of :class:`ShiftedGaussianProjection` (distance arg)."""

    def __init__(self, k: int, w: float) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        check_positive(w, "w")
        super().__init__("distance", f"shifted Euclidean (k={k}, w={w:g})")
        self.k = int(k)
        self.w = float(w)

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(shifted_collision_probability(values, self.k, self.w))


class ShiftedGaussianProjection(DSHFamily):
    """The equation-(2) family ``R_{k,w}``.

    Parameters
    ----------
    d:
        Ambient dimension.
    w:
        Bucket width ``w > 0``.
    k:
        Bucket shift; ``k = 0`` recovers the symmetric LSH of Datar et
        al. [23], ``k >= 1`` gives the unimodal anti-LSH of Figure 1.
    """

    def __init__(self, d: int, w: float, k: int = 0) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        check_positive(w, "w")
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.d = int(d)
        self.w = float(w)
        self.k = int(k)

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw one random-projection bucket pair, query side shifted by ``k``."""
        rng = ensure_rng(rng)
        a = rng.standard_normal(self.d)
        b = float(rng.uniform(0.0, self.w))
        w, k, d = self.w, self.k, self.d

        def bucket(points: np.ndarray) -> np.ndarray:
            pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
            if pts.shape[1] != d:
                raise ValueError(f"expected dimension {d}, got {pts.shape[1]}")
            return np.floor((pts @ a + b) / w).astype(np.int64)

        return HashPair(
            h=bucket,
            g=lambda points: bucket(points) + k,
            meta={"b": b, "w": w, "k": k},
        )

    @property
    def cpf(self) -> CPF:
        """The shifted-collision CPF in the distance argument."""
        return ShiftedEuclideanCPF(self.k, self.w)

    @property
    def is_symmetric(self) -> bool:
        """Symmetric exactly when the query shift ``k`` is zero."""
        return self.k == 0


def theorem41_w(c: float) -> float:
    """The bucket width ``w(c) = sqrt(2 pi) / (2 c)`` used in the proof of
    Theorem 4.1 (any ``w <= sqrt(2 pi)/(2 c)`` works; this is the largest)."""
    if c <= 1:
        raise ValueError(f"approximation factor c must be > 1, got {c}")
    return float(np.sqrt(2 * np.pi) / (2 * c))


def theorem41_rho_minus(k: int, c: float, w: float | None = None, r: float = 1.0) -> float:
    """``rho_- = ln(1/f(r)) / ln(1/f(r/c))`` for the family ``R_{k,w}``.

    Theorem 4.1 predicts ``rho_- * c^2 -> 1`` as ``k`` grows (at rate
    ``O(1/k)``); the benchmark sweeps ``k`` to exhibit exactly that.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1 for an anti-LSH gap, got {k}")
    if c <= 1:
        raise ValueError(f"approximation factor c must be > 1, got {c}")
    check_positive(r, "r")
    if w is None:
        w = theorem41_w(c) * r
    log_f_r = log_shifted_collision_probability(r, k, w)
    log_f_near = log_shifted_collision_probability(r / c, k, w)
    if log_f_r >= 0.0 or log_f_near >= 0.0:
        raise ValueError(
            f"degenerate collision probabilities ln f(r)={log_f_r}, "
            f"ln f(r/c)={log_f_near}; increase k or adjust w"
        )
    return float(log_f_r / log_f_near)
