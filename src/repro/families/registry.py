"""Name-based registry of constructible DSH families.

The spec-driven construction layer (:mod:`repro.api`) needs to build any
family from plain serializable data: a *name* plus a flat parameter dict.
This module maps registered names to constructors through **validated
parameter dataclasses** — unknown parameter names, missing required
parameters, and out-of-domain values all fail with a clear ``ValueError``
at the API boundary instead of deep inside a family's ``__init__``.

Every entry also understands the generic ``power`` parameter: ``power=k``
wraps the constructed family in
:class:`~repro.core.combinators.PoweredFamily` (Lemma 1.4(a)
concatenation), the standard way to sharpen a family's CPF for indexing.

Registered names (see :func:`family_names`): ``simhash``,
``bit_sampling``, ``anti_bit_sampling``, ``euclidean_lsh``,
``annulus_sphere``, ``hamming_annulus``, ``cross_polytope``,
``negated_cross_polytope``, ``step_euclidean``.  Third-party families can
be added with :func:`register_family`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.combinators import PoweredFamily
from repro.core.family import DSHFamily
from repro.families.annulus_sphere import AnnulusFamily
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.families.cross_polytope import CrossPolytope, negated_cross_polytope
from repro.families.euclidean_lsh import ShiftedGaussianProjection
from repro.families.hamming_annulus import HammingAnnulusFamily
from repro.families.simhash import SimHash
from repro.families.step import design_step_family

__all__ = [
    "FamilyEntry",
    "FAMILY_REGISTRY",
    "DimParams",
    "EuclideanLSHParams",
    "AnnulusSphereParams",
    "HammingAnnulusParams",
    "StepEuclideanParams",
    "register_family",
    "family_names",
    "family_entry",
    "validate_family_params",
    "check_power",
    "make_family",
]


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class DimParams:
    """Parameters of families needing only an ambient dimension."""

    d: int

    def __post_init__(self) -> None:
        _check(int(self.d) >= 1, f"d must be >= 1, got {self.d}")


@dataclass(frozen=True)
class EuclideanLSHParams:
    """Shifted random-projection family (Section 4.2, equation (2))."""

    d: int
    w: float
    k: int = 0

    def __post_init__(self) -> None:
        _check(int(self.d) >= 1, f"d must be >= 1, got {self.d}")
        _check(float(self.w) > 0, f"w must be positive, got {self.w}")
        _check(int(self.k) >= 0, f"k must be >= 0, got {self.k}")


@dataclass(frozen=True)
class AnnulusSphereParams:
    """The Section 6.2 sphere family ``D+ (x) D-`` peaking at ``alpha_max``."""

    d: int
    alpha_max: float
    t: float
    m_plus: int | None = None
    m_minus: int | None = None

    def __post_init__(self) -> None:
        _check(int(self.d) >= 1, f"d must be >= 1, got {self.d}")
        _check(
            -1.0 < float(self.alpha_max) < 1.0,
            f"alpha_max must lie in (-1, 1), got {self.alpha_max}",
        )
        _check(float(self.t) > 0, f"t must be positive, got {self.t}")


@dataclass(frozen=True)
class HammingAnnulusParams:
    """Unimodal family on the Hamming cube peaking at relative distance
    ``peak``."""

    d: int
    peak: float
    k2: int = 4

    def __post_init__(self) -> None:
        _check(int(self.d) >= 1, f"d must be >= 1, got {self.d}")
        _check(
            0.0 < float(self.peak) < 1.0,
            f"peak must lie in (0, 1), got {self.peak}",
        )
        _check(int(self.k2) >= 1, f"k2 must be >= 1, got {self.k2}")


@dataclass(frozen=True)
class StepEuclideanParams:
    """Figure 2 step-CPF mixture: ~``level``-flat on ``[0, r_flat]``."""

    d: int
    r_flat: float
    level: float
    n_components: int = 6
    w: float | None = None

    def __post_init__(self) -> None:
        _check(int(self.d) >= 1, f"d must be >= 1, got {self.d}")
        _check(float(self.r_flat) > 0, f"r_flat must be positive, got {self.r_flat}")
        _check(
            0.0 < float(self.level) <= 0.5,
            f"level must lie in (0, 0.5], got {self.level}",
        )
        _check(
            int(self.n_components) >= 1,
            f"n_components must be >= 1, got {self.n_components}",
        )


@dataclass(frozen=True)
class FamilyEntry:
    """One registered family: a constructor plus its parameter dataclass."""

    name: str
    params_type: type
    build: Callable[[Any], DSHFamily]
    description: str = ""

    def make(self, params: Any) -> DSHFamily:
        """Construct the family from a validated parameter instance."""
        return self.build(params)


FAMILY_REGISTRY: dict[str, FamilyEntry] = {}


def register_family(
    name: str,
    params_type: type,
    build: Callable[[Any], DSHFamily],
    description: str = "",
    overwrite: bool = False,
) -> FamilyEntry:
    """Register a constructible family under ``name``.

    ``params_type`` must be a dataclass whose ``__post_init__`` validates
    value domains; ``build`` receives a validated instance and returns the
    family.  Re-registering an existing name requires ``overwrite=True``.
    """
    if not dataclasses.is_dataclass(params_type):
        raise TypeError(
            f"params_type for {name!r} must be a dataclass, got {params_type!r}"
        )
    if name in FAMILY_REGISTRY and not overwrite:
        raise ValueError(
            f"family {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    entry = FamilyEntry(
        name=name, params_type=params_type, build=build, description=description
    )
    FAMILY_REGISTRY[name] = entry
    return entry


def family_names() -> list[str]:
    """Sorted names of all registered families."""
    return sorted(FAMILY_REGISTRY)


def family_entry(name: str) -> FamilyEntry:
    """Look up a registry entry; unknown names get a listing of valid ones."""
    try:
        return FAMILY_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown family {name!r}; registered families: {family_names()}"
        ) from None


def validate_family_params(name: str, params: dict[str, Any]) -> Any:
    """Validate a raw parameter dict against ``name``'s dataclass.

    Returns the validated dataclass instance.  Unknown keys, missing
    required keys, and out-of-domain values raise ``ValueError`` naming the
    family and its accepted parameters.
    """
    entry = family_entry(name)
    fields = {f.name for f in dataclasses.fields(entry.params_type)}
    unknown = set(params) - fields
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for family {name!r}; "
            f"accepted: {sorted(fields)}"
        )
    required = {
        f.name
        for f in dataclasses.fields(entry.params_type)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    }
    missing = required - set(params)
    if missing:
        raise ValueError(
            f"missing required parameter(s) {sorted(missing)} for family "
            f"{name!r}"
        )
    return entry.params_type(**params)


def check_power(power: Any) -> int:
    """Validate the generic ``power`` parameter: a whole number ``>= 1``
    (``power=2.5`` must fail loudly, not silently truncate)."""
    as_int = int(power)
    if as_int != power or as_int < 1:
        raise ValueError(f"power must be an integer >= 1, got {power!r}")
    return as_int


def make_family(name: str, power: int = 1, **params: Any) -> DSHFamily:
    """Construct a registered family from its name and flat parameters.

    ``power > 1`` concatenates ``power`` independent draws
    (:class:`PoweredFamily`, Lemma 1.4(a)) — the standard sharpening knob
    for indexing, uniform across families.
    """
    power = check_power(power)
    family = family_entry(name).make(validate_family_params(name, params))
    if power > 1:
        family = PoweredFamily(family, power)
    return family


register_family(
    "simhash",
    DimParams,
    lambda p: SimHash(p.d),
    "Charikar's hyperplane-rounding LSH; CPF 1 - arccos(alpha)/pi",
)
register_family(
    "bit_sampling",
    DimParams,
    lambda p: BitSampling(p.d),
    "Hamming bit-sampling LSH; CPF 1 - t (Section 4.1)",
)
register_family(
    "anti_bit_sampling",
    DimParams,
    lambda p: AntiBitSampling(p.d),
    "Anti bit-sampling; *increasing* CPF t (Section 4.1)",
)
register_family(
    "euclidean_lsh",
    EuclideanLSHParams,
    lambda p: ShiftedGaussianProjection(p.d, w=p.w, k=p.k),
    "Shifted Gaussian projection, unimodal CPF peaking near k*w "
    "(Section 4.2, eq. (2))",
)
register_family(
    "annulus_sphere",
    AnnulusSphereParams,
    lambda p: AnnulusFamily(
        p.d, alpha_max=p.alpha_max, t=p.t, m_plus=p.m_plus, m_minus=p.m_minus
    ),
    "Sphere annulus family D+ (x) D- peaking at alpha_max "
    "(Section 6.2, Theorem 6.2)",
)
register_family(
    "hamming_annulus",
    HammingAnnulusParams,
    lambda p: HammingAnnulusFamily(p.d, peak=p.peak, k2=p.k2),
    "Unimodal Hamming family peaking at relative distance `peak`",
)
register_family(
    "cross_polytope",
    DimParams,
    lambda p: CrossPolytope(p.d),
    "Cross-polytope LSH on the sphere (Section 2.1)",
)
register_family(
    "negated_cross_polytope",
    DimParams,
    lambda p: negated_cross_polytope(p.d),
    "Cross-polytope composed with x -> -x: increasing CPF (Corollary 2.2)",
)
register_family(
    "step_euclidean",
    StepEuclideanParams,
    lambda p: design_step_family(
        p.d,
        r_flat=p.r_flat,
        level=p.level,
        n_components=p.n_components,
        w=p.w,
    ).family,
    "Figure 2 step-CPF mixture, ~level-flat on [0, r_flat] "
    "(Sections 6.3-6.4)",
)
