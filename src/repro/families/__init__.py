"""Concrete DSH families from the paper.

* :mod:`repro.families.bit_sampling` — bit-sampling, anti bit-sampling and
  their scaled/biased variants (Sections 4.1 and 5 / Theorem 5.2 blocks).
* :mod:`repro.families.simhash` — Charikar's SimHash (Section 5).
* :mod:`repro.families.cross_polytope` — cross-polytope LSH and its negated
  DSH (Section 2.1, Theorem 2.1 / Corollary 2.2).
* :mod:`repro.families.filters` — Gaussian filter families D+/D-
  (Section 2.2, Theorem 1.2, Appendix A.1).
* :mod:`repro.families.euclidean_lsh` — shifted random-projection family in
  Euclidean space (Section 4.2, equation (2), Theorem 4.1, Figure 1).
* :mod:`repro.families.polynomial_hamming` — polynomial CPFs in Hamming
  space via root factorization (Theorem 5.2, Appendix C.3).
* :mod:`repro.families.valiant` — polynomial CPFs on the sphere via
  asymmetric embeddings (Theorem 5.1, Appendix C.2, Figure 4).
* :mod:`repro.families.annulus_sphere` — the unimodal annulus family
  D = D+ (x) D- (Section 6.2, Theorem 6.2, Figure 3).
* :mod:`repro.families.step` — step-function CPFs from mixtures
  (Figure 2, Sections 6.3-6.4).
* :mod:`repro.families.registry` — the name -> constructor registry with
  validated parameter dataclasses behind spec-driven construction
  (:mod:`repro.api`).
"""

from repro.families.annulus_sphere import AnnulusFamily, annulus_interval, theorem64_rho
from repro.families.bit_sampling import (
    AntiBitSampling,
    BitSampling,
    ConstantCollisionFamily,
    scaled_anti_bit_sampling,
    scaled_bit_sampling,
)
from repro.families.cross_polytope import (
    CrossPolytope,
    FastCrossPolytope,
    negated_cross_polytope,
)
from repro.families.euclidean_lsh import (
    ShiftedEuclideanCPF,
    ShiftedGaussianProjection,
    shifted_collision_probability,
)
from repro.families.filters import GaussianFilterCPF, GaussianFilterFamily
from repro.families.hamming_annulus import (
    HammingAnnulusFamily,
    hamming_annulus_cpf,
)
from repro.families.polynomial_hamming import (
    build_polynomial_family,
    mixture_polynomial_family,
)
from repro.families.registry import (
    FAMILY_REGISTRY,
    FamilyEntry,
    family_entry,
    family_names,
    make_family,
    register_family,
    validate_family_params,
)
from repro.families.simhash import SimHash
from repro.families.step import design_step_family
from repro.families.valiant import PolynomialSphereFamily, polynomial_sphere_cpf

__all__ = [
    "BitSampling",
    "AntiBitSampling",
    "ConstantCollisionFamily",
    "scaled_bit_sampling",
    "scaled_anti_bit_sampling",
    "SimHash",
    "CrossPolytope",
    "FastCrossPolytope",
    "negated_cross_polytope",
    "GaussianFilterFamily",
    "GaussianFilterCPF",
    "HammingAnnulusFamily",
    "hamming_annulus_cpf",
    "ShiftedGaussianProjection",
    "ShiftedEuclideanCPF",
    "shifted_collision_probability",
    "build_polynomial_family",
    "mixture_polynomial_family",
    "PolynomialSphereFamily",
    "polynomial_sphere_cpf",
    "AnnulusFamily",
    "annulus_interval",
    "theorem64_rho",
    "design_step_family",
    "FAMILY_REGISTRY",
    "FamilyEntry",
    "family_entry",
    "family_names",
    "make_family",
    "register_family",
    "validate_family_params",
]
