"""Gaussian filter DSH families D+ / D- (Section 2.2, Theorem 1.2, App. A.1).

A pair ``(h, g)`` is defined by a sequence of standard Gaussian projections
``z_1, ..., z_m`` and a threshold ``t``:

* ``h(x)  = min({i : <z_i, x> >= t} u {m+1})`` — first spherical cap
  containing ``x``,
* D+:  ``g(y) = min({i : <z_i, y> >= t} u {m+2})`` — same caps (increasing
  CPF in the inner product),
* D-:  ``g(y) = min({i : <z_i, y> <= -t} u {m+2})`` — the *diametrically
  opposite* caps, obtained by negating the query point (decreasing CPF).

The distinct sentinels ``m+1`` / ``m+2`` guarantee no collision when no cap
captures a point.  With ``m = ceil(2 t^3 / p')`` (Lemma A.5, ``p'`` the
Szarek–Werner lower bound on the Gaussian tail) the capture probability is
``1 - e^{-2 t^3}`` and Theorem 1.2 holds:

    ln(1/f(alpha)) = (1 +- alpha)/(1 -+ alpha) * t^2/2 + Theta(log t).

The exact CPF has the closed form (Appendix A.1)

    f(alpha) = (1 - (1 - p_union)^m) * p_joint / p_union,

where ``p_joint = Pr[X >= t, Y >= t]`` for a standard bivariate normal pair
with correlation ``alpha`` (correlation ``-alpha`` for D-) and
``p_union = 2 Pr[X >= t] - p_joint``; we evaluate ``p_joint`` by numerical
quadrature, and also expose the Lemma A.5 analytic bounds.

Projections are regenerated deterministically from a stored seed in fixed
chunks, so sampled pairs stay lightweight even when ``m`` is in the
millions.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate
from scipy.stats import norm

from repro.core.cpf import CPF
from repro.core.family import DSHFamily, HashPair
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_open_interval, check_positive

__all__ = [
    "szarek_werner_lower_bound",
    "default_num_projections",
    "joint_tail_probability",
    "log_joint_tail_probability",
    "filter_collision_probability",
    "log_filter_collision_probability",
    "GaussianFilterCPF",
    "GaussianFilterFamily",
    "cpf_upper_bound",
    "cpf_lower_bound",
    "theorem12_log_inv_cpf",
]

_CHUNK = 2048


def szarek_werner_lower_bound(t: float) -> float:
    """Lemma A.2 lower bound ``p' = phi(t) / (t + 1) <= Pr[Z >= t]``."""
    check_positive(t, "t")
    return float(norm.pdf(t) / (t + 1.0))


def default_num_projections(t: float) -> int:
    """``m = ceil(2 t^3 / p')`` — the choice in Lemma A.5 making the
    capture probability at least ``1 - e^{-2 t^3}``."""
    check_positive(t, "t")
    return int(np.ceil(2.0 * t**3 / szarek_werner_lower_bound(t)))


def joint_tail_probability(alpha: float, t: float) -> float:
    """``Pr[X >= t, Y >= t]`` for standard bivariate normal correlation ``alpha``.

    Evaluated as ``int_t^inf phi(z) Phi-bar((t - alpha z)/sqrt(1-alpha^2)) dz``
    by adaptive quadrature; exact limits at ``alpha = +-1``.
    """
    check_positive(t, "t")
    if alpha >= 1.0 - 1e-12:
        return float(norm.sf(t))
    if alpha <= -1.0 + 1e-12:
        return 0.0
    scale = np.sqrt(1.0 - alpha**2)

    def integrand(z: float) -> float:
        return norm.pdf(z) * norm.sf((t - alpha * z) / scale)

    value, _ = integrate.quad(integrand, t, np.inf, limit=200)
    return float(value)


def log_joint_tail_probability(alpha: float, t: float) -> float:
    """``ln Pr[X >= t, Y >= t]`` — numerically stable for any correlation.

    Works in log space throughout (``logpdf``/``logsf`` + a log-domain
    trapezoidal sum), so it stays finite even when the probability
    underflows ``float64`` (e.g. ``alpha`` near ``-1`` at large ``t``,
    where ``ln p`` can be in the hundreds of negative nats).
    """
    check_positive(t, "t")
    if alpha >= 1.0 - 1e-12:
        return float(norm.logsf(t))
    if alpha <= -1.0 + 1e-12:
        return float("-inf")
    scale = np.sqrt(1.0 - alpha**2)
    z = np.linspace(t, t + 12.0, 6001)
    log_integrand = norm.logpdf(z) + norm.logsf((t - alpha * z) / scale)
    # Trapezoid in log domain: logsumexp of sample values + step size.
    m = float(np.max(log_integrand))
    if not np.isfinite(m):
        return float("-inf")
    weights = np.full(z.size, 1.0)
    weights[0] = weights[-1] = 0.5
    total = float(np.log(np.sum(weights * np.exp(log_integrand - m))))
    return m + total + float(np.log(z[1] - z[0]))


def filter_collision_probability(
    alpha: float, t: float, m: int | None = None, negated: bool = False
) -> float:
    """Exact CPF of D+ (or D- with ``negated=True``) at inner product ``alpha``."""
    check_in_open_interval(alpha, -1.0, 1.0, "alpha")
    if m is None:
        m = default_num_projections(t)
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    effective_alpha = -alpha if negated else alpha
    p_single = float(norm.sf(t))
    p_joint = joint_tail_probability(effective_alpha, t)
    p_union = 2.0 * p_single - p_joint
    if p_union <= 0.0:
        return 0.0
    captured = 1.0 - (1.0 - p_union) ** m
    return float(captured * p_joint / p_union)


def log_filter_collision_probability(
    alpha: float, t: float, m: int | None = None, negated: bool = False
) -> float:
    """``ln f(alpha)`` for the filter family — stable in the deep tail.

    Matches ``ln(filter_collision_probability(...))`` whenever the latter
    does not underflow; returns finite values far beyond that regime (used
    by the Section 4.1 rho comparisons, where ``ln f`` reaches -900).
    """
    check_in_open_interval(alpha, -1.0, 1.0, "alpha")
    if m is None:
        m = default_num_projections(t)
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    effective_alpha = -alpha if negated else alpha
    p_single = float(norm.sf(t))
    log_p_joint = log_joint_tail_probability(effective_alpha, t)
    p_joint = float(np.exp(log_p_joint)) if log_p_joint > -700 else 0.0
    p_union = 2.0 * p_single - p_joint
    if p_union <= 0.0 or not np.isfinite(log_p_joint):
        return float("-inf")
    captured = 1.0 - (1.0 - p_union) ** m
    return float(np.log(captured) + log_p_joint - np.log(p_union))


class GaussianFilterCPF(CPF):
    """Analytic CPF of the Gaussian filter family (similarity argument)."""

    def __init__(self, t: float, m: int | None = None, negated: bool = False) -> None:
        check_positive(t, "t")
        if m is None:
            m = default_num_projections(t)
        direction = "D-" if negated else "D+"
        super().__init__("similarity", f"filter {direction}(t={t:g}, m={m})")
        self.t = float(t)
        self.m = int(m)
        self.negated = bool(negated)

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        flat = np.atleast_1d(values).ravel()
        out = np.array(
            [
                filter_collision_probability(
                    float(np.clip(a, -1 + 1e-12, 1 - 1e-12)),
                    self.t,
                    self.m,
                    self.negated,
                )
                for a in flat
            ]
        )
        return out.reshape(np.shape(values))


class GaussianFilterFamily(DSHFamily):
    """The filter family of Section 2.2.

    Parameters
    ----------
    d:
        Ambient dimension (points on ``S^{d-1}``).
    t:
        Cap threshold ``t > 0``; larger ``t`` = smaller caps = faster CPF
        decay (the "fine tuning" parameter of Theorem 1.2).
    m:
        Number of projections; default ``ceil(2 t^3 / p')`` per Lemma A.5.
    negated:
        ``False`` for D+ (CPF increasing in the inner product), ``True``
        for D- (decreasing; the query point is hashed with the opposite
        caps ``<z_i, y> <= -t``).

    Notes
    -----
    The sampling / storage / evaluation complexity ``O(d t^4 e^{t^2/2})``
    from Theorem 1.2 shows up here as the ``m = O(t^4 e^{t^2/2})``
    projections; we never materialize them, regenerating chunks of 2048
    from the stored seed during evaluation and stopping at the first hit.
    """

    def __init__(self, d: int, t: float, m: int | None = None, negated: bool = False) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        check_positive(t, "t")
        self.d = int(d)
        self.t = float(t)
        self.m = int(m) if m is not None else default_num_projections(t)
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        self.negated = bool(negated)

    def _first_hit(self, points: np.ndarray, seed: int, mode: str) -> np.ndarray:
        """First projection index hitting each point, or ``m`` if none.

        ``mode`` is ``"ge"`` (``<z, x> >= t``) or ``"le"`` (``<z, x> <= -t``).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.shape[1] != self.d:
            raise ValueError(f"expected dimension {self.d}, got {pts.shape[1]}")
        n = pts.shape[0]
        result = np.full(n, self.m, dtype=np.int64)
        unresolved = np.arange(n)
        gen = ensure_rng(seed)
        offset = 0
        while offset < self.m and unresolved.size:
            k = min(_CHUNK, self.m - offset)
            z = gen.standard_normal((k, self.d))
            proj = pts[unresolved] @ z.T
            hit = proj >= self.t if mode == "ge" else proj <= -self.t
            any_hit = hit.any(axis=1)
            first = np.argmax(hit, axis=1)
            rows = np.flatnonzero(any_hit)
            result[unresolved[rows]] = offset + first[rows]
            unresolved = unresolved[~any_hit]
            offset += k
        return result

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw one filter pair; projections replay from a stored seed."""
        rng = ensure_rng(rng)
        seed = int(rng.integers(0, 2**63 - 1))
        query_mode = "le" if self.negated else "ge"

        def h(points: np.ndarray) -> np.ndarray:
            hits = self._first_hit(points, seed, "ge")
            # Sentinel m+1 for "not captured" on the data side.
            return np.where(hits == self.m, self.m + 1, hits)

        def g(points: np.ndarray) -> np.ndarray:
            hits = self._first_hit(points, seed, query_mode)
            # Sentinel m+2 on the query side: no spurious collisions.
            return np.where(hits == self.m, self.m + 2, hits)

        return HashPair(h=h, g=g, meta={"seed": seed, "t": self.t, "m": self.m})

    @property
    def cpf(self) -> CPF:
        """The exact analytic filter CPF (Appendix A.1 closed form)."""
        return GaussianFilterCPF(self.t, self.m, self.negated)


def cpf_upper_bound(alpha: float, t: float, negated: bool = False) -> float:
    """Lemma A.5 upper bound ``f-bar_+`` on the filter CPF.

    For D- pass ``negated=True`` (evaluates the bound at ``-alpha``,
    Lemma A.1).
    """
    check_in_open_interval(alpha, -1.0, 1.0, "alpha")
    check_positive(t, "t")
    if negated:
        alpha = -alpha
    return float(
        (1.0 / np.sqrt(2 * np.pi))
        * ((t + 1.0) / t**2)
        * ((1.0 + alpha) ** 2 / np.sqrt(1.0 - alpha**2))
        * np.exp(-((1.0 - alpha) / (1.0 + alpha)) * t**2 / 2.0)
    )


def cpf_lower_bound(alpha: float, t: float, negated: bool = False) -> float:
    """Lemma A.5 lower bound on the filter CPF (can be negative for small
    ``t``, in which case it is vacuous).

    Note: the bound *stated* in Lemma A.5 reads
    ``(1 - corr) (t/(t+1)) f-bar_+ - 2 e^{-t^3}``, but the proof bounds the
    conditional collision probability by ``Pr[joint] / (2 Pr[single])`` —
    the displayed statement drops that factor ``1/2`` (the proof's inline
    inequality keeps it).  We implement the proof's (correct) version
    ``(1 - corr) (t/(2(t+1))) f-bar_+ - 2 e^{-t^3}``, which the exact CPF
    satisfies everywhere.
    """
    check_in_open_interval(alpha, -1.0, 1.0, "alpha")
    check_positive(t, "t")
    if negated:
        alpha = -alpha
    leading = 1.0 - (2.0 - alpha) * (1.0 + alpha) / ((1.0 - alpha) * t**2)
    return float(
        leading * (t / (2.0 * (t + 1.0))) * cpf_upper_bound(alpha, t)
        - 2.0 * np.exp(-(t**3))
    )


def theorem12_log_inv_cpf(alpha: float, t: float, negated: bool = True) -> float:
    """Theorem 1.2 / Theorem A.6 leading term of ``ln(1/f(alpha))``.

    ``(1+alpha)/(1-alpha) * t^2/2`` for D- (default), the mirrored
    expression for D+; the ``Theta(log t)`` term is dropped.
    """
    check_in_open_interval(alpha, -1.0, 1.0, "alpha")
    check_positive(t, "t")
    if negated:
        return (1.0 + alpha) / (1.0 - alpha) * t**2 / 2.0
    return (1.0 - alpha) / (1.0 + alpha) * t**2 / 2.0
