"""Unimodal CPFs in Hamming space from bit-sampling pairs (Section 6.1).

The paper's recipe for annulus CPFs outside the sphere: concatenate ``k1``
bit-sampling with ``k2`` anti bit-sampling functions (Lemma 1.4(a)),
giving

    f(t) = (1 - t)^{k1} t^{k2},

which is unimodal with its peak at ``t* = k2 / (k1 + k2)`` — "setting
``k1 = k2 (1 - t)/t`` results in ``f`` peaking at distance ``r``".  The
induced exponent bound is ``rho* <= rho_+ + rho_-`` of the two parts.

This realizes approximate annulus search natively on binary data (the
sphere route of Section 6.2 needs an embedding); it is weaker — its flanks
decay polynomially in ``ln(1/t)`` rather than at the optimal rates — but
self-contained and cheap.
"""

from __future__ import annotations

import numpy as np

from repro.core.combinators import ConcatenatedFamily
from repro.core.cpf import CPF, LambdaCPF
from repro.core.family import DSHFamily, HashPair
from repro.families.bit_sampling import AntiBitSampling, BitSampling
from repro.utils.validation import check_in_open_interval

__all__ = ["HammingAnnulusFamily", "hamming_annulus_cpf", "balanced_exponents"]


def hamming_annulus_cpf(k1: int, k2: int) -> CPF:
    """The CPF ``f(t) = (1-t)^{k1} t^{k2}`` (relative distance argument)."""
    if k1 < 0 or k2 < 0 or k1 + k2 == 0:
        raise ValueError(f"need k1, k2 >= 0 with k1 + k2 >= 1, got {k1}, {k2}")

    def evaluate(t: np.ndarray) -> np.ndarray:
        return (1.0 - t) ** k1 * t**k2

    return LambdaCPF(evaluate, "relative_distance", f"(1-t)^{k1} t^{k2}")


def balanced_exponents(peak: float, k2: int) -> tuple[int, int]:
    """Choose ``k1`` so the CPF peaks (approximately) at relative distance
    ``peak``: ``k1 = round(k2 (1 - peak)/peak)`` (the Section 6.1 rule)."""
    check_in_open_interval(peak, 0.0, 1.0, "peak")
    if k2 < 1:
        raise ValueError(f"k2 must be >= 1, got {k2}")
    k1 = int(round(k2 * (1.0 - peak) / peak))
    return max(k1, 0), k2


class HammingAnnulusFamily(DSHFamily):
    """Concatenated bit-sampling x anti bit-sampling (Section 6.1 recipe).

    Parameters
    ----------
    d:
        Hamming dimension.
    peak:
        Relative distance in ``(0, 1)`` where the CPF should peak.
    k2:
        Number of anti bit-sampling components; ``k1`` is derived by the
        balancing rule.  Larger ``k2`` sharpens the peak (and lowers the
        collision probability — amplification and table count trade off as
        usual).
    """

    def __init__(self, d: int, peak: float, k2: int = 4) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self.k1, self.k2 = balanced_exponents(peak, k2)
        self.peak = self.k2 / max(self.k1 + self.k2, 1)
        parts: list[DSHFamily] = [BitSampling(d)] * self.k1
        parts += [AntiBitSampling(d)] * self.k2
        self._inner = ConcatenatedFamily(parts)

    def sample(
        self, rng: int | np.random.Generator | None = None
    ) -> HashPair:
        """Draw the concatenated bit/anti-bit sampling pair."""
        return self._inner.sample(rng)

    @property
    def cpf(self) -> CPF:
        """The unimodal polynomial CPF ``(1-t)^k1 t^k2``."""
        return hamming_annulus_cpf(self.k1, self.k2)
