"""SimHash — Charikar's hyperplane rounding LSH [17].

``h(x) = sign(<a, x>)`` for a standard Gaussian vector ``a``.  Its CPF is
the canonical *LSHable angular similarity function* of Section 5:

    sim(alpha) = 1 - arccos(alpha) / pi,

and composing it with the Valiant embeddings (Theorem 5.1) yields the
polynomial CPFs of Figure 4.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.cpf import CPF, SimHashCPF
from repro.core.family import SymmetricFamily
from repro.utils.rng import ensure_rng

__all__ = ["SimHash"]


class SimHash(SymmetricFamily):
    """Random-hyperplane LSH on ``R^d`` (typically used on ``S^{d-1}``).

    Parameters
    ----------
    d:
        Ambient dimension.

    Notes
    -----
    The CPF statement ``Pr[h(x) = h(y)] = 1 - arccos(alpha)/pi`` holds for
    any nonzero vectors with angle ``arccos(alpha)``; unit norms are not
    required (SimHash only sees directions).
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)

    def sample_function(self, rng: np.random.Generator) -> Callable[[np.ndarray], np.ndarray]:
        """Draw a Gaussian normal vector; hash to its halfspace sign."""
        rng = ensure_rng(rng)
        a = rng.standard_normal(self.d)

        def func(points: np.ndarray) -> np.ndarray:
            pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
            if pts.shape[1] != self.d:
                raise ValueError(f"expected dimension {self.d}, got {pts.shape[1]}")
            return (pts @ a >= 0).astype(np.int64)

        return func

    @property
    def cpf(self) -> CPF:
        """The angular CPF ``1 - arccos(alpha)/pi``."""
        return SimHashCPF()
