"""Cross-polytope LSH and its negated-query DSH (Section 2.1).

Andoni et al. [8]: sample a random Gaussian matrix ``A``, rotate the point,
and hash to the closest signed standard basis vector ``+-e_i`` — i.e. to
``(argmax_i |(Ax)_i|, sign)``.  Theorem 2.1 gives the CPF asymptotics

    ln(1/f(alpha)) = (1 - alpha)/(1 + alpha) * ln d + O_alpha(ln ln d),

and negating the query point (family ``CP-``, Corollary 2.2) swaps
``alpha -> -alpha``, turning the increasing CPF into a decreasing one.

There is no closed form for the exact CPF; :func:`collision_probability`
estimates it cheaply in the rotated 2-D Gaussian space (no matrix products,
no hashing), and :func:`asymptotic_log_inv_cpf` evaluates the Theorem 2.1
prediction.  A fast pseudo-rotation variant (three Hadamard-diagonal
rounds, as used in practice by [8]) is provided for large ``d``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.booleancube.walsh import walsh_hadamard_transform
from repro.core.combinators import TransformedFamily, negate_queries
from repro.core.family import SymmetricFamily
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_open_interval

__all__ = [
    "CrossPolytope",
    "FastCrossPolytope",
    "negated_cross_polytope",
    "collision_probability",
    "asymptotic_log_inv_cpf",
]


def _closest_polytope_vertex(rotated: np.ndarray) -> np.ndarray:
    """Hash each row to ``2 * argmax_i |u_i| + [u_argmax > 0]``."""
    idx = np.argmax(np.abs(rotated), axis=1)
    signs = rotated[np.arange(rotated.shape[0]), idx] > 0
    return (2 * idx + signs).astype(np.int64)


class CrossPolytope(SymmetricFamily):
    """The symmetric cross-polytope LSH ``CP+`` with a dense Gaussian rotation.

    Parameters
    ----------
    d:
        Ambient dimension (points live on ``S^{d-1}``; only directions
        matter to the hash).
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)

    def sample_function(self, rng: np.random.Generator) -> Callable[[np.ndarray], np.ndarray]:
        """Draw a dense Gaussian rotation; hash to its closest vertex."""
        rng = ensure_rng(rng)
        matrix = rng.standard_normal((self.d, self.d))

        def func(points: np.ndarray) -> np.ndarray:
            pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
            if pts.shape[1] != self.d:
                raise ValueError(f"expected dimension {self.d}, got {pts.shape[1]}")
            return _closest_polytope_vertex(pts @ matrix.T)

        return func


class FastCrossPolytope(SymmetricFamily):
    """Cross-polytope LSH with the ``H D_3 H D_2 H D_1`` pseudo-rotation.

    Replaces the dense Gaussian matrix by three rounds of random-sign
    diagonal + normalized Hadamard transforms — ``O(d log d)`` per point
    instead of ``O(d^2)`` ([8], Section "Practical variants").  Requires
    the input dimension to be padded to a power of two internally.

    Parameters
    ----------
    d:
        Input dimension (any positive integer; points are zero-padded to
        the next power of two).
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self.padded = 1
        while self.padded < d:
            self.padded *= 2

    def sample_function(self, rng: np.random.Generator) -> Callable[[np.ndarray], np.ndarray]:
        """Draw the three sign diagonals of the H D3 H D2 H D1 rotation."""
        rng = ensure_rng(rng)
        diagonals = rng.choice(np.array([-1.0, 1.0]), size=(3, self.padded))
        scale = 1.0 / np.sqrt(self.padded)

        def func(points: np.ndarray) -> np.ndarray:
            pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
            if pts.shape[1] != self.d:
                raise ValueError(f"expected dimension {self.d}, got {pts.shape[1]}")
            if self.padded != self.d:
                pad = np.zeros((pts.shape[0], self.padded - self.d))
                pts = np.hstack([pts, pad])
            out = pts
            for diag in diagonals:
                out = walsh_hadamard_transform(out * diag) * scale
            return _closest_polytope_vertex(out)

        return func


def negated_cross_polytope(d: int, fast: bool = False) -> TransformedFamily:
    """The DSH family ``CP-`` of Corollary 2.2: hash queries at ``-y``.

    Its CPF is decreasing in the inner product:
    ``ln(1/f(alpha)) = (1+alpha)/(1-alpha) ln d + O(ln ln d)``.
    """
    base = FastCrossPolytope(d) if fast else CrossPolytope(d)
    return negate_queries(base)


def collision_probability(
    alpha: float,
    d: int,
    negated: bool = False,
    n_samples: int = 200_000,
    rng: int | np.random.Generator | None = None,
) -> float:
    """Estimate the exact cross-polytope CPF at inner product ``alpha``.

    Works in the rotated space: the rotated coordinates of a pair with
    inner product ``alpha`` are ``d`` i.i.d. bivariate standard normal
    pairs with correlation ``alpha``, so the collision event
    (same ``argmax |.|`` index and matching sign) can be simulated without
    any matrix products.  This makes Theorem 2.1 benchmarks cheap even for
    large ``d``.

    Parameters
    ----------
    alpha:
        Inner product in ``(-1, 1)``.
    d:
        Dimension.
    negated:
        If true, estimate the ``CP-`` CPF (equivalent to ``alpha -> -alpha``).
    n_samples:
        Monte Carlo sample count.
    rng:
        Seed or generator.
    """
    check_in_open_interval(alpha, -1.0, 1.0, "alpha")
    if negated:
        alpha = -alpha
    rng = ensure_rng(rng)
    hits = 0
    total = 0
    batch = max(1, min(n_samples, 50_000_000 // max(d, 1)))
    remaining = n_samples
    while remaining > 0:
        m = min(batch, remaining)
        u = rng.standard_normal((m, d))
        v = alpha * u + np.sqrt(1 - alpha**2) * rng.standard_normal((m, d))
        iu = np.argmax(np.abs(u), axis=1)
        iv = np.argmax(np.abs(v), axis=1)
        same_index = iu == iv
        su = u[np.arange(m), iu] > 0
        sv = v[np.arange(m), iv] > 0
        hits += int(np.count_nonzero(same_index & (su == sv)))
        total += m
        remaining -= m
    return hits / total


def asymptotic_log_inv_cpf(alpha: float, d: int, negated: bool = False) -> float:
    """Theorem 2.1 / Corollary 2.2 leading term of ``ln(1/f(alpha))``.

    ``(1 -+ alpha)/(1 +- alpha) * ln d`` — the ``O_alpha(ln ln d)`` term is
    dropped, so this is the *shape* prediction that the benchmark compares
    slopes against.
    """
    check_in_open_interval(alpha, -1.0, 1.0, "alpha")
    if d < 2:
        raise ValueError(f"d must be >= 2, got {d}")
    if negated:
        alpha = -alpha
    return (1 - alpha) / (1 + alpha) * float(np.log(d))
