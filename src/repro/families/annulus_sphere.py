"""The unimodal annulus family on the sphere (Section 6.2, Theorem 6.2).

Combine an increasing filter family ``D+`` (threshold ``t_+``) with a
decreasing one ``D-`` (threshold ``t_-``) by concatenation:
``h(x) = (h_+(x), h_-(x))``, ``g(y) = (g_+(y), g_-(y))``.  Ignoring lower
order terms the combined CPF satisfies

    ln(1/f(alpha)) ~ (1-alpha)/(1+alpha) t_+^2/2 + (1+alpha)/(1-alpha) t_-^2/2,

which — writing ``a(alpha) = (1-alpha)/(1+alpha)`` and ``gamma = t_-/t_+``
— is minimized (CPF maximized) at ``a = gamma``.  Choosing
``gamma = a(alpha_max)`` therefore peaks the CPF at the target inner
product ``alpha_max``; Theorem 6.2 then bounds ``f`` inside and outside the
annulus ``[alpha_-, alpha_+]`` defined by

    (1/s) a(alpha_max) <= a(alpha) <= s a(alpha_max)        (s > 1),

which is what Figure 3 plots for ``s = 2, 3, 4``.  Theorem 6.4 converts the
resulting gap into a data-structure exponent
``rho = (c_a + 1/c_a) / (c_b + 1/c_b)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.combinators import ConcatenatedFamily
from repro.core.cpf import CPF, ProductCPF
from repro.core.family import DSHFamily, HashPair
from repro.families.filters import GaussianFilterCPF, GaussianFilterFamily
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_open_interval, check_positive

__all__ = [
    "similarity_to_a",
    "a_to_similarity",
    "annulus_interval",
    "AnnulusFamily",
    "theorem64_rho",
]


def similarity_to_a(alpha: float | np.ndarray) -> float | np.ndarray:
    """``a(alpha) = (1 - alpha)/(1 + alpha)``, the reparameterization in
    which the Theorem 6.2 annuli are geometric intervals."""
    alpha = np.asarray(alpha, dtype=np.float64)
    if np.any(alpha <= -1.0) or np.any(alpha >= 1.0):
        raise ValueError("alpha must lie in (-1, 1)")
    out = (1.0 - alpha) / (1.0 + alpha)
    return out if out.ndim else float(out)


def a_to_similarity(a: float | np.ndarray) -> float | np.ndarray:
    """Inverse of :func:`similarity_to_a`: ``alpha = (1 - a)/(1 + a)``."""
    a = np.asarray(a, dtype=np.float64)
    if np.any(a <= 0):
        raise ValueError("a must be positive")
    out = (1.0 - a) / (1.0 + a)
    return out if out.ndim else float(out)


def annulus_interval(alpha_max: float, s: float) -> tuple[float, float]:
    """The Theorem 6.2 annulus ``[alpha_-, alpha_+]`` around ``alpha_max``.

    Contains every ``alpha`` with
    ``(1/s) a(alpha_max) <= a(alpha) <= s a(alpha_max)``; since ``a`` is
    decreasing, ``alpha_-`` corresponds to ``s a(alpha_max)`` and
    ``alpha_+`` to ``a(alpha_max)/s``.  This is the exact content of
    Figure 3.
    """
    check_in_open_interval(alpha_max, -1.0, 1.0, "alpha_max")
    if s <= 1:
        raise ValueError(f"s must be > 1, got {s}")
    a_max = similarity_to_a(alpha_max)
    alpha_minus = a_to_similarity(s * a_max)
    alpha_plus = a_to_similarity(a_max / s)
    return float(alpha_minus), float(alpha_plus)


class AnnulusFamily(DSHFamily):
    """The combined family ``D = D+ (x) D-`` peaking at ``alpha_max``.

    Parameters
    ----------
    d:
        Ambient dimension.
    alpha_max:
        Inner product in ``(-1, 1)`` at which the CPF should peak.
    t:
        The ``t_+`` threshold; ``t_- = a(alpha_max) * t_+`` per the
        Section 6.2 parameterization.  Larger ``t`` sharpens the peak (and
        increases evaluation cost as ``e^{t^2/2}``).
    m_plus, m_minus:
        Optional projection-count overrides for the two parts.
    """

    def __init__(
        self,
        d: int,
        alpha_max: float,
        t: float,
        m_plus: int | None = None,
        m_minus: int | None = None,
    ) -> None:
        check_in_open_interval(alpha_max, -1.0, 1.0, "alpha_max")
        check_positive(t, "t")
        self.d = int(d)
        self.alpha_max = float(alpha_max)
        self.t_plus = float(t)
        self.t_minus = float(similarity_to_a(alpha_max) * t)
        self.plus = GaussianFilterFamily(d, self.t_plus, m=m_plus, negated=False)
        self.minus = GaussianFilterFamily(d, self.t_minus, m=m_minus, negated=True)
        self._inner = ConcatenatedFamily([self.plus, self.minus])

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw one concatenated D+/D- filter pair."""
        return self._inner.sample(ensure_rng(rng))

    @property
    def cpf(self) -> CPF:
        """Product of the D+ and D- filter CPFs (the Section 6.2 peak)."""
        return ProductCPF(
            [
                GaussianFilterCPF(self.t_plus, self.plus.m, negated=False),
                GaussianFilterCPF(self.t_minus, self.minus.m, negated=True),
            ]
        )

    def interval(self, s: float) -> tuple[float, float]:
        """The annulus ``[alpha_-, alpha_+]`` of Theorem 6.2 for this peak."""
        return annulus_interval(self.alpha_max, s)

    def theoretical_log_inv_cpf(self, alpha: float | np.ndarray) -> np.ndarray:
        """Leading term ``a(alpha) t_+^2/2 + (1/a(alpha)) t_-^2/2`` of
        ``ln(1/f(alpha))`` (Section 6.2 display equation)."""
        a = np.asarray(similarity_to_a(alpha), dtype=np.float64)
        return a * self.t_plus**2 / 2.0 + (1.0 / a) * self.t_minus**2 / 2.0


def theorem64_rho(
    alpha_minus: float, alpha_plus: float, beta_minus: float, beta_plus: float
) -> float:
    """The query exponent of Theorem 6.4.

    For ``-1 < beta_- < alpha_- < alpha_+ < beta_+ < 1`` (with the balance
    condition of the theorem),

        rho = (c_a + 1/c_a) / (c_b + 1/c_b),

    where ``c_a = sqrt(a(alpha_-)/a(alpha_+))`` and
    ``c_b = sqrt(a(beta_-)/a(beta_+))``.
    """
    if not -1.0 < beta_minus < alpha_minus < alpha_plus < beta_plus < 1.0:
        raise ValueError(
            "need -1 < beta_- < alpha_- < alpha_+ < beta_+ < 1, got "
            f"{beta_minus}, {alpha_minus}, {alpha_plus}, {beta_plus}"
        )
    c_alpha = float(np.sqrt(similarity_to_a(alpha_minus) / similarity_to_a(alpha_plus)))
    c_beta = float(np.sqrt(similarity_to_a(beta_minus) / similarity_to_a(beta_plus)))
    # The ordering check already forces c_beta > c_alpha >= 1, so the ratio
    # below is a genuine exponent < 1.
    return (c_alpha + 1.0 / c_alpha) / (c_beta + 1.0 / c_beta)
