"""Bit-sampling families on the Hamming cube.

Three primitives:

* :class:`BitSampling` — the classical Indyk–Motwani LSH [32]: sample a
  coordinate ``i`` and hash ``x -> x_i``.  CPF ``f(t) = 1 - t`` in the
  relative Hamming distance ``t``.
* :class:`AntiBitSampling` — the paper's simplest genuinely asymmetric DSH
  (Section 4.1): the pair ``(x -> x_i, y -> 1 - y_i)``.  A collision means
  the sampled bits *differ*, so the CPF is ``f(t) = t`` — monotonically
  increasing in distance.
* :class:`ConstantCollisionFamily` — a distance-independent pair colliding
  with probability ``p`` (shared randomness decides, the points are
  ignored).  Appendix C.3 uses such blocks ("standard hashing that maps data
  and query points to 0 with probability beta ...") to bias and scale the
  other CPFs.  Defined in :mod:`repro.core.combinators` (the CPF
  transforms in core build on it); re-exported here for compatibility.

The helpers :func:`scaled_bit_sampling` and :func:`scaled_anti_bit_sampling`
assemble the scaled variants from Appendix C.3 via Lemma 1.4(b) mixtures:

* scaled bit-sampling: ``f(t) = 1 - scale * t``,
* scaled anti bit-sampling: ``f(t) = scale * t``.
"""

from __future__ import annotations

import numpy as np

from repro.core.combinators import ConstantCollisionFamily, MixtureFamily
from repro.core.cpf import (
    CPF,
    AntiBitSamplingCPF,
    BitSamplingCPF,
)
from repro.core.family import DSHFamily, HashPair
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

__all__ = [
    "BitSampling",
    "AntiBitSampling",
    "ConstantCollisionFamily",
    "scaled_bit_sampling",
    "scaled_anti_bit_sampling",
]


def _column(points: np.ndarray, i: int) -> np.ndarray:
    points = np.atleast_2d(np.asarray(points))
    if i >= points.shape[1]:
        raise ValueError(
            f"family sampled for dimension > {points.shape[1]}; "
            f"point dimension mismatch (coordinate {i})"
        )
    return points[:, i].astype(np.int64)


class BitSampling(DSHFamily):
    """Classical bit-sampling LSH: ``h(x) = g(x) = x_i`` for random ``i``.

    Parameters
    ----------
    d:
        Dimension of the Hamming cube.
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Pick a random coordinate; both sides project onto it."""
        rng = ensure_rng(rng)
        i = int(rng.integers(0, self.d))
        func = lambda points: _column(points, i)  # noqa: E731 - tiny closure
        return HashPair(h=func, g=func, meta={"coordinate": i})

    @property
    def cpf(self) -> CPF:
        """The decreasing CPF ``f(t) = 1 - t``."""
        return BitSamplingCPF()

    @property
    def is_symmetric(self) -> bool:
        """Always ``True``: classical LSH, both sides share the hash."""
        return True


class AntiBitSampling(DSHFamily):
    """Anti bit-sampling (Section 4.1): ``h(x) = x_i``, ``g(y) = 1 - y_i``.

    Collides iff the sampled bits differ, giving the increasing CPF
    ``f(t) = t``.  The paper notes its ``rho_- = Omega(1 / ln c)`` is *not*
    optimal — the sphere constructions achieve ``O(1/c)`` (benchmarked in
    ``bench_sec41_anti_bitsampling``).
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Pick a random coordinate; the query side negates its bit."""
        rng = ensure_rng(rng)
        i = int(rng.integers(0, self.d))
        return HashPair(
            h=lambda points: _column(points, i),
            g=lambda points: 1 - _column(points, i),
            meta={"coordinate": i},
        )

    @property
    def cpf(self) -> CPF:
        """The increasing CPF ``f(t) = t``."""
        return AntiBitSamplingCPF()


def scaled_bit_sampling(d: int, scale: float) -> MixtureFamily:
    """Bit-sampling scaled to CPF ``f(t) = 1 - scale * t`` (Appendix C.3).

    Mixture: with probability ``scale`` use plain bit-sampling
    (``f = 1 - t``), otherwise always collide (``f = 1``).
    """
    check_probability(scale, "scale")
    return MixtureFamily(
        [BitSampling(d), ConstantCollisionFamily(1.0)],
        [scale, 1.0 - scale],
    )


def scaled_anti_bit_sampling(d: int, scale: float, bias: float = 0.0) -> MixtureFamily:
    """Anti bit-sampling with CPF ``f(t) = bias + scale * t`` (Appendix C.3).

    Mixture of plain anti bit-sampling (weight ``scale``), the
    always-collide family (weight ``bias``), and the never-collide family
    (remaining weight).  Requires ``bias + scale <= 1``.
    """
    check_probability(scale, "scale")
    check_probability(bias, "bias")
    if bias + scale > 1.0 + 1e-12:
        raise ValueError(f"bias + scale must be <= 1, got {bias + scale}")
    rest = max(0.0, 1.0 - bias - scale)
    return MixtureFamily(
        [AntiBitSampling(d), ConstantCollisionFamily(1.0), ConstantCollisionFamily(0.0)],
        [scale, bias, rest],
    )
