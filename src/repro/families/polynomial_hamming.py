"""Polynomial CPFs in Hamming space (Section 5, Theorem 5.2, Appendix C.3).

Given a polynomial ``P(t) = sum a_i t^i`` (argument: *relative* Hamming
distance ``t in [0, 1]``) with **no root whose real part lies in (0, 1)**,
Theorem 5.2 builds a DSH family with CPF ``P(t) / Delta`` for a scaling
factor ``Delta`` depending only on the roots.

The construction factors ``P`` over its roots and assigns each factor a
small bit-sampling gadget (Lemma 1.4(a) concatenation of everything):

====================================  =======================================
factor (root ``z``)                    gadget, CPF, per-factor ``Delta``
====================================  =======================================
``t``          (root 0)                anti bit-sampling; ``t``; 1
``z - t``      (real ``z >= 1``)       scaled bit-sampling(1/z); ``1 - t/z``; ``z``
``t + |z|``    (real ``z < 0``)        mix(anti, const); ``(t+|z|)/(2 max(1,|z|))``;
                                       ``2 max(1, |z|)``
``(t-a)^2+b^2`` (pair, ``a <= 0``)     mix(anti x anti, anti, const-1) with
                                       weights ``(1, 2|a|, a^2+b^2)/Dq``;
                                       ``q(t)/Dq``; ``Dq = 1 + 2|a| + a^2+b^2``
``(t-a)^2+b^2`` (pair, ``a >= 1``)     mix(bit(1/a) x bit(1/a), const-1) with
                                       weights ``(a^2, b^2)/|z|^2``;
                                       ``q(t)/|z|^2``; ``a^2 + b^2``
====================================  =======================================

Our per-factor scalings are never larger than the paper's stated
``Delta = a_k 2^psi prod_{|z|>1} |z|`` (strictly smaller for complex pairs
with non-positive real part), so :func:`construction_delta` <=
:func:`paper_delta`; both are exposed and compared in the tests.

For polynomials with *non-negative* coefficients summing to at most 1 the
far simpler Lemma 1.4(b) route — a mixture of powered anti bit-sampling —
achieves CPF exactly ``P(t)`` with no scaling; see
:func:`mixture_polynomial_family`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.combinators import ConcatenatedFamily, MixtureFamily, PoweredFamily
from repro.core.cpf import PolynomialCPF
from repro.core.family import DSHFamily
from repro.families.bit_sampling import (
    AntiBitSampling,
    ConstantCollisionFamily,
    scaled_anti_bit_sampling,
    scaled_bit_sampling,
)

__all__ = [
    "PolynomialHammingScheme",
    "build_polynomial_family",
    "mixture_polynomial_family",
    "paper_delta",
]

_IMAG_TOL = 1e-9


@dataclass(frozen=True)
class PolynomialHammingScheme:
    """Result of the Theorem 5.2 construction.

    Attributes
    ----------
    family:
        The concatenated DSH family.
    cpf:
        Analytic CPF ``P(t) / delta`` (argument: relative Hamming distance).
    delta:
        The scaling factor achieved by this construction.
    theorem_delta:
        The (never smaller) scaling factor stated by Theorem 5.2.
    """

    family: DSHFamily
    cpf: PolynomialCPF
    delta: float
    theorem_delta: float


def _classified_roots(
    coefficients: np.ndarray,
) -> tuple[int, list[float], list[float], list[complex]]:
    """Split the roots of ``P`` into (zero multiplicity, real >= 1,
    real < 0, one representative per complex-conjugate pair).

    Raises ``ValueError`` for roots with real part in the open interval
    ``(0, 1)`` — excluded by Theorem 5.2.
    """
    # Strip zero roots first: P(t) = t^ell * P'(t).
    ell = 0
    coeffs = list(coefficients)
    while len(coeffs) > 1 and abs(coeffs[0]) < 1e-14:
        coeffs.pop(0)
        ell += 1
    if len(coeffs) == 1:
        return ell, [], [], []
    roots = np.roots(np.asarray(coeffs, dtype=np.float64)[::-1])
    real_pos: list[float] = []
    real_neg: list[float] = []
    complex_pairs: list[complex] = []
    for z in roots:
        if abs(z.imag) <= _IMAG_TOL * max(1.0, abs(z)):
            x = float(z.real)
            if 0.0 < x < 1.0:
                if x < 1e-10:  # numerically zero root that survived stripping
                    real_neg.append(0.0)
                    continue
                raise ValueError(
                    f"Theorem 5.2 requires no root with real part in (0, 1); "
                    f"found root {x:.6g}"
                )
            if x >= 1.0:
                real_pos.append(x)
            else:
                real_neg.append(x)
        elif z.imag > 0:
            a = float(z.real)
            if 0.0 < a < 1.0:
                raise ValueError(
                    f"Theorem 5.2 requires no root with real part in (0, 1); "
                    f"found complex root with real part {a:.6g}"
                )
            complex_pairs.append(complex(z))
        # imag < 0: the conjugate partner, handled with its pair.
    return ell, real_pos, real_neg, complex_pairs


def _check_nonnegative_on_unit_interval(coefficients: np.ndarray) -> None:
    grid = np.linspace(0.0, 1.0, 512)
    values = np.polyval(coefficients[::-1], grid)
    if np.any(values < -1e-9):
        worst = float(values.min())
        raise ValueError(
            f"P(t) must be non-negative on [0, 1] to be a scaled CPF; "
            f"minimum value {worst:.3g}"
        )


def build_polynomial_family(
    coefficients: list[float] | np.ndarray, d: int
) -> PolynomialHammingScheme:
    """Theorem 5.2: a DSH family on ``{0,1}^d`` with CPF ``P(t)/Delta``.

    Parameters
    ----------
    coefficients:
        ``[a_0, a_1, ..., a_k]`` in increasing degree.  ``P`` must be
        non-negative on ``[0, 1]`` and have no root with real part in
        ``(0, 1)``.
    d:
        Hamming cube dimension.

    Returns
    -------
    PolynomialHammingScheme
        Family, analytic CPF, achieved ``delta``, and the theorem's
        ``Delta`` for comparison.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    if coefficients.size < 2:
        raise ValueError("P must have degree >= 1")
    if abs(coefficients[-1]) < 1e-14:
        raise ValueError("leading coefficient must be non-zero")
    # Classify roots first so that a root inside (0, 1) raises the specific
    # Theorem 5.2 error even when it also makes P negative on [0, 1].
    ell, real_pos, real_neg, complex_pairs = _classified_roots(coefficients)
    _check_nonnegative_on_unit_interval(coefficients)
    lead = abs(float(coefficients[-1]))

    families: list[DSHFamily] = []
    delta = lead
    # Zero roots: CPF t^ell via ell anti bit-samplings.
    families.extend(AntiBitSampling(d) for _ in range(ell))
    # Real roots z >= 1: factor (z - t) = z * (1 - t/z).
    for z in real_pos:
        families.append(scaled_bit_sampling(d, 1.0 / z))
        delta *= z
    # Real roots z < 0: factor (t + |z|) = 2 max(1,|z|) * (t + |z|)/(2 max(1,|z|)).
    for z in real_neg:
        mag = abs(z)
        scale_denom = 2.0 * max(1.0, mag)
        families.append(
            MixtureFamily(
                [
                    scaled_anti_bit_sampling(d, scale=1.0 / max(1.0, mag)),
                    ConstantCollisionFamily(min(1.0, mag)),
                ],
                [0.5, 0.5],
            )
        )
        delta *= scale_denom
    # Complex conjugate pairs: quadratic factor q(t) = (t - a)^2 + b^2.
    for z in complex_pairs:
        a, b = z.real, z.imag
        if a <= 0.0:
            # q(t) = t^2 + 2|a| t + |z|^2, all coefficients non-negative.
            dq = 1.0 + 2.0 * abs(a) + abs(z) ** 2
            components: list[DSHFamily] = [
                PoweredFamily(AntiBitSampling(d), 2),
                AntiBitSampling(d),
                ConstantCollisionFamily(1.0),
            ]
            weights = np.array([1.0, 2.0 * abs(a), abs(z) ** 2]) / dq
            families.append(MixtureFamily(components, weights))
            delta *= dq
        else:  # a >= 1 by the root classification
            # q(t) = a^2 (1 - t/a)^2 + b^2.
            dq = a**2 + b**2
            families.append(
                MixtureFamily(
                    [
                        PoweredFamily(scaled_bit_sampling(d, 1.0 / a), 2),
                        ConstantCollisionFamily(1.0),
                    ],
                    np.array([a**2, b**2]) / dq,
                )
            )
            delta *= dq

    family: DSHFamily = ConcatenatedFamily(families)
    cpf = PolynomialCPF(coefficients, "relative_distance", scale=delta)
    return PolynomialHammingScheme(
        family=family,
        cpf=cpf,
        delta=float(delta),
        theorem_delta=paper_delta(coefficients),
    )


def paper_delta(coefficients: list[float] | np.ndarray) -> float:
    """The scaling factor stated by Theorem 5.2:
    ``Delta = |a_k| 2^psi prod_{z in Z, |z| > 1} |z|`` with ``psi`` the
    number of roots with negative real part."""
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    ell, real_pos, real_neg, complex_pairs = _classified_roots(coefficients)
    lead = abs(float(coefficients[-1]))
    psi = len(real_neg) + 2 * sum(1 for z in complex_pairs if z.real < 0)
    delta = lead * 2.0**psi
    for z in real_pos:
        if abs(z) > 1.0:
            delta *= abs(z)
    for z in real_neg:
        if abs(z) > 1.0:
            delta *= abs(z)
    for z in complex_pairs:
        if abs(z) > 1.0:
            delta *= abs(z) ** 2  # both members of the conjugate pair
    return float(delta)


def mixture_polynomial_family(
    coefficients: list[float] | np.ndarray, d: int
) -> tuple[DSHFamily, PolynomialCPF]:
    """Lemma 1.4(b) route: CPF exactly ``P(t)`` for ``a_i >= 0``,
    ``sum a_i <= 1``.

    Degree-``i`` terms are realized by ``i``-fold powered anti
    bit-sampling (CPF ``t^i``); any slack ``1 - sum a_i`` goes to a
    never-collide component.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    if coefficients.size == 0:
        raise ValueError("P must have at least one coefficient")
    if np.any(coefficients < 0):
        raise ValueError(
            "mixture route requires non-negative coefficients; "
            "use build_polynomial_family for signed polynomials"
        )
    total = float(coefficients.sum())
    if total > 1.0 + 1e-12:
        raise ValueError(f"sum of coefficients must be <= 1, got {total}")
    components: list[DSHFamily] = []
    weights: list[float] = []
    for i, a in enumerate(coefficients):
        if a == 0.0:
            continue
        if i == 0:
            components.append(ConstantCollisionFamily(1.0))
        elif i == 1:
            components.append(AntiBitSampling(d))
        else:
            components.append(PoweredFamily(AntiBitSampling(d), i))
        weights.append(float(a))
    slack = max(0.0, 1.0 - total)
    if not components:
        components.append(ConstantCollisionFamily(0.0))
        weights.append(1.0)
    elif slack > 1e-15:
        components.append(ConstantCollisionFamily(0.0))
        weights.append(slack)
    weights_arr = np.asarray(weights, dtype=np.float64)
    family = MixtureFamily(components, weights_arr / weights_arr.sum())
    cpf = PolynomialCPF(coefficients, "relative_distance", scale=1.0)
    return family, cpf
